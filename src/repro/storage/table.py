"""Heap tables: the record manager.

Implements the data-page side of the paper's Figure 1 (forward processing)
and Figure 2 (rollback): every record insert/delete/update

1. X-latches the target data page,
2. determines the *visibility* of any index currently being built (SF's
   ``Target-RID < Current-RID`` test) by asking the maintenance hook,
3. modifies the record, writes the log record **including the count of
   visible indexes** (section 3.1: "Additional information is required in
   the log record for a data page operation.  This will be the count of
   the visible indexes"), and updates the Page-LSN,
4. unlatches,
5. lets the maintenance hook update the visible indexes (directly or via
   the side-file).

Undo handlers re-run the same shape with Figure 2's count comparison
delegated to the maintenance hook.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, TYPE_CHECKING

from repro.errors import RecordNotFoundError, StorageError
from repro.sim.kernel import Acquire, Delay
from repro.sim.latch import EXCLUSIVE, SHARE
from repro.storage.page import DataPage, Record
from repro.storage.rid import PageId, RID
from repro.wal.records import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System
    from repro.txn.transaction import Transaction


class _NullSnapshot:
    """Empty visibility decision (no indexes)."""

    count = 0
    direct: list = []
    sf_routed: list = []


class NullMaintenance:
    """Maintenance hook used before any index exists.

    The real hook (:class:`repro.core.maintenance.IndexMaintenance`) is
    installed when the first index descriptor is created.
    """

    def visible_count(self, txn, rid):
        return 0

    def prepare_insert(self, txn, rid, record):
        return _NullSnapshot()

    def prepare_delete(self, txn, rid, record):
        return _NullSnapshot()

    def prepare_update(self, txn, rid, old_record, new_record):
        return _NullSnapshot()

    def apply_direct(self, txn, snapshot):
        return
        yield  # pragma: no cover - generator shape

    def on_undo(self, txn, log_record, action, rid, old_record, new_record):
        return
        yield  # pragma: no cover


class Table:
    """One heap table: a file of slotted pages plus its indexes."""

    def __init__(self, system: "System", name: str,
                 columns: Sequence[str],
                 page_capacity: Optional[int] = None) -> None:
        self.system = system
        self.name = name
        self.columns = tuple(columns)
        self.page_capacity = page_capacity or system.config.page_capacity
        self.page_count = 0
        #: Index descriptors in creation order.  Section 3.1 footnote 6:
        #: "the number of indexes can only increase while update
        #: transactions are active".
        self.indexes: list = []
        self.maintenance = NullMaintenance()
        self._register_operations()

    # -- naming ------------------------------------------------------------

    def page_id(self, page_no: int) -> PageId:
        return PageId(self.name, page_no)

    def lock_name(self, rid: RID) -> tuple:
        """Data-only lock name for a record (covers its index keys too)."""
        return ("rec", self.name, rid)

    @property
    def table_lock_name(self) -> tuple:
        return ("table", self.name)

    def column_indexes(self, columns: Sequence[str]) -> tuple[int, ...]:
        try:
            return tuple(self.columns.index(c) for c in columns)
        except ValueError as exc:
            raise StorageError(f"unknown column in {columns!r}") from exc

    # -- forward processing ---------------------------------------------------

    def _intent_lock(self, txn: "Transaction"):
        """Generator: table-level IX lock every updater holds to commit.

        This is what makes NSF's descriptor-create quiesce work: IB's S
        lock on the table (section 2.2.1) waits for these IX locks, and
        new updaters queue behind IB's request.
        """
        yield from txn.lock(self.table_lock_name, "IX")

    def insert(self, txn: "Transaction", values: Sequence):
        """Generator: insert a record; returns its RID."""
        yield from self._intent_lock(txn)
        record = Record(tuple(values))
        page, slot = yield from self._pick_insert_slot(txn)
        rid = RID(page.page_id.page_no, slot)
        yield from self._locked_insert(txn, page, rid, record)
        return rid

    def insert_at(self, txn: "Transaction", rid: RID, values: Sequence):
        """Generator: insert at a specific RID (slot-reuse scenarios).

        Used to reproduce the paper's section 2.2.3 example where T2
        inserts a record "at the same location (RID R)" after T1's
        rollback freed it.
        """
        yield from self._intent_lock(txn)
        record = Record(tuple(values))
        granted = yield from txn.lock(self.lock_name(rid), "X")
        assert granted
        page = yield from self._fetch_page(rid.page_no)
        yield Acquire(page.latch, EXCLUSIVE)
        try:
            if page.peek(rid.slot) is not None:
                raise StorageError(f"slot {rid} is occupied")
        finally:
            page.latch.release(self.system.sim.current)
        yield from self._locked_insert(txn, page, rid, record)
        return rid

    def _locked_insert(self, txn: "Transaction", page: DataPage, rid: RID,
                       record: Record):
        yield Acquire(page.latch, EXCLUSIVE)
        try:
            snapshot = self.maintenance.prepare_insert(txn, rid, record)
            page.put(rid.slot, record)
            log_record = txn.log(
                RecordKind.UPDATE,
                page_id=page.page_id,
                redo=("heap.put", {"table": self.name, "rid": rid,
                                   "values": record.values,
                                   "capacity": self.page_capacity}),
                undo=("heap.insert", {"table": self.name, "rid": rid,
                                      "values": record.values}),
                info={"table": self.name, "action": "insert", "rid": rid,
                      "visible_count": snapshot.count,
                      "sf_routed": list(snapshot.sf_routed)},
            )
            self.system.buffer.mark_dirty(page, log_record.lsn)
        finally:
            page.latch.release(self.system.sim.current)
        yield Delay(self.system.config.record_op_cost)
        self.system.metrics.incr("heap.inserts")
        yield from self.maintenance.apply_direct(txn, snapshot)

    def delete(self, txn: "Transaction", rid: RID):
        """Generator: delete the record at ``rid``; returns the old record."""
        yield from self._intent_lock(txn)
        granted = yield from txn.lock(self.lock_name(rid), "X")
        assert granted
        page = yield from self._fetch_page(rid.page_no)
        yield Acquire(page.latch, EXCLUSIVE)
        try:
            record = page.get(rid.slot)
            snapshot = self.maintenance.prepare_delete(txn, rid, record)
            page.clear(rid.slot)
            log_record = txn.log(
                RecordKind.UPDATE,
                page_id=page.page_id,
                redo=("heap.clear", {"table": self.name, "rid": rid,
                                     "capacity": self.page_capacity}),
                undo=("heap.delete", {"table": self.name, "rid": rid,
                                      "values": record.values}),
                info={"table": self.name, "action": "delete", "rid": rid,
                      "visible_count": snapshot.count,
                      "sf_routed": list(snapshot.sf_routed)},
            )
            self.system.buffer.mark_dirty(page, log_record.lsn)
        finally:
            page.latch.release(self.system.sim.current)
        yield Delay(self.system.config.record_op_cost)
        self.system.metrics.incr("heap.deletes")
        yield from self.maintenance.apply_direct(txn, snapshot)
        return record

    def update(self, txn: "Transaction", rid: RID, new_values: Sequence):
        """Generator: replace the record at ``rid``; returns (old, new)."""
        yield from self._intent_lock(txn)
        new_record = Record(tuple(new_values))
        granted = yield from txn.lock(self.lock_name(rid), "X")
        assert granted
        page = yield from self._fetch_page(rid.page_no)
        yield Acquire(page.latch, EXCLUSIVE)
        try:
            old_record = page.get(rid.slot)
            snapshot = self.maintenance.prepare_update(txn, rid,
                                                       old_record,
                                                       new_record)
            page.put(rid.slot, new_record)
            log_record = txn.log(
                RecordKind.UPDATE,
                page_id=page.page_id,
                redo=("heap.put", {"table": self.name, "rid": rid,
                                   "values": new_record.values,
                                   "capacity": self.page_capacity}),
                undo=("heap.update", {"table": self.name, "rid": rid,
                                      "old_values": old_record.values,
                                      "new_values": new_record.values}),
                info={"table": self.name, "action": "update", "rid": rid,
                      "visible_count": snapshot.count,
                      "sf_routed": list(snapshot.sf_routed)},
            )
            self.system.buffer.mark_dirty(page, log_record.lsn)
        finally:
            page.latch.release(self.system.sim.current)
        yield Delay(self.system.config.record_op_cost)
        self.system.metrics.incr("heap.updates")
        yield from self.maintenance.apply_direct(txn, snapshot)
        return old_record, new_record

    def read(self, txn: "Transaction", rid: RID):
        """Generator: S-lock and read one record."""
        granted = yield from txn.lock(self.lock_name(rid), "S")
        assert granted
        page = yield from self._fetch_page(rid.page_no)
        yield Acquire(page.latch, SHARE)
        try:
            record = page.get(rid.slot)
        finally:
            page.latch.release(self.system.sim.current)
        return record

    def read_latched(self, rid: RID):
        """Generator: latch-only read (no lock) -- what IB uses to verify
        record state during unique-violation checks (section 2.2.3)."""
        page = yield from self._fetch_page(rid.page_no)
        yield Acquire(page.latch, SHARE)
        try:
            record = page.peek(rid.slot)
        finally:
            page.latch.release(self.system.sim.current)
        return record

    # -- page management ---------------------------------------------------------

    def _fetch_page(self, page_no: int):
        if not 0 <= page_no < self.page_count:
            raise RecordNotFoundError(
                f"{self.name} has no page {page_no}")
        page = yield from self.system.buffer.ensure_page(
            self.page_id(page_no), self.page_capacity)
        return page

    def _pick_insert_slot(self, txn: "Transaction"):
        """Find (page, slot) for a new record, append-style.

        Tries the last page; allocates a new page when it is full.  The
        chosen slot's lock is taken conditionally under the latch -- a
        fresh slot's lock is always free unless a rolled-back deleter
        still holds it, in which case we skip to a new page.
        """
        while True:
            if self.page_count == 0:
                page = yield from self._allocate_page()
            else:
                page = yield from self._fetch_page(self.page_count - 1)
            yield Acquire(page.latch, EXCLUSIVE)
            slot = page.free_slot()
            if slot is not None:
                rid = RID(page.page_id.page_no, slot)
                granted = yield from txn.lock(
                    self.lock_name(rid), "X", conditional=True)
                page.latch.release(self.system.sim.current)
                if granted:
                    return page, slot
                # Someone (an uncommitted deleter) still owns this slot's
                # lock; extend the file instead of waiting under risk.
                page_full = True
            else:
                page.latch.release(self.system.sim.current)
                page_full = True
            if page_full:
                yield from self._allocate_page()

    def _allocate_page(self):
        page_no = self.page_count
        page = yield from self.system.buffer.new_page(
            self.page_id(page_no), self.page_capacity)
        self.page_count += 1
        self.system.metrics.incr("heap.pages_allocated")
        return page

    # -- audit access (not part of the simulation; no latching) --------------------

    def audit_records(self) -> Iterator[tuple[RID, Record]]:
        """Every live record, reading through the buffer pool's frames and
        falling back to disk.  For verification code only."""
        for page_no in range(self.page_count):
            pid = self.page_id(page_no)
            page = None
            for frame in self.system.buffer.resident_pages():
                if frame.page_id == pid:
                    page = frame
                    break
            if page is None:
                page = self.system.disk.read_page(pid)
            if page is None:
                continue
            yield from page.live_records()

    # -- recovery operations -----------------------------------------------------

    def _register_operations(self) -> None:
        ops = self.system.log.operations
        if ops.knows("heap.put"):
            return  # one registration per system, shared by all tables
        ops.register("heap.put", redo=_redo_put)
        ops.register("heap.clear", redo=_redo_clear)
        ops.register("heap.insert", redo=_reject_redo, undo=_undo_insert)
        ops.register("heap.delete", redo=_reject_redo, undo=_undo_delete)
        ops.register("heap.update", redo=_reject_redo, undo=_undo_update)


# -- redo handlers (called by restart recovery; generators) ---------------------


def _redo_put(system: "System", record: LogRecord):
    _op, args = record.redo
    page = yield from system.buffer.ensure_page(
        record.page_id, args["capacity"])
    if page.page_lsn < record.lsn:
        rid = args["rid"]
        page.put(rid[1], Record(tuple(args["values"])))
        system.buffer.mark_dirty(page, record.lsn)
        system.metrics.incr("recovery.redos")


def _redo_clear(system: "System", record: LogRecord):
    _op, args = record.redo
    page = yield from system.buffer.ensure_page(
        record.page_id, args["capacity"])
    if page.page_lsn < record.lsn:
        rid = args["rid"]
        page.clear(rid[1])
        system.buffer.mark_dirty(page, record.lsn)
        system.metrics.incr("recovery.redos")


def _reject_redo(system: "System", record: LogRecord):  # pragma: no cover
    raise AssertionError("undo payloads are never redone")


# -- undo handlers (called by Transaction.rollback; generators) ------------------


def _undo_insert(system: "System", txn: "Transaction", record: LogRecord):
    _op, args = record.undo
    table = system.tables[args["table"]]
    rid = RID(*args["rid"])
    page = yield from table._fetch_page(rid.page_no)
    yield Acquire(page.latch, EXCLUSIVE)
    try:
        page.clear(rid.slot)
    finally:
        page.latch.release(system.sim.current)
    yield from table.maintenance.on_undo(
        txn, record, action="insert", rid=rid,
        old_record=Record(tuple(args["values"])), new_record=None)
    clr_redo = ("heap.clear", {"table": table.name, "rid": rid,
                               "capacity": table.page_capacity})
    return clr_redo, page


def _undo_delete(system: "System", txn: "Transaction", record: LogRecord):
    _op, args = record.undo
    table = system.tables[args["table"]]
    rid = RID(*args["rid"])
    restored = Record(tuple(args["values"]))
    page = yield from table._fetch_page(rid.page_no)
    yield Acquire(page.latch, EXCLUSIVE)
    try:
        page.put(rid.slot, restored)
    finally:
        page.latch.release(system.sim.current)
    yield from table.maintenance.on_undo(
        txn, record, action="delete", rid=rid,
        old_record=None, new_record=restored)
    clr_redo = ("heap.put", {"table": table.name, "rid": rid,
                             "values": restored.values,
                             "capacity": table.page_capacity})
    return clr_redo, page


def _undo_update(system: "System", txn: "Transaction", record: LogRecord):
    _op, args = record.undo
    table = system.tables[args["table"]]
    rid = RID(*args["rid"])
    old = Record(tuple(args["old_values"]))
    new = Record(tuple(args["new_values"]))
    page = yield from table._fetch_page(rid.page_no)
    yield Acquire(page.latch, EXCLUSIVE)
    try:
        page.put(rid.slot, old)
    finally:
        page.latch.release(system.sim.current)
    yield from table.maintenance.on_undo(
        txn, record, action="update", rid=rid,
        old_record=new, new_record=old)
    clr_redo = ("heap.put", {"table": table.name, "rid": rid,
                             "values": old.values,
                             "capacity": table.page_capacity})
    return clr_redo, page
