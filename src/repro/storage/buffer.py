"""Buffer pool with LRU replacement, steal/no-force, and prefetch.

Data pages flow through here.  The pool enforces the WAL rule: before a
dirty page is written to disk (eviction or explicit flush), the log is
forced up to the page's Page-LSN.  It also tracks each dirty page's
*recovery LSN* (the LSN that first dirtied it), which restart recovery's
analysis pass uses to bound the redo scan.

All methods that may perform I/O are generators: callers invoke them as
``page = yield from pool.fetch(pid)`` so the simulated clock advances by
the disk cost.  Sequential prefetch (section 2.2.2, [TeGu84]) is exposed as
:meth:`fetch_sequential`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.errors import StorageError
from repro.faultinject.injector import InjectedCrash
from repro.faultinject.sites import fault_point
from repro.metrics import MetricsRegistry
from repro.sim.kernel import Acquire, Delay
from repro.storage.disk import Disk
from repro.storage.page import DataPage
from repro.storage.rid import PageId
from repro.wal.manager import LogManager


class BufferPool:
    """Page cache between processes and the :class:`Disk`."""

    def __init__(self, disk: Disk, log: LogManager, capacity: int = 256,
                 metrics: Optional[MetricsRegistry] = None,
                 sim=None, io=None) -> None:
        if capacity < 1:
            raise StorageError("buffer pool needs at least one frame")
        self.disk = disk
        self.log = log
        self.capacity = capacity
        self.metrics = metrics or MetricsRegistry()
        #: shared-disk model: a :class:`repro.sim.semaphore.Semaphore`
        #: every page I/O holds for its duration, or None for the
        #: unlimited-bandwidth model (each I/O delays only its issuer)
        self.io = io
        self._sim = sim
        self._frames: "OrderedDict[PageId, DataPage]" = OrderedDict()
        #: dirty page table: page_id -> recovery LSN (first dirtying LSN)
        self.dirty: dict[PageId, int] = {}
        #: victims whose eviction write is in flight (still resident so
        #: concurrent fetches hit them; skipped by victim selection so
        #: concurrent evictors don't duplicate the write)
        self._evicting: set[PageId] = set()

    def _charge_io(self, cost: float):
        """Generator: pay ``cost`` simulated time of disk I/O.

        With :attr:`io` set, the I/O holds one disk channel for its
        duration so concurrent I/Os queue (the contention the SLO
        tradeoff suite measures); otherwise a plain delay.
        """
        if cost <= 0:
            return
        if self.io is None:
            yield Delay(cost)
            return
        yield Acquire(self.io, "X")
        try:
            yield Delay(cost)
        finally:
            self.io.release(self._sim.current if self._sim else None)

    # -- fetch paths ---------------------------------------------------------

    def fetch(self, page_id: PageId):
        """Get a page (generator; yields I/O delay on a miss)."""
        page = self._frames.get(page_id)
        if page is not None:
            self._frames.move_to_end(page_id)
            self.metrics.incr("buffer.hits")
            return page
        self.metrics.incr("buffer.misses")
        image = self.disk.read_page(page_id)
        if image is None:
            raise StorageError(f"page {page_id} does not exist on disk")
        yield from self._charge_io(self.disk.read_cost(1))
        page = yield from self._install(image)
        return page

    def fetch_sequential(self, page_ids: list[PageId]):
        """Fetch consecutive pages with one sequential I/O for the misses.

        Models the paper's sequential prefetch: "multiple pages may be read
        in one I/O" (section 2.2.2).  Returns the pages in request order.
        """
        missing = [pid for pid in page_ids if pid not in self._frames]
        if missing:
            self.metrics.incr("buffer.misses", len(missing))
            self.metrics.incr("buffer.prefetches")
            yield from self._charge_io(self.disk.read_cost(len(missing)))
            for pid in missing:
                image = self.disk.read_page(pid)
                if image is None:
                    raise StorageError(f"page {pid} does not exist on disk")
                yield from self._install(image)
        hits = len(page_ids) - len(missing)
        if hits:
            self.metrics.incr("buffer.hits", hits)
        pages = []
        for pid in page_ids:
            page = self._frames.get(pid)
            if page is None:
                # A concurrent fetch (parallel scan readers under a small
                # pool) evicted this page between our prefetch I/O and
                # now; bring it back individually.
                page = yield from self.fetch(pid)
            self._frames.move_to_end(pid)
            pages.append(page)
        return pages

    def new_page(self, page_id: PageId, capacity: int):
        """Create a brand-new page in the pool (no disk read).

        The page reaches disk when evicted or flushed; until then only the
        WAL knows about it -- exactly the window restart recovery must
        handle by re-creating pages from log records.
        """
        if page_id in self._frames or self.disk.has_page(page_id):
            raise StorageError(f"page {page_id} already exists")
        page = DataPage(page_id, capacity, metrics=self.metrics)
        page = yield from self._install(page)
        # A fresh page is dirty from birth: it exists nowhere on disk.  Its
        # conservative recovery LSN is the next LSN to be written.
        self.dirty.setdefault(page_id, self.log.last_lsn + 1)
        return page

    def ensure_page(self, page_id: PageId, capacity: int):
        """Fetch ``page_id``; create it empty if it never reached disk.

        Used by redo handlers replaying an insert into a page that was
        allocated but lost in the crash.
        """
        if page_id in self._frames:
            page = self._frames[page_id]
            self._frames.move_to_end(page_id)
            return page
        if self.disk.has_page(page_id):
            page = yield from self.fetch(page_id)
            return page
        page = yield from self.new_page(page_id, capacity)
        return page

    # -- dirtying and flushing -------------------------------------------------

    def mark_dirty(self, page: DataPage, lsn: int) -> None:
        """Record that ``page`` was changed by the log record ``lsn``.

        The dirty-table entry keeps the *lowest* LSN seen: normally the
        first dirtying LSN; during restart redo it corrects the
        conservative placeholder :meth:`new_page` installed, so a second
        crash still redoes from early enough.
        """
        page.page_lsn = max(page.page_lsn, lsn)
        current = self.dirty.get(page.page_id)
        if current is None or lsn < current:
            self.dirty[page.page_id] = lsn

    def flush_page(self, page_id: PageId):
        """Write one dirty page to disk (WAL rule enforced)."""
        page = self._frames.get(page_id)
        if page is None or page_id not in self.dirty:
            return
        self.log.flush(page.page_lsn)
        yield from self._charge_io(self.disk.write_cost(1))
        kind = fault_point(self.metrics, "buffer.page_flush")
        if kind is not None:
            # lost-flush: the write never reaches the platter although the
            # pool's bookkeeping proceeds; power fails immediately after.
            self.dirty.pop(page_id, None)
            raise InjectedCrash(f"lost page flush of {page_id}")
        # Changes that landed during the write delay are part of the
        # image we persist; re-force the log so the WAL rule holds for
        # them too (no-op when nothing changed).
        self.log.flush(page.page_lsn)
        self.disk.write_page(page)
        self.dirty.pop(page_id, None)
        self.metrics.incr("buffer.page_flushes")

    def flush_all(self):
        """Write every dirty page (used by SF's index checkpoint, §3.2.4).

        Batched put, the write-side twin of :meth:`fetch_sequential`: one
        log force to the highest dirty Page-LSN satisfies the WAL rule
        for the whole set, and the pages go out in a single sequential
        I/O instead of ``n`` random ones.  The per-page
        ``buffer.page_flush`` fault site still fires for every page (the
        lost-flush schedule drops exactly one write, as before).
        """
        tracer = getattr(self.metrics, "tracer", None)
        if tracer is not None:
            tracer.gauge("buffer.dirty", len(self.dirty))
        victims = [page for page in
                   (self._frames.get(page_id) for page_id in list(self.dirty))
                   if page is not None]
        if not victims:
            return
        self.log.flush(max(page.page_lsn for page in victims))
        yield from self._charge_io(self.disk.write_cost(len(victims)))
        for page in victims:
            kind = fault_point(self.metrics, "buffer.page_flush")
            if kind is not None:
                self.dirty.pop(page.page_id, None)
                raise InjectedCrash(f"lost page flush of {page.page_id}")
            # Changes that landed during the batched write delay are part
            # of the image we persist; re-force for them (no-op usually).
            self.log.flush(page.page_lsn)
            self.disk.write_page(page)
            self.dirty.pop(page.page_id, None)
            self.metrics.incr("buffer.page_flushes")

    # -- internals --------------------------------------------------------------

    def _install(self, page: DataPage):
        while (page.page_id not in self._frames
               and len(self._frames) >= self.capacity):
            progress = yield from self._evict_one()
            if not progress:
                # Every frame is latched or mid-eviction (tiny pool,
                # many concurrent users).  Popping a latched page would
                # strand its holder on a zombie object, so run over
                # capacity instead; later installs evict back down.
                self.metrics.incr("buffer.overcommits")
                break
        resident = self._frames.get(page.page_id)
        if resident is not None and resident is not page:
            # A concurrent fetch installed this page while we slept in
            # read/eviction I/O.  Its object is canonical -- processes
            # may already hold (and have updated) it -- and ours is a
            # stale duplicate from before their changes: replacing the
            # frame would silently lose logged-but-unflushed updates.
            self._frames.move_to_end(page.page_id)
            self.metrics.incr("buffer.install_races")
            return resident
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        return page

    def _evict_one(self):
        """Free one frame if possible; True means progress was made.

        Pages whose latch is held (or awaited) are never victims: the
        latch holder owns a reference to the page *object*, and popping
        the frame would divorce that object from the pool -- updates
        applied through it would be logged yet invisible to every later
        fetch, which re-reads the stale disk image.
        """
        victim_id = None
        for candidate, frame in self._frames.items():
            if candidate in self._evicting or frame.latch.busy:
                continue
            victim_id = candidate
            break
        if victim_id is None:
            return False
        victim = self._frames[victim_id]
        if victim_id in self.dirty:
            # steal: write the (possibly uncommitted) page out, WAL
            # first.  The frame stays resident until the write lands:
            # a page popped before its write I/O exists *nowhere* for
            # the duration -- concurrent fetches would raise (or, via
            # ensure_page, silently recreate it empty).
            self._evicting.add(victim_id)
            try:
                self.log.flush(victim.page_lsn)
                yield from self._charge_io(self.disk.write_cost(1))
                kind = fault_point(self.metrics, "buffer.evict_dirty")
                if kind is not None:
                    self.dirty.pop(victim_id, None)
                    self._frames.pop(victim_id, None)
                    raise InjectedCrash(
                        f"lost eviction write of {victim_id}")
                # Changes that landed during the write delay are part of
                # the image we persist; re-force the log for them (WAL).
                self.log.flush(victim.page_lsn)
                self.disk.write_page(victim)
                self.dirty.pop(victim_id, None)
                self.metrics.incr("buffer.evictions.dirty")
            finally:
                self._evicting.discard(victim_id)
            if victim.latch.busy:
                # Someone fetched and latched the page during our write
                # I/O; it must stay resident for them.  The write was
                # not wasted -- the page is clean now -- but no frame
                # was freed, so report progress and let the caller pick
                # another victim.
                self.metrics.incr("buffer.evictions.rescued")
                return True
        else:
            self.metrics.incr("buffer.evictions.clean")
        self._frames.pop(victim_id, None)
        return True

    # -- crash modelling ----------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state (frames and dirty table)."""
        self._frames.clear()
        self.dirty.clear()
        self._evicting.clear()

    # -- introspection --------------------------------------------------------------

    def resident(self, page_id: PageId) -> bool:
        return page_id in self._frames

    def resident_pages(self) -> Iterator[DataPage]:
        return iter(self._frames.values())
