"""Record and page identifiers.

The paper's index entries are ``<key value, RID>`` where the RID is the
record ID of the record containing that key value (section 1.1).  A RID is
``(page number, slot)`` within the table's data file.  RIDs order by page
then slot -- the order IB's sequential scan visits records, which is what
makes SF's ``Target-RID < Current-RID`` visibility test meaningful
(section 3.1).
"""

from __future__ import annotations

from typing import NamedTuple


class RID(NamedTuple):
    """Record identifier: data page number and slot within the page."""

    page_no: int
    slot: int

    def __str__(self) -> str:
        return f"({self.page_no},{self.slot})"


class PageId(NamedTuple):
    """Globally unique page address: owning file name plus page number."""

    file: str
    page_no: int

    def __str__(self) -> str:
        return f"{self.file}:{self.page_no}"


#: Sentinel scan position meaning "IB has finished the data scan".
#: Section 3.2.2: "When IB finishes processing the last data page, it sets
#: Current-RID to infinity", so later file extensions still go to the
#: side-file.
INFINITY_RID = RID(page_no=2**62, slot=0)
