"""Slotted data pages.

Records of a table live in fixed-capacity slotted pages (section 1.1 "Data
Storage Model").  Each page carries a Page-LSN -- the LSN of the last log
record describing a change to the page -- which is how ARIES redo decides
whether a logged change is already present (repeat-history test), and an
S/X latch providing physical consistency (section 1.1 footnote 2).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from repro.errors import PageFullError, RecordNotFoundError
from repro.metrics import MetricsRegistry
from repro.sim.latch import Latch
from repro.storage.rid import PageId, RID


@dataclass(frozen=True)
class Record:
    """One table record: a tuple of column values.

    Records are immutable; an update replaces the record in its slot (the
    paper's update-in-place with before/after images in the log record).
    """

    values: tuple

    def project(self, column_indexes: tuple[int, ...]) -> tuple:
        """Concatenated key-column values (section 1.1: a key value is the
        concatenation of the indexed columns' values)."""
        return tuple(self.values[i] for i in column_indexes)


class DataPage:
    """A slotted page holding up to ``capacity`` records."""

    __slots__ = ("page_id", "capacity", "slots", "page_lsn", "latch",
                 "_live", "_free_hint")

    def __init__(self, page_id: PageId, capacity: int,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.page_id = page_id
        self.capacity = capacity
        self.slots: list[Optional[Record]] = [None] * capacity
        self.page_lsn = 0
        self.latch = Latch(f"data:{page_id}", metrics=metrics)
        #: maintained live-record count and lowest-possibly-free slot
        #: hint: free_slot/live_count/is_full run on every insert of the
        #: preload and workload hot paths, and the former O(capacity)
        #: scans showed up in the wall-clock profiles.
        self._live = 0
        self._free_hint = 0

    # -- slot operations (physical, no logging -- callers log) ------------

    def put(self, slot: int, record: Record) -> None:
        """Place ``record`` in ``slot`` (insert or redo of insert)."""
        self._check_slot(slot)
        if self.slots[slot] is None:
            self._live += 1
        self.slots[slot] = record

    def clear(self, slot: int) -> None:
        """Empty ``slot`` (delete or undo of insert)."""
        self._check_slot(slot)
        if self.slots[slot] is not None:
            self._live -= 1
        self.slots[slot] = None
        if slot < self._free_hint:
            self._free_hint = slot

    def get(self, slot: int) -> Record:
        self._check_slot(slot)
        record = self.slots[slot]
        if record is None:
            raise RecordNotFoundError(
                f"no record at {self.page_id} slot {slot}")
        return record

    def peek(self, slot: int) -> Optional[Record]:
        self._check_slot(slot)
        return self.slots[slot]

    def free_slot(self) -> Optional[int]:
        """Lowest empty slot, or None when the page is full.

        Amortized O(1): the scan starts at the hint (every slot below it
        is known occupied) and parks the hint on the slot it returns, so
        the fill-a-page-left-to-right pattern never rescans.
        """
        slots = self.slots
        for index in range(self._free_hint, self.capacity):
            if slots[index] is None:
                self._free_hint = index
                return index
        self._free_hint = self.capacity
        return None

    def live_records(self) -> list[tuple[RID, Record]]:
        """All occupied slots as ``(rid, record)`` in slot order."""
        page_no = self.page_id.page_no
        return [(RID(page_no, index), record)
                for index, record in enumerate(self.slots)
                if record is not None]

    @property
    def live_count(self) -> int:
        return self._live

    @property
    def is_full(self) -> bool:
        return self._live >= self.capacity

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.capacity:
            raise PageFullError(
                f"slot {slot} out of range for {self.page_id} "
                f"(capacity {self.capacity})")

    # -- crash modelling ----------------------------------------------------

    def clone(self) -> "DataPage":
        """Deep copy of the page *content* for the stable disk image.

        The clone gets a fresh latch: latches are volatile state and do not
        survive a crash.
        """
        twin = DataPage(self.page_id, self.capacity)
        twin.slots = copy.copy(self.slots)  # records are immutable
        twin.page_lsn = self.page_lsn
        twin._live = self._live
        twin._free_hint = self._free_hint
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<DataPage {self.page_id} lsn={self.page_lsn} "
                f"live={self.live_count}/{self.capacity}>")
