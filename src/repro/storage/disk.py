"""Stable storage model.

A :class:`Disk` keeps the crash-surviving image of every page, plus I/O
cost accounting.  Costs follow the paper's discussion in sections 2.2.2 and
2.3.1: random page reads are expensive, while *sequential prefetch* reads
multiple pages in one I/O [TeGu84] and parallel readers overlap I/Os
[PMCLS90].

Cost model (simulated time units):

* ``RANDOM_IO`` for the first page of any read or write;
* ``SEQ_PAGE`` for each additional page of a sequential multi-page read;
* writes are always single-page.

The absolute values are arbitrary; only ratios matter for the experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics import MetricsRegistry
from repro.storage.page import DataPage
from repro.storage.rid import PageId


class Disk:
    """Crash-surviving page images with I/O cost accounting."""

    RANDOM_IO = 10.0
    SEQ_PAGE = 1.0

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self._images: dict[PageId, DataPage] = {}

    # -- cost helpers (callers yield Delay(cost)) ---------------------------

    def read_cost(self, pages: int = 1) -> float:
        """Cost of one sequential read of ``pages`` consecutive pages."""
        if pages <= 0:
            return 0.0
        self.metrics.incr("disk.reads")
        self.metrics.incr("disk.pages_read", pages)
        return self.RANDOM_IO + (pages - 1) * self.SEQ_PAGE

    def write_cost(self, pages: int = 1) -> float:
        if pages <= 0:
            return 0.0
        self.metrics.incr("disk.writes")
        self.metrics.incr("disk.pages_written", pages)
        return self.RANDOM_IO + (pages - 1) * self.SEQ_PAGE

    # -- stable images -------------------------------------------------------

    def write_page(self, page: DataPage) -> None:
        """Store a stable image of ``page`` (caller charges write_cost)."""
        self._images[page.page_id] = page.clone()

    def read_page(self, page_id: PageId) -> Optional[DataPage]:
        """A fresh copy of the stable image, or None if never written."""
        image = self._images.get(page_id)
        return image.clone() if image is not None else None

    def has_page(self, page_id: PageId) -> bool:
        return page_id in self._images

    def drop_file(self, file_name: str) -> None:
        """Discard every stable page of ``file_name`` (index cancel/drop)."""
        doomed = [pid for pid in self._images if pid.file == file_name]
        for pid in doomed:
            del self._images[pid]

    def file_pages(self, file_name: str) -> list[PageId]:
        return sorted(pid for pid in self._images if pid.file == file_name)
