"""Page-based storage substrate: pages, disk, buffer pool, heap tables."""

from repro.storage.buffer import BufferPool
from repro.storage.disk import Disk
from repro.storage.page import DataPage, Record
from repro.storage.rid import INFINITY_RID, PageId, RID
from repro.storage.table import Table

__all__ = [
    "BufferPool",
    "Disk",
    "DataPage",
    "Record",
    "INFINITY_RID",
    "PageId",
    "RID",
    "Table",
]
