"""Fault-site declarations and the ``fault_point`` helper.

A *fault site* is a named place in the code where a crash (or a storage
fault) may be injected.  Instrumented modules call::

    from repro.faultinject.sites import fault_point

    fault_point(self.metrics, "wal.force.after")

which routes the hit to the installed :class:`~repro.faultinject.injector.
FaultInjector` (if any) and bumps the ``faultsite.<name>`` counter in the
metrics registry while an injector is installed.  With no injector the
call returns immediately after one attribute test -- the *zero-cost
disabled path* -- so instrumentation stays on in production runs without
taxing hot loops.  Discovery still works exactly as before: the sweep's
discovery pass installs an *unarmed* injector, which re-enables the
counters and the per-site hit census.

Inner loops that hit a site once per key can hoist the enabled test with
:func:`fault_points_enabled` and skip the call entirely when disabled;
because the guard is exactly the disabled-path test, armed and discovery
runs observe an unchanged hit schedule.

Sites that perform a *write* can additionally honour the damage kinds:

- ``TORN_CAPABLE`` sites may be asked to land their write damaged
  (``torn-write``); ``fault_point`` returns the kind string and the call
  site must damage the write and then raise the returned crash.
- ``LOST_CAPABLE`` sites may be asked to silently drop their write
  (``lost-flush``) and then crash immediately.

For every other site the damage kinds degrade to a plain crash *before*
the write, which is always a legal schedule.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.faultinject.injector import (
    CRASH,
    InjectedCrash,
    LOST_FLUSH,
    TORN_WRITE,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import MetricsRegistry

#: sites whose write can be landed damaged-but-detectable
TORN_CAPABLE = frozenset({
    "btree.force",
})

#: sites whose page write can be silently dropped before the crash
LOST_CAPABLE = frozenset({
    "buffer.page_flush",
    "buffer.evict_dirty",
})

#: documentation of every statically declared site (dynamic kernel sites
#: are named ``kernel.step.<process>``); used by the sweep report.
SITE_DOCS = {
    # WAL
    "wal.append": "after a log record is appended to the in-memory tail",
    "wal.force.before": "force requested, nothing flushed yet",
    "wal.force.after": "log prefix just became stable",
    "wal.checkpoint.before_master":
        "checkpoint record flushed but master pointer not yet updated",
    # buffer pool
    "buffer.page_flush": "buffer manager writing one dirty page back",
    "buffer.evict_dirty": "steal: evicting a dirty page for replacement",
    # B+-tree
    "btree.split": "mid leaf/branch split, before the parent is fixed up",
    "btree.txn_insert": "logged transactional insert applied in memory",
    "btree.txn_delete": "logged transactional delete applied in memory",
    "btree.ib_insert": "NSF: one batch of IB top-down inserts applied",
    "btree.drain_apply": "SF: one side-file entry applied to the new index",
    "btree.force": "unlogged tree snapshot being written to stable storage",
    "btree.force.after": "tree snapshot just became stable",
    # side-file
    "sidefile.append": "updater appended an entry to the side-file",
    "sidefile.force": "side-file force: entries becoming stable",
    # shared builder machinery
    "build.scan_page": "scan phase read one heap page",
    "build.sort_push": "one extracted key pushed into run formation",
    "build.scan_checkpoint": "scan/sort checkpoint about to be taken",
    "build.sort_finish": "run formation sealed, merge about to start",
    "build.checkpoint.before": "utility checkpoint requested",
    "build.checkpoint.mid":
        "trees forced but WAL checkpoint record not yet written",
    "build.checkpoint.after": "utility checkpoint fully stable",
    # NSF builder
    "nsf.descriptor_done": "NSF catalog descriptor committed",
    "nsf.insert_batch": "NSF applied one batch of sorted-key inserts",
    "nsf.ib_commit": "NSF IB transaction committed",
    "nsf.insert_checkpoint": "NSF insert-phase checkpoint about to be taken",
    "nsf.insert_done": "NSF insert phase finished, index about to flip",
    # SF builder
    "sf.descriptor_done": "SF descriptor + side-file installed",
    "sf.scan_done": "SF scan/sort finished, load about to start",
    "sf.load_batch": "SF bulk loader appended one batch of leaf entries",
    "sf.load_done": "SF bottom-up load finished",
    "sf.drain_start": "SF side-file drain beginning",
    "sf.drain_checkpoint": "SF drain checkpoint about to be taken",
    "sf.flag_flip.before": "side-file drained, flag flip not yet done",
    "sf.flag_flip.after": "Index_Build flag just flipped to AVAILABLE",
    # compressed-key sort codec (repro.sort.codec, experiment E25)
    "sort.codec.bind":
        "a key codec derived its column layout from the first scanned key",
    "sort.codec.spill":
        "an oversized key spilled to raw comparison alongside its prefix",
    # fast index reconstruction from sealed runs (repro.core.rebuild)
    "rebuild.sealed":
        "a build's final merged run sealed for future reconstruction",
    "rebuild.reset":
        "rebuild checkpointed, descriptor flip + tree drop not yet done",
    "rebuild.reuse_runs":
        "rebuild's final merger prepared over the sealed runs (zero scans)",
    "rebuild.replayed":
        "rebuild replayed the logged index history over the reloaded tree",
    # multibuild (K indexes, one scan, section 6.2)
    "multibuild.scan_done":
        "shared scan/sort finished; per-index manifest about to start",
    "multibuild.index_loaded":
        "one index's bottom-up load finished, its drain not yet started",
    "multibuild.index_done":
        "one index flipped AVAILABLE and its manifest entry checkpointed",
    # PSF (partitioned parallel) builder
    "psf.descriptor_done":
        "PSF descriptors + side-files + frontier vector installed",
    "psf.worker.scan_page": "a PSF shard worker read one heap page",
    "psf.worker.checkpoint":
        "a PSF shard worker's independent sort checkpoint beginning",
    "psf.worker_done":
        "a shard finished scanning: runs sealed, frontier at infinity",
    "psf.manifest_checkpoint": "the shared build manifest just checkpointed",
    "psf.barrier": "all shard workers arrived at the scan barrier",
    "psf.scan_done": "PSF scan/sort finished across every shard",
    "psf.merge_batch": "a shard merge worker moved one batch of keys",
    "psf.merge_run_done":
        "a merged run sealed and its inputs discarded (atomic)",
    "psf.merge_shard_done": "one shard's runs collapsed to the merge target",
    "psf.merge_done": "every shard merge worker joined",
    # replication cluster (repro.cluster)
    "cluster.ship":
        "a shipped WAL batch arrived at a replica, not yet applied",
    "cluster.apply":
        "a replica is about to redo one shipped batch locally",
    "cluster.promote":
        "failover chose a candidate, promotion not yet complete",
}


#: memoised ``faultsite.<name>`` counter names (f-string built once per site)
_COUNTER_NAMES: dict[str, str] = {}


def fault_points_enabled(metrics: Optional["MetricsRegistry"]) -> bool:
    """True when a fault injector is installed on ``metrics``.

    Hot loops hoist this test and skip per-key :func:`fault_point` calls
    when it is False; the guard is identical to the disabled path inside
    ``fault_point``, so injected/discovery schedules are unaffected.
    """
    return metrics is not None \
        and getattr(metrics, "fault_injector", None) is not None


def fault_point(metrics: Optional["MetricsRegistry"],
                site: str) -> Optional[str]:
    """Declare one hit of ``site``.

    With no injector installed this returns immediately (zero-cost
    disabled path).  With one installed it bumps the discovery counter
    and asks the injector whether a fault fires here.  Returns ``None``
    (keep going), or a damage-kind string (``torn-write`` /
    ``lost-flush``) that the *call site* must honour by damaging or
    dropping its write and then raising :class:`InjectedCrash`.  A plain
    ``crash`` is raised directly.

    Damage kinds degrade gracefully: if the site is not capable of the
    requested damage, the fault fires as a plain crash before the write.
    """
    if metrics is None:
        return None
    injector = getattr(metrics, "fault_injector", None)
    if injector is None:
        return None
    name = _COUNTER_NAMES.get(site)
    if name is None:
        name = _COUNTER_NAMES[site] = f"faultsite.{site}"
    metrics.incr(name)
    kind = injector.hit(site)
    if kind is None or kind == CRASH:
        return None
    if kind == TORN_WRITE and site in TORN_CAPABLE:
        return kind
    if kind == LOST_FLUSH and site in LOST_CAPABLE:
        return kind
    # the site cannot express the damage: degrade to a pre-write crash
    raise InjectedCrash(
        f"injected power failure at {site} ({kind} degraded to crash)")
