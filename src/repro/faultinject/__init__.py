"""Deterministic fault injection and crash sweeps.

``injector``
    :class:`FaultPlan` / :class:`FaultInjector`: arm one crash, torn
    page write, or lost buffer flush at the N-th hit of a named site.
``sites``
    :func:`fault_point` and the site registry -- instrumented subsystems
    (kernel, WAL, buffer pool, B+-tree, side-file, both builders) call
    this to publish countable crash points through the metrics registry.
``sweep``
    The sweep driver: discover every (site, hit) pair reachable in a
    seeded build, then replay the build once per pair with a fault armed
    and prove restart + audit passes.  Also the ``python -m
    repro.faultinject.sweep`` CLI.
``shrink``
    Minimal-workload-prefix shrinking for failing plans, with a schedule
    dump for bug reports.

This ``__init__`` deliberately imports only the leaf modules (injector,
sites); ``sweep`` and ``shrink`` import the full system stack and must be
imported explicitly so low-level modules can depend on ``sites`` without
cycles.
"""

from repro.faultinject.injector import (
    CRASH,
    FaultInjector,
    FaultPlan,
    FiredFault,
    InjectedCrash,
    KINDS,
    LOST_FLUSH,
    TORN_WRITE,
)
from repro.faultinject.sites import (
    LOST_CAPABLE,
    SITE_DOCS,
    TORN_CAPABLE,
    fault_point,
    fault_points_enabled,
)

__all__ = [
    "CRASH",
    "TORN_WRITE",
    "LOST_FLUSH",
    "KINDS",
    "FaultInjector",
    "FaultPlan",
    "FiredFault",
    "InjectedCrash",
    "fault_point",
    "fault_points_enabled",
    "SITE_DOCS",
    "TORN_CAPABLE",
    "LOST_CAPABLE",
]
