"""Shrink a failing fault plan to a minimal reproduction.

When a sweep plan fails, the interesting schedule is usually reachable
with far less workload than the sweep ran.  :func:`shrink_failure`
re-runs the same (site, hit, kind) plan while halving the preloaded
record count and the concurrent operation count, keeping each reduction
only if the failure persists.  Because the simulator is deterministic,
the shrunk configuration is an exact reproduction recipe, and
:func:`schedule_dump` renders it (plus the fired fault and the site hit
census of the failing run) as a paste-able bug report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.faultinject.injector import FaultPlan
from repro.faultinject.sweep import PlanResult, SweepConfig, run_plan

#: never shrink below these (the build needs *some* table to index)
MIN_RECORDS = 20
MIN_OPERATIONS = 0


@dataclass
class ShrinkResult:
    """The smallest configuration that still reproduces the failure."""

    plan: FaultPlan
    config: SweepConfig
    result: PlanResult
    attempts: int

    def report(self) -> str:
        return schedule_dump(self.plan, self.config, self.result,
                             attempts=self.attempts)


def shrink_failure(config: SweepConfig, plan: FaultPlan,
                   max_attempts: int = 16) -> ShrinkResult:
    """Minimize ``config`` while ``plan`` still fails under it.

    Greedy halving, one field at a time (records, then operations, then
    workers); each candidate is a full injected run, so the cost is a
    handful of extra simulations.  If the plan does not actually fail
    under ``config``, the original configuration is returned untouched.
    """
    best = run_plan(config, plan)
    attempts = 1
    if best.passed:
        return ShrinkResult(plan=plan, config=config, result=best,
                            attempts=attempts)
    current = config
    for field_name, floor in (("records", MIN_RECORDS),
                              ("operations", MIN_OPERATIONS),
                              ("workers", 1)):
        while attempts < max_attempts:
            value = getattr(current, field_name)
            smaller = max(floor, value // 2)
            if smaller == value:
                break
            candidate = replace(current, **{field_name: smaller})
            result = run_plan(candidate, plan)
            attempts += 1
            if result.failed:
                current, best = candidate, result
            else:
                break
    return ShrinkResult(plan=plan, config=current, result=best,
                        attempts=attempts)


def schedule_dump(plan: FaultPlan, config: SweepConfig,
                  result: PlanResult, attempts: int = 1) -> str:
    """Render a deterministic reproduction recipe for a failing plan."""
    lines = [
        f"fault plan  : {plan.describe()}",
        f"failure     : {result.detail or '(passed)'}",
        f"fired       : {'yes, at t=%.3f' % result.fired_at if result.fired else 'no'}",
        "reproduce   : run_plan(SweepConfig("
        f"builder={config.builder!r}, records={config.records}, "
        f"operations={config.operations}, workers={config.workers}, "
        f"seed={config.seed}), "
        f"FaultPlan({plan.site!r}, {plan.hit}, {plan.kind!r}))",
        f"shrink runs : {attempts}",
        "site hits in the failing run:",
    ]
    for site in sorted(result.site_hits):
        lines.append(f"  {site:<32} {result.site_hits[site]:>6}")
    return "\n".join(lines)
