"""Shrink a failing plan to a minimal reproduction.

When a sweep plan fails, the interesting schedule is usually reachable
with far less workload than the sweep ran.  :func:`shrink_failure`
re-runs the same plan while halving the preloaded record count and the
concurrent operation count, keeping each reduction only if the failure
persists.  Because the simulator is deterministic, the shrunk
configuration is an exact reproduction recipe, and :func:`schedule_dump`
renders it (plus the fired fault and the site hit census of the failing
run) as a paste-able bug report.

The shrinker is generic over plan types: it was written for
:class:`~repro.faultinject.injector.FaultPlan` but any
``(config, plan)`` pair works as long as

* ``config`` is a dataclass with the fields named by ``floors``
  (``records``/``operations``/``workers`` by default),
* ``runner(config, plan)`` re-executes the plan deterministically and
  returns a result exposing boolean ``passed``/``failed``, and
* ``dump(plan, config, result, attempts=...)`` renders a report.

:mod:`repro.schedsweep` reuses it with a schedule plan, its own runner,
and its own dump, so schedule failures shrink exactly like crash
failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.faultinject.injector import FaultPlan
from repro.faultinject.sweep import PlanResult, SweepConfig, run_plan

#: never shrink below these (the build needs *some* table to index)
MIN_RECORDS = 20
MIN_OPERATIONS = 0

#: default shrink schedule: ``(config field, floor)`` pairs tried in order
DEFAULT_FLOORS: tuple[tuple[str, int], ...] = (
    ("records", MIN_RECORDS),
    ("operations", MIN_OPERATIONS),
    ("workers", 1),
)


@dataclass
class ShrinkResult:
    """The smallest configuration that still reproduces the failure."""

    plan: Any
    config: Any
    result: Any
    attempts: int
    #: report renderer captured from the shrink call, so the result knows
    #: how to describe plans of any type
    dump: Callable[..., str] = field(default=None, repr=False)  # type: ignore[assignment]

    def report(self) -> str:
        renderer = self.dump if self.dump is not None else schedule_dump
        return renderer(self.plan, self.config, self.result,
                        attempts=self.attempts)


def shrink_failure(config: Any, plan: Any, max_attempts: int = 16, *,
                   runner: Callable[[Any, Any], Any] = run_plan,
                   floors: tuple[tuple[str, int], ...] = DEFAULT_FLOORS,
                   dump: Callable[..., str] = None,  # type: ignore[assignment]
                   ) -> ShrinkResult:
    """Minimize ``config`` while ``plan`` still fails under it.

    Greedy halving, one field at a time (by default records, then
    operations, then workers); each candidate is a full re-run via
    ``runner``, so the cost is a handful of extra simulations.  If the
    plan does not actually fail under ``config``, the original
    configuration is returned untouched.

    The defaults reproduce the historical fault-plan behaviour
    (``runner=run_plan``, fault-plan report).  Pass ``runner``/``floors``/
    ``dump`` to shrink other plan types -- see the module docstring for
    the protocol.
    """
    best = runner(config, plan)
    attempts = 1
    if best.passed:
        return ShrinkResult(plan=plan, config=config, result=best,
                            attempts=attempts, dump=dump)
    current = config
    for field_name, floor in floors:
        while attempts < max_attempts:
            value = getattr(current, field_name)
            smaller = max(floor, value // 2)
            if smaller == value:
                break
            candidate = replace(current, **{field_name: smaller})
            result = runner(candidate, plan)
            attempts += 1
            if result.failed:
                current, best = candidate, result
            else:
                break
    return ShrinkResult(plan=plan, config=current, result=best,
                        attempts=attempts, dump=dump)


def schedule_dump(plan: FaultPlan, config: SweepConfig,
                  result: PlanResult, attempts: int = 1) -> str:
    """Render a deterministic reproduction recipe for a failing plan."""
    lines = [
        f"fault plan  : {plan.describe()}",
        f"failure     : {result.detail or '(passed)'}",
        f"fired       : {'yes, at t=%.3f' % result.fired_at if result.fired else 'no'}",
        "reproduce   : run_plan(SweepConfig("
        f"builder={config.builder!r}, records={config.records}, "
        f"operations={config.operations}, workers={config.workers}, "
        f"seed={config.seed}), "
        f"FaultPlan({plan.site!r}, {plan.hit}, {plan.kind!r}))",
        f"shrink runs : {attempts}",
        "site hits in the failing run:",
    ]
    for site in sorted(result.site_hits):
        lines.append(f"  {site:<32} {result.site_hits[site]:>6}")
    return "\n".join(lines)
