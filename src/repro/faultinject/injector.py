"""Deterministic single-fault injection.

A :class:`FaultInjector` sits between the instrumented subsystems and the
simulator.  Instrumented code declares named *fault sites* by calling
:func:`repro.faultinject.sites.fault_point`; the injector counts every hit
(publishing ``faultsite.<name>`` counters through the system's
:class:`~repro.metrics.MetricsRegistry`) and, when armed with a
:class:`FaultPlan`, fires exactly one fault at the N-th hit of one site:

``crash``
    Raise :class:`InjectedCrash` (a :class:`~repro.errors.SystemCrash`)
    from inside the running process -- the kernel stops exactly as it
    does for any simulated power failure.

``torn-write``
    The write in progress at the site reaches stable storage damaged
    (detectable, as a checksum mismatch would be), then the system
    crashes.  Only sites declared torn-capable honour this kind; today
    that is the B+-tree snapshot force, modelling a torn write of index
    pages during SF's unlogged bottom-up build (sections 3.2.4 and 6).

``lost-flush``
    The page write silently never reaches the disk although the buffer
    pool's bookkeeping proceeds, and the system crashes immediately --
    the adversarial instant for the WAL/steal protocol.

Because the simulator is deterministic, the N-th hit of a site happens at
the same instant in every run with the same seed, so a sweep can first
*discover* sites with an unarmed injector and then replay one run per
(site, hit, kind) triple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import SystemCrash

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Process
    from repro.system import System

#: plain power failure at the site
CRASH = "crash"
#: the write at the site lands damaged-but-detectable, then power fails
TORN_WRITE = "torn-write"
#: the page write silently never happens, bookkeeping proceeds, power fails
LOST_FLUSH = "lost-flush"

KINDS = (CRASH, TORN_WRITE, LOST_FLUSH)


class InjectedCrash(SystemCrash):
    """A power failure injected by a :class:`FaultInjector`."""


@dataclass(frozen=True)
class FaultPlan:
    """Arm one fault: ``kind`` at the ``hit``-th (1-based) hit of ``site``."""

    site: str
    hit: int = 1
    kind: str = CRASH

    def __post_init__(self) -> None:
        if self.hit < 1:
            raise ValueError(f"hit numbers are 1-based, got {self.hit}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def describe(self) -> str:
        return f"{self.kind}@{self.site}#{self.hit}"


@dataclass
class FiredFault:
    """What actually fired (recorded for reports and shrink dumps)."""

    site: str
    hit: int
    kind: str
    sim_time: float = 0.0


class FaultInjector:
    """Counts fault-site hits and fires at most one armed fault.

    Install on a system with :meth:`install`; the system's metrics
    registry and simulator then route every site hit here.  A fresh
    system built by restart recovery gets a fresh registry, so the
    injector is automatically disarmed for the recovery and resume run
    (the single-fault model the sweep proves recovery under).
    """

    def __init__(self, plan: Optional[FaultPlan] = None, *,
                 watch_processes: tuple = ("builder", "resumed")) -> None:
        self.plan = plan
        #: process names whose scheduler steps count as kernel fault sites
        self.watch_processes = set(watch_processes)
        self.hits: dict[str, int] = {}
        self.fired: Optional[FiredFault] = None
        self.system: Optional["System"] = None

    # -- wiring --------------------------------------------------------

    def install(self, system: "System") -> "FaultInjector":
        """Attach to ``system``: every fault_point and kernel step of a
        watched process now reports here."""
        self.system = system
        system.metrics.fault_injector = self
        system.sim.fault_injector = self
        return self

    def uninstall(self) -> None:
        if self.system is not None:
            self.system.metrics.fault_injector = None
            self.system.sim.fault_injector = None
            self.system = None

    # -- the hot path --------------------------------------------------

    def hit(self, site: str) -> Optional[str]:
        """Record one hit of ``site``.

        Returns None normally.  When the armed plan matches and its kind
        is ``crash``, raises :class:`InjectedCrash`; for the damage kinds
        the *site* applies the damage, so the kind string is returned and
        the caller is responsible for raising the crash after damaging
        its write (see :func:`repro.faultinject.sites.fault_point`).
        """
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        plan = self.plan
        if plan is None or self.fired is not None:
            return None
        if plan.site != site or plan.hit != count:
            return None
        self.fired = FiredFault(site=site, hit=count, kind=plan.kind,
                                sim_time=self._now())
        if plan.kind == CRASH:
            raise InjectedCrash(
                f"injected power failure at {site} hit #{count}")
        return plan.kind

    def kernel_step(self, proc: "Process") -> Optional[InjectedCrash]:
        """Called by the simulator before dispatching ``proc``.

        Returns an :class:`InjectedCrash` to throw into the process when
        the armed plan targets this step, else None.  Only processes in
        :attr:`watch_processes` are counted (one site per process name),
        keeping the site space finite.
        """
        if proc.name not in self.watch_processes:
            return None
        site = f"kernel.step.{proc.name}"
        try:
            self.hit(site)
        except InjectedCrash as crash:
            return crash
        return None

    def _now(self) -> float:
        if self.system is not None:
            return self.system.sim.now
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        armed = self.plan.describe() if self.plan is not None else "unarmed"
        state = "fired" if self.fired else "waiting"
        return f"<FaultInjector {armed} {state} sites={len(self.hits)}>"
