"""Crash-sweep driver: crash a build at every fault site, prove recovery.

The sweep exploits the simulator's determinism (section 7's argument that
restart recovery "can be tested systematically"):

1. **Discover** -- run one clean seeded build with an *unarmed*
   :class:`~repro.faultinject.injector.FaultInjector` installed; every
   :func:`~repro.faultinject.sites.fault_point` hit is counted, leaving
   the full list of reachable (site, hit-count) pairs.
2. **Enumerate** -- pick crash instants per site (first hit, last hit,
   optionally a middle hit) and fault kinds per site capability.
3. **Replay** -- for each plan, re-run the identical seeded build with
   the fault armed; the fault fires at exactly the discovered instant.
4. **Prove** -- restart recovery, resume (or re-issue) the build, run it
   to completion and :func:`~repro.verify.audit_index` the result.  Any
   exception or audit failure is a sweep failure.

CLI::

    python -m repro.faultinject.sweep --builder sf --records 500
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core import (
    BuildOptions,
    IndexSpec,
    build_pre_undo,
    get_builder,
    resume_build,
)
from repro.faultinject.injector import (
    CRASH,
    FaultInjector,
    FaultPlan,
    LOST_FLUSH,
    TORN_WRITE,
)
from repro.faultinject.sites import LOST_CAPABLE, SITE_DOCS, TORN_CAPABLE
from repro.recovery import restart
from repro.system import System, SystemConfig
from repro.verify import audit_index
from repro.workloads import WorkloadDriver, WorkloadSpec

INDEX_NAME = "idx"

#: the K=3 spec set used by ``--builder multi`` (section 6.2): two
#: single-column indexes plus a composite, so the sweep crosses every
#: per-index pipeline boundary (load/drain/flip) of the shared scan
MULTI_SPECS = (
    IndexSpec.of("idx", ["k"]),
    IndexSpec.of("idx2", ["p"]),
    IndexSpec.of("idx3", ["k", "p"]),
)


def _index_specs(builder: str) -> list:
    """The index specs one sweep builds: K=3 for multi, else one."""
    if builder == "multi":
        return list(MULTI_SPECS)
    return [IndexSpec.of(INDEX_NAME, ["k"])]


@dataclass(frozen=True)
class SweepConfig:
    """One sweep's fully deterministic build recipe."""

    builder: str = "sf"
    records: int = 500          # heap rows preloaded before the build
    operations: int = 150       # concurrent update ops during the build
    workers: int = 2
    seed: int = 7
    buffer_frames: int = 80     # modest pool; large tables reach evictions
    checkpoint_every_pages: int = 8
    checkpoint_every_keys: int = 48
    commit_every_keys: int = 24
    max_hits_per_site: int = 2  # 1 = first hit only, 2 = first+last, 3 = +middle
    include_damage_kinds: bool = True
    max_plans: Optional[int] = None
    partitions: int = 2         # psf shard count (ignored by nsf/sf)
    #: IB admission control (work items / time unit); None = unthrottled.
    #: The throttle must be crash-transparent: every plan of a throttled
    #: sweep recovers and audits exactly like the unthrottled sweep.
    build_rate_limit: Optional[float] = None
    #: compressed-key sort (experiment E25).  The codec must be
    #: crash-transparent too: every plan of a codec-on sweep recovers
    #: and audits exactly like the codec-off sweep, with the resumed
    #: sorters adopting the checkpointed column layout.
    compressed_keys: bool = False

    def system_config(self) -> SystemConfig:
        return SystemConfig(page_capacity=8, leaf_capacity=8,
                            buffer_frames=self.buffer_frames,
                            sort_workspace=16, merge_fanin=4,
                            build_rate_limit=self.build_rate_limit)

    def build_options(self) -> BuildOptions:
        return BuildOptions(
            checkpoint_every_pages=self.checkpoint_every_pages,
            checkpoint_every_keys=self.checkpoint_every_keys,
            commit_every_keys=self.commit_every_keys,
            partitions=self.partitions,
            compressed_keys=self.compressed_keys)

    def make_injector(self, plan: Optional[FaultPlan] = None
                      ) -> FaultInjector:
        """Injector whose kernel-step watch list covers this builder's
        processes: psf adds the per-shard scan and merge workers, so the
        sweep censuses dynamic ``kernel.step.psf-worker-<i>`` /
        ``kernel.step.psf-merge-<i>`` sites per worker."""
        watch = ["builder", "resumed"]
        if self.builder == "psf":
            for shard in range(self.partitions):
                watch.append(f"psf-worker-{shard}")
                watch.append(f"psf-merge-{shard}")
        return FaultInjector(plan, watch_processes=tuple(watch))


@dataclass
class PlanResult:
    """Outcome of one injected run."""

    plan: FaultPlan
    fired: bool = False
    fired_at: float = 0.0
    passed: bool = False
    detail: str = ""
    site_hits: dict = field(default_factory=dict)
    #: JSONL trace of the failed run (build + crash + recovery attempt);
    #: None for passing plans -- only failures carry their evidence
    trace: Optional[str] = None

    @property
    def failed(self) -> bool:
        return not self.passed


@dataclass
class SweepReport:
    """Per-plan results plus the discovery census."""

    config: SweepConfig
    discovered: dict
    results: list

    @property
    def sites(self) -> list:
        return sorted(self.discovered)

    @property
    def failures(self) -> list:
        return [r for r in self.results if r.failed]

    @property
    def all_passed(self) -> bool:
        return not self.failures

    def to_text(self) -> str:
        lines = [
            f"crash sweep: builder={self.config.builder} "
            f"records={self.config.records} seed={self.config.seed}",
            f"{len(self.discovered)} fault sites discovered, "
            f"{len(self.results)} plans run",
            "",
            f"{'site':<32} {'hits':>6}  plans  result",
        ]
        by_site: dict[str, list[PlanResult]] = {}
        for result in self.results:
            by_site.setdefault(result.plan.site, []).append(result)
        for site in self.sites:
            site_results = by_site.get(site, [])
            bad = [r for r in site_results if r.failed]
            if not site_results:
                verdict = "-"
            elif not bad:
                verdict = "PASS"
            else:
                verdict = f"FAIL ({', '.join(r.plan.describe() for r in bad)})"
            lines.append(f"{site:<32} {self.discovered[site]:>6}  "
                         f"{len(site_results):>5}  {verdict}")
        lines.append("")
        lines.append(f"{len(self.results) - len(self.failures)}/"
                     f"{len(self.results)} plans recovered and audited clean")
        for result in self.failures:
            lines.append(f"  FAIL {result.plan.describe()}: {result.detail}")
        return "\n".join(lines)


# -- one deterministic build run ---------------------------------------------


def _start_build(config: SweepConfig,
                 injector: Optional[FaultInjector] = None,
                 tracer=None):
    """Preload the table, then launch the builder and the workload.

    Returns ``(system, table, driver, builder_proc)``.  The injector is
    installed *after* the preload, so site hit counts (and therefore plan
    hit numbers) cover exactly the build-era schedule.  ``tracer`` (a
    :class:`~repro.obs.TraceRecorder`) attaches *passively* -- no gauge
    sampler process -- so the traced schedule is step-identical to the
    untraced one and plan hit numbers stay valid.
    """
    system = System(config.system_config(), seed=config.seed)
    if tracer is not None:
        from repro.obs import enable_tracing
        enable_tracing(system, tracer)
    table = system.create_table("t", ["k", "p"])
    spec = WorkloadSpec(operations=config.operations, workers=config.workers,
                        think_time=1.0, rollback_fraction=0.2)
    driver = WorkloadDriver(system, table, spec, seed=config.seed)
    preload = system.spawn(driver.preload(config.records), name="preload")
    system.run()
    if preload.error is not None:  # pragma: no cover - setup bug
        raise preload.error
    if config.builder == "rebuild":
        # Seed the sealed runs with one clean, uninjected SF build; the
        # injector installs after it, so the census covers exactly the
        # rebuild-era schedule.
        seed = get_builder("sf")(system, table,
                                 _index_specs(config.builder),
                                 options=config.build_options())
        seed_proc = system.spawn(seed.run(), name="seed-builder")
        system.run()
        if seed_proc.error is not None:  # pragma: no cover - setup bug
            raise seed_proc.error
    if injector is not None:
        injector.install(system)
    if config.builder == "rebuild":
        builder = system.rebuild_index(INDEX_NAME,
                                       options=config.build_options())
    else:
        builder_cls = get_builder(config.builder)
        builder = builder_cls(system, table, _index_specs(config.builder),
                              options=config.build_options())
    proc = system.spawn(builder.run(), name="builder")
    driver.spawn_workers()
    return system, table, proc


def discover(config: SweepConfig, tracer=None) -> dict:
    """Run the build once, unarmed; return the {site: hit count} census.

    Also asserts the clean run completes and audits, so a broken baseline
    is reported as such rather than as a wall of injected failures.
    """
    injector = config.make_injector()
    system, _table, proc = _start_build(config, injector, tracer=tracer)
    system.run()
    if proc.error is not None:
        raise proc.error
    if system.sim.crashed:  # pragma: no cover - nothing armed
        raise RuntimeError("clean discovery run crashed")
    for spec in _index_specs(config.builder):
        audit_index(system, system.indexes[spec.name])
    return dict(injector.hits)


def _recover_and_audit(config: SweepConfig, system: System) -> str:
    """Restart, resume (or re-issue) the build, audit; '' or failure text."""
    specs = _index_specs(config.builder)
    recovered, state = restart(system, pre_undo=build_pre_undo)
    resumed = resume_build(recovered, state)
    if resumed is not None:
        proc = recovered.spawn(resumed.run(), name="resumed")
        recovered.run()
        if proc.error is not None:
            raise proc.error
    if config.builder == "rebuild" and resumed is None:
        # The crash predated the rebuild's first (pre-flip) checkpoint:
        # the live index survived untouched and AVAILABLE.  Re-issue the
        # rebuild -- the sealed runs must still be valid.
        rebuilder = recovered.rebuild_index(
            INDEX_NAME, options=config.build_options())
        proc = recovered.spawn(rebuilder.run(), name="resumed")
        recovered.run()
        if proc.error is not None:
            raise proc.error
    if any(spec.name not in recovered.indexes for spec in specs):
        # The crash landed before the build's first checkpoint: the
        # orphaned descriptors were discarded and the build is simply
        # reissued from scratch (the documented contract).
        rebuild_cls = get_builder(config.builder)
        table = recovered.tables["t"]
        rebuilder = rebuild_cls(recovered, table, list(specs),
                                options=config.build_options())
        proc = recovered.spawn(rebuilder.run(), name="resumed")
        recovered.run()
        if proc.error is not None:
            raise proc.error
    from repro.core.descriptor import IndexState
    for spec in specs:
        descriptor = recovered.indexes[spec.name]
        if descriptor.state is not IndexState.AVAILABLE:
            return (f"index {spec.name} state {descriptor.state!r} "
                    f"after resume")
        audit_index(recovered, descriptor)
    return ""


def run_plan(config: SweepConfig, plan: FaultPlan) -> PlanResult:
    """Replay the seeded build with ``plan`` armed; recover and audit.

    Every run records a passive trace; a failing plan's
    :attr:`PlanResult.trace` carries the whole story (build spans, the
    injected crash, the recovery attempt) as JSONL for offline triage
    with ``python -m repro.obs.report``.
    """
    from repro.obs import TraceRecorder

    result = PlanResult(plan=plan)
    recorder = TraceRecorder()
    injector = config.make_injector(plan)
    system, _table, proc = _start_build(config, injector, tracer=recorder)
    system.run()
    result.site_hits = dict(injector.hits)
    if injector.fired is None:
        # The site/hit pair was not reached (possible when a config diff
        # from discovery changes the schedule); the run is then a clean
        # build and must still audit.
        result.detail = "fault did not fire"
        if proc.error is not None:
            result.detail = f"did not fire; builder error: {proc.error!r}"
            result.trace = recorder.to_jsonl()
            return result
        try:
            for spec in _index_specs(config.builder):
                audit_index(system, system.indexes[spec.name])
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            result.detail = f"did not fire; audit failed: {exc!r}"
            result.trace = recorder.to_jsonl()
            return result
        result.passed = True
        return result
    result.fired = True
    result.fired_at = injector.fired.sim_time
    if not system.sim.crashed:
        result.detail = "fault fired but system did not crash"
        result.trace = recorder.to_jsonl()
        return result
    try:
        failure = _recover_and_audit(config, system)
    except Exception as exc:  # noqa: BLE001 - report, don't mask
        result.detail = f"recovery raised: {exc!r}"
        result.trace = recorder.to_jsonl()
        return result
    if failure:
        result.detail = failure
        result.trace = recorder.to_jsonl()
        return result
    result.passed = True
    return result


# -- plan enumeration ---------------------------------------------------------


def enumerate_plans(config: SweepConfig, discovered: dict) -> list:
    """Stratified (site, hit, kind) plans from the discovery census.

    Per site: the first hit, the last hit, and (at ``max_hits_per_site``
    >= 3) a middle hit.  Damage kinds are added only where the site can
    express them (:data:`TORN_CAPABLE` / :data:`LOST_CAPABLE`).
    """
    plans = []
    for site in sorted(discovered):
        count = discovered[site]
        hits = {1}
        if config.max_hits_per_site >= 2 and count > 1:
            hits.add(count)
        if config.max_hits_per_site >= 3 and count > 2:
            hits.add((count + 1) // 2)
        for hit in sorted(hits):
            plans.append(FaultPlan(site, hit, CRASH))
            if config.include_damage_kinds:
                if site in TORN_CAPABLE:
                    plans.append(FaultPlan(site, hit, TORN_WRITE))
                if site in LOST_CAPABLE:
                    plans.append(FaultPlan(site, hit, LOST_FLUSH))
    if config.max_plans is not None:
        plans = plans[:config.max_plans]
    return plans


def run_sweep(config: SweepConfig,
              progress=None, trace_out=None) -> SweepReport:
    """Discover, enumerate and run every plan; return the report.

    ``trace_out``: optional path; the clean discovery run's JSONL trace
    is written there (the sweep's reference timeline).
    """
    tracer = None
    if trace_out is not None:
        from repro.obs import TraceRecorder
        tracer = TraceRecorder()
    discovered = discover(config, tracer=tracer)
    if tracer is not None:
        tracer.write_jsonl(trace_out)
    plans = enumerate_plans(config, discovered)
    results = []
    for index, plan in enumerate(plans):
        result = run_plan(config, plan)
        results.append(result)
        if progress is not None:
            status = "ok" if result.passed else f"FAIL: {result.detail}"
            progress(f"[{index + 1}/{len(plans)}] "
                     f"{plan.describe():<40} {status}")
    return SweepReport(config=config, discovered=discovered,
                       results=results)


def _plan_slug(plan: FaultPlan) -> str:
    """Filesystem-safe name for one plan's trace file."""
    raw = plan.describe()
    return "".join(ch if ch.isalnum() or ch in "._-" else "-"
                   for ch in raw)


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Crash-sweep a seeded online index build: inject one "
                    "fault per (site, hit) pair and prove restart "
                    "recovery + audit.")
    parser.add_argument("--builder",
                        choices=("nsf", "sf", "psf", "multi", "rebuild"),
                        default="sf")
    parser.add_argument("--partitions", type=int, default=2,
                        help="psf shard count (ignored by nsf/sf)")
    parser.add_argument("--records", type=int, default=500)
    parser.add_argument("--operations", type=int, default=150)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-hits-per-site", type=int, default=2)
    parser.add_argument("--max-plans", type=int, default=None)
    parser.add_argument("--build-rate-limit", type=float, default=None,
                        help="IB admission-control rate (work items per "
                             "simulated time unit; default unthrottled)")
    parser.add_argument("--codec", action="store_true",
                        help="sort with compressed keys (experiment E25); "
                             "the sweep proves the codec is "
                             "crash-transparent")
    parser.add_argument("--no-damage-kinds", action="store_true",
                        help="inject plain crashes only")
    parser.add_argument("--list-sites", action="store_true",
                        help="discover and list fault sites, then exit")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the clean discovery run's JSONL trace "
                             "(render with python -m repro.obs.report)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write one JSONL trace per FAILED plan here")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    config = SweepConfig(
        builder=args.builder,
        partitions=args.partitions,
        records=args.records,
        operations=args.operations,
        seed=args.seed,
        max_hits_per_site=args.max_hits_per_site,
        include_damage_kinds=not args.no_damage_kinds,
        max_plans=args.max_plans,
        build_rate_limit=args.build_rate_limit,
        compressed_keys=args.codec,
    )
    if args.list_sites:
        discovered = discover(config)
        for site in sorted(discovered):
            doc = SITE_DOCS.get(site, "(dynamic site)")
            print(f"{site:<32} {discovered[site]:>6}  {doc}")
        print(f"{len(discovered)} sites")
        return 0
    progress = None if args.quiet else \
        lambda line: print(line, file=sys.stderr, flush=True)
    report = run_sweep(config, progress=progress,
                       trace_out=args.trace_out)
    if args.trace_dir is not None:
        import os
        os.makedirs(args.trace_dir, exist_ok=True)
        for result in report.failures:
            if result.trace is None:
                continue
            path = os.path.join(args.trace_dir,
                                f"{_plan_slug(result.plan)}.jsonl")
            with open(path, "w") as handle:
                handle.write(result.trace)
            print(f"trace written: {path}", file=sys.stderr)
    print(report.to_text())
    return 0 if report.all_passed else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
