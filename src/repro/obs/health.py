"""Declarative alert rules over live gauges and histogram quantiles.

The progress tracker (:mod:`repro.obs.progress`) answers "is this build
converging"; the health monitor answers the operator's next question:
"is the *system* healthy while it builds?"  A :class:`HealthMonitor` is
a passive sampler process that, every ``sample_every`` simulated
seconds, assembles one flat sample of named health metrics:

* per-index side-file backlogs (``sidefile.backlog.<index>``) plus the
  worst-case aggregate (``sidefile.backlog``);
* **windowed** histogram quantiles from the streaming histograms in
  :mod:`repro.metrics.hist` (``openloop.latency.p99`` is the p99 of the
  operations completed since the *previous* tick, via the snapshot/delta
  discipline -- a cumulative p99 would never recover from one bad
  burst);
* any registered probe (:meth:`HealthMonitor.add_probe`) -- the cluster
  scenario registers apply-lag probes, throttling tests register the
  adaptive controller's current rate.

Each :class:`AlertRule` compares one sample metric against a threshold
(``value`` kind) or its per-time rate of change (``rate`` kind), with
``for_ticks`` / ``clear_ticks`` hysteresis so a single noisy sample
neither pages nor un-pages anyone.  Transitions emit ``alert.fire`` /
``alert.clear`` instants into the trace (the dashboard and CI's tamper
check key on them); :meth:`HealthMonitor.snapshot` returns the current
alert states for live consumers.

The monitor follows the trace sampler's lifecycle contract: it exits
once it is the only live process, so it never wedges ``system.run()``.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, TYPE_CHECKING

from repro.sim.kernel import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

#: histogram-derived quantile metrics: ``<hist>.p<q>`` per watched hist
DEFAULT_QUANTILES = (50.0, 99.0)


@dataclass(frozen=True)
class AlertRule:
    """One declarative health predicate.

    ``value`` rules breach when ``sample[metric] op threshold``;
    ``rate`` rules breach when the metric's per-time-unit change between
    consecutive samples does.  A metric absent from the sample (probe
    returned None, histogram window empty) counts as a clean tick.
    """

    name: str
    metric: str
    op: str = ">"
    threshold: float = 0.0
    kind: str = "value"  # "value" | "rate"
    #: consecutive breaching samples before ``alert.fire``
    for_ticks: int = 2
    #: consecutive clean samples before ``alert.clear``
    clear_ticks: int = 2

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}")
        if self.kind not in ("value", "rate"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.for_ticks < 1 or self.clear_ticks < 1:
            raise ValueError("for_ticks and clear_ticks must be >= 1")

    def breaches(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


def default_rules() -> list[AlertRule]:
    """The stock rule set for the simulated system's scale.

    Thresholds are calibrated to the default cost model: backlogs past
    a few hundred entries mean the drain is losing, a windowed p99 in
    the tens of seconds breaks the EXPERIMENTS SLO tables, an adaptive
    throttle pinned at (or below) one work item per second has
    effectively stalled the build, and replica apply lag past 256
    records means divergent read snapshots.
    """
    return [
        AlertRule("sidefile-backlog", "sidefile.backlog",
                  op=">", threshold=512.0),
        AlertRule("latency-p99", "openloop.latency.p99",
                  op=">", threshold=50.0),
        AlertRule("throttle-floor", "throttle.rate",
                  op="<", threshold=1.0),
        AlertRule("apply-lag", "cluster.apply_lag",
                  op=">", threshold=256.0),
    ]


class _RuleState:
    __slots__ = ("firing", "since", "breach_streak", "clean_streak",
                 "fired", "value")

    def __init__(self) -> None:
        self.firing = False
        self.since: Optional[float] = None
        self.breach_streak = 0
        self.clean_streak = 0
        self.fired = 0
        self.value: Optional[float] = None


class HealthMonitor:
    """Samples health metrics and walks every rule's hysteresis FSM."""

    def __init__(self, system: "System",
                 rules: Optional[Iterable[AlertRule]] = None,
                 sample_every: float = 5.0,
                 hists: Iterable[str] = ("openloop.latency",),
                 quantiles: Iterable[float] = DEFAULT_QUANTILES) -> None:
        self.system = system
        self.rules = list(default_rules() if rules is None else rules)
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ValueError("alert rule names must be unique")
        self.sample_every = sample_every
        self.hists = tuple(hists)
        self.quantiles = tuple(quantiles)
        self.probes: dict[str, Callable[[], Optional[float]]] = {}
        self.states = {rule.name: _RuleState() for rule in self.rules}
        self.ticks = 0
        self.last_sample: dict[str, float] = {}
        self._last_t: Optional[float] = None
        self._previous: dict[str, float] = {}
        #: per-watched-histogram cumulative mark for windowed quantiles
        self._marks: dict[str, object] = {}

    # -- wiring --------------------------------------------------------------

    def add_probe(self, metric: str,
                  fn: Callable[[], Optional[float]]) -> "HealthMonitor":
        """Register a live metric source; ``fn`` returning None skips
        the metric for that tick (a clean tick for its rules)."""
        self.probes[metric] = fn
        return self

    # -- sampling ------------------------------------------------------------

    def sample(self) -> dict[str, float]:
        """One flat health sample (deterministic key order)."""
        out: dict[str, float] = {}
        worst = 0.0
        for name in sorted(self.system.sidefiles):
            sidefile = self.system.sidefiles[name]
            backlog = len(sidefile.entries) \
                - getattr(sidefile, "drain_position", 0)
            if backlog < 0:
                backlog = 0
            out[f"sidefile.backlog.{name}"] = float(backlog)
            worst = max(worst, float(backlog))
        if self.system.sidefiles:
            out["sidefile.backlog"] = worst
        for hist_name in self.hists:
            hist = self.system.metrics.histograms.get(hist_name)
            if hist is None:
                continue
            mark = self._marks.get(hist_name)
            window = hist.delta(mark) if mark is not None else hist
            self._marks[hist_name] = hist.copy()
            if window.count == 0:
                continue
            for q in self.quantiles:
                out[f"{hist_name}.p{q:g}"] = window.quantile(q)
        for metric in sorted(self.probes):
            value = self.probes[metric]()
            if value is not None:
                out[metric] = float(value)
        return out

    def tick(self) -> dict[str, float]:
        """Take one sample and evaluate every rule against it."""
        now = self.system.sim.now
        sample = self.sample()
        for rule in self.rules:
            self._evaluate(rule, sample, now)
        self._previous = dict(sample)
        self._last_t = now
        self.last_sample = sample
        self.ticks += 1
        return sample

    def _evaluate(self, rule: AlertRule, sample: dict, now: float) -> None:
        state = self.states[rule.name]
        value = sample.get(rule.metric)
        if value is not None and rule.kind == "rate":
            prev = self._previous.get(rule.metric)
            if prev is None or self._last_t is None \
                    or now <= self._last_t:
                value = None
            else:
                value = (value - prev) / (now - self._last_t)
        state.value = value
        breaching = value is not None and rule.breaches(value)
        if breaching:
            state.breach_streak += 1
            state.clean_streak = 0
            if not state.firing and state.breach_streak >= rule.for_ticks:
                state.firing = True
                state.since = now
                state.fired += 1
                self.system.metrics.incr("health.alerts_fired")
                self._instant("alert.fire", rule, value)
        else:
            state.clean_streak += 1
            state.breach_streak = 0
            if state.firing and state.clean_streak >= rule.clear_ticks:
                state.firing = False
                self.system.metrics.incr("health.alerts_cleared")
                self._instant("alert.clear", rule, value,
                              duration=now - (state.since or now))
                state.since = None

    def _instant(self, name: str, rule: AlertRule,
                 value: Optional[float], **extra) -> None:
        tracer = self.system.metrics.tracer
        if tracer is None:
            return
        tracer.instant(name, alert=rule.name, metric=rule.metric,
                       value=value if value is None else round(value, 6),
                       op=rule.op, threshold=rule.threshold, **extra)

    # -- consumers -----------------------------------------------------------

    @property
    def firing(self) -> list[str]:
        """Names of currently-firing alerts (rule order)."""
        return [rule.name for rule in self.rules
                if self.states[rule.name].firing]

    def snapshot(self) -> dict:
        """Serialisable health state (sorted keys)."""
        alerts = {}
        for rule in self.rules:
            state = self.states[rule.name]
            alerts[rule.name] = {
                "fired": state.fired,
                "firing": state.firing,
                "metric": rule.metric,
                "since": state.since,
                "threshold": rule.threshold,
                "value": state.value,
            }
        return {
            "alerts": dict(sorted(alerts.items())),
            "firing": self.firing,
            "sample": dict(sorted(self.last_sample.items())),
            "ticks": self.ticks,
        }

    # -- the sampler process -------------------------------------------------

    def run(self):
        """Generator process body; exits once it is the only live
        process (the trace sampler's lifecycle contract)."""
        while True:
            self.tick()
            yield Delay(self.sample_every)
            if self.system.sim.live_processes <= 1:
                return


def enable_health(system: "System",
                  rules: Optional[Iterable[AlertRule]] = None,
                  sample_every: float = 5.0,
                  spawn: bool = True, **kwargs) -> HealthMonitor:
    """Create a :class:`HealthMonitor` and (by default) spawn its
    sampler on ``system``; returns the monitor.

    Pass ``spawn=False`` to drive :meth:`HealthMonitor.tick` manually
    (the dashboard's live mode does, so its refresh and sampling
    cadence coincide).

    The sampler follows the gauge-sampler lifecycle contract: it exits
    once it is the only live process, so it never keeps the simulation
    alive.  That also means a run that drains to idle (e.g. a preload
    ``system.run()``) ends the sampler -- arm the monitor alongside
    the processes it should watch, or call ``enable_health`` again.
    """
    monitor = HealthMonitor(system, rules=rules,
                            sample_every=sample_every, **kwargs)
    if spawn:
        system.spawn(monitor.run(), name="health-monitor")
    return monitor
