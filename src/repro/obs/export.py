"""Prometheus text-format export of one system's live metrics.

``export_prometheus(system)`` renders counters, series statistics,
streaming histograms (cumulative ``le`` buckets, the classic exposition
shape), build progress, and alert states as Prometheus exposition text.
The simulated system has no HTTP endpoint to scrape, but the format is
the lingua franca: the dashboard's ``--prom`` flag and tests use it,
and anything that parses node-exporter output can parse this.

Output is deterministic: metric families and label sets are emitted in
sorted order, so equal systems export byte-identical text.
"""

from __future__ import annotations

import re
from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return f"{prefix}_{clean}"


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label(value: str) -> str:
    escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def export_prometheus(system: "System",
                      monitor: Optional[object] = None,
                      prefix: str = "repro") -> str:
    """Render ``system``'s metrics as Prometheus exposition text.

    ``monitor`` (a :class:`repro.obs.health.HealthMonitor`) adds
    ``<prefix>_alert_firing`` per rule; a progress tracker installed as
    ``metrics.progress`` adds ``<prefix>_build_progress`` /
    ``<prefix>_build_eta_seconds`` per tracked build.
    """
    metrics = system.metrics
    lines: list[str] = []

    for name in sorted(metrics.counters):
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(metrics.counters[name])}")

    for name in sorted(metrics.series):
        stat = metrics.series[name]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_fmt(stat.count)}")
        lines.append(f"{metric}_sum {_fmt(stat.total)}")
        if stat.count:
            lines.append(f"{metric}_min {_fmt(stat.minimum)}")
            lines.append(f"{metric}_max {_fmt(stat.maximum)}")

    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for i, count in enumerate(hist.counts):
            cumulative += count
            if not count:
                continue  # sparse: empty buckets add no information
            le = (_fmt(hist.bounds[i]) if i < len(hist.bounds)
                  else "+Inf")
            lines.append(
                f'{metric}_bucket{{le={_label(le)}}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {_fmt(hist.total)}")
        lines.append(f"{metric}_count {hist.count}")

    tracker = metrics.progress
    if tracker is not None and tracker.builds:
        progress_metric = f"{prefix}_build_progress"
        eta_metric = f"{prefix}_build_eta_seconds"
        lines.append(f"# TYPE {progress_metric} gauge")
        lines.append(f"# TYPE {eta_metric} gauge")
        for label, state in sorted(tracker.snapshot().items()):
            labels = (f'build={_label(label)},'
                      f'phase={_label(state["phase"])},'
                      f'verdict={_label(state["verdict"])}')
            lines.append(f"{progress_metric}{{{labels}}} "
                         f"{_fmt(state['fraction'])}")
            eta = state["eta"]
            lines.append(f"{eta_metric}{{build={_label(label)}}} "
                         f"{_fmt(eta if eta is not None else -1.0)}")

    if monitor is not None:
        alert_metric = f"{prefix}_alert_firing"
        lines.append(f"# TYPE {alert_metric} gauge")
        for name, state in sorted(monitor.snapshot()["alerts"].items()):
            lines.append(f"{alert_metric}{{alert={_label(name)}}} "
                         f"{1 if state['firing'] else 0}")

    return "\n".join(lines) + "\n"
