"""Structured build tracing (spans, instants, gauges) for one system.

The paper's argument is about *when* things happen during an online
build -- the scan frontier racing updater RIDs, the side-file backlog
racing the drain, the short NSF quiesce, checkpoint/restart progress.
:class:`TraceRecorder` captures that story as structured events keyed to
the simulated clock; :mod:`repro.obs.report` renders it as an ASCII
phase timeline plus summary tables.

Tracing follows the ``fault_point`` pattern from :mod:`repro.faultinject`:
instrumented code reads ``metrics.tracer`` and returns immediately when
it is ``None``, so the disabled path costs one attribute read.  Enable it
with::

    from repro.obs import enable_tracing
    tracer = enable_tracing(system)              # passive: spans/instants
    tracer = enable_tracing(system, sample_every=25.0)  # + gauge sampler

The recorder survives :meth:`repro.system.System.crash` and
:func:`repro.recovery.restart.restart` (restart re-binds it to the new
system), so one trace spans the whole build-crash-recover story.
"""

from repro.obs.health import (
    AlertRule,
    HealthMonitor,
    default_rules,
    enable_health,
)
from repro.obs.progress import (
    BuildProgress,
    ProgressTracker,
    enable_progress,
)
from repro.obs.recorder import (
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    enable_tracing,
    key_metric,
    sample_gauges,
)

_REPORT_NAMES = ("load_events", "phase_durations", "render_report")


def __getattr__(name):
    # Lazy: ``python -m repro.obs.report`` imports this package first, and
    # an eager ``from repro.obs.report import ...`` here would trip the
    # found-in-sys.modules-before-execution RuntimeWarning.
    if name in _REPORT_NAMES:
        from repro.obs import report
        return getattr(report, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "AlertRule",
    "BuildProgress",
    "HealthMonitor",
    "ProgressTracker",
    "TraceRecorder",
    "default_rules",
    "enable_health",
    "enable_progress",
    "enable_tracing",
    "key_metric",
    "load_events",
    "phase_durations",
    "render_report",
    "sample_gauges",
]
