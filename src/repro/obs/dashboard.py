"""ASCII cluster dashboard: build progress, sparklines, alerts, lag.

Usage::

    python -m repro.obs.dashboard TRACE.jsonl [--width N] [--check-clean]
    python -m repro.obs.dashboard --live-demo [--width N]

Trace mode renders one dashboard frame from a recorded JSONL trace
(:class:`repro.obs.recorder.TraceRecorder` output): per-build progress
bars (from ``build.progress`` gauges when progress tracking was on,
reconstructed from build spans otherwise), gauge sparklines (side-file
backlog, replication apply lag, progress), the alert census from
``alert.fire`` / ``alert.clear`` instants, and a per-node replication
table from ``cluster.apply_lag`` gauges.

``--check-clean`` makes the exit code a health verdict for CI: non-zero
when the trace yields no progress rows (the instrumentation rusted) or
when any alert is still firing at end of trace.

Live mode (:func:`render_live`) renders the same layout directly from a
running system's :class:`~repro.obs.progress.ProgressTracker`,
:class:`~repro.obs.health.HealthMonitor`, and streaming histograms --
``--live-demo`` drives a small throttled SF build under an open-loop
workload and prints a frame every few hundred simulated seconds, which
doubles as an executable example.

Everything is plain ASCII (the sparkline ramp is `` .:-=+*#%@``), so the
output diffs cleanly in CI logs and goldens.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, TYPE_CHECKING

from repro.obs.report import load_events, parse_spans

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

#: sparkline ramp, lowest to highest (ASCII on purpose)
_RAMP = " .:-=+*#%@"

#: gauge series worth a sparkline row, in render order
_SPARK_GAUGES = ("build.progress", "sidefile.backlog",
                 "cluster.apply_lag", "throttle.rate", "buffer.dirty")


def sparkline(values: list[float], width: int = 40) -> str:
    """Downsample ``values`` to ``width`` columns of the ASCII ramp."""
    if not values:
        return " " * width
    if len(values) > width:
        # bucket-max downsampling: spikes must survive compression
        buckets = []
        for col in range(width):
            lo = col * len(values) // width
            hi = max(lo + 1, (col + 1) * len(values) // width)
            buckets.append(max(values[lo:hi]))
        values = buckets
    top = max(values)
    bottom = min(0.0, min(values))
    span = (top - bottom) or 1.0
    out = []
    for value in values:
        level = int((value - bottom) / span * (len(_RAMP) - 1))
        out.append(_RAMP[level])
    return "".join(out).ljust(width)


def progress_bar(fraction: float, width: int = 24) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    if 0 < fraction < 1.0:
        filled = min(max(filled, 1), width - 1)
        return "[" + "=" * (filled - 1) + ">" + " " * (width - filled) + "]"
    return "[" + "=" * filled + " " * (width - filled) + "]"


# -- trace-mode model --------------------------------------------------------


def progress_rows(events: list[dict]) -> list[dict]:
    """Per-build progress state from a trace.

    Prefers the tracker's ``build.progress`` / ``build.eta`` gauges;
    for traces recorded without progress tracking, reconstructs rows
    from ``build`` spans (complete span = 100%, crash-cut or still-open
    span = fraction of ended direct children, flagged approximate).
    """
    rows: dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "gauge":
            continue
        attrs = event.get("attrs") or {}
        build = attrs.get("build")
        if build is None:
            continue
        if event["name"] == "build.progress":
            row = rows.setdefault(build, {"build": build, "eta": None,
                                          "approx": False})
            row["fraction"] = event["value"]
            row["phase"] = attrs.get("phase", "?")
            row["verdict"] = attrs.get("verdict", "?")
        elif event["name"] == "build.eta":
            row = rows.get(build)
            if row is not None:
                value = event["value"]
                row["eta"] = None if value == -1.0 else value
    if rows:
        return [rows[build] for build in sorted(rows)]
    # fallback: derive from the span forest
    spans = parse_spans(events)
    for span in spans:
        if span.name != "build":
            continue
        label = "+".join(span.attrs.get("indexes") or []) \
            or span.attrs.get("table") or f"build#{span.span_id}"
        children = [s for s in spans if s.parent == span.span_id]
        if span.crashed or (children and any(c.end is None
                                             for c in children)):
            ended = sum(1 for c in children
                        if c.end is not None and not c.crashed)
            fraction = ended / len(children) if children else 0.0
            verdict = "interrupted" if span.crashed else "running"
            approx = True
        else:
            fraction, verdict, approx = 1.0, "done", False
        previous = rows.get(label)
        if previous is not None and not previous["approx"]:
            continue  # a completed earlier epoch's row wins
        rows[label] = {"build": label, "fraction": fraction,
                       "phase": span.attrs.get("mode", "build"),
                       "verdict": verdict, "eta": None, "approx": approx}
    return [rows[build] for build in sorted(rows)]


def alert_rows(events: list[dict]) -> list[dict]:
    """Alert census from fire/clear instants; ``active`` means the last
    transition was a fire."""
    rows: dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "instant" \
                or event.get("name") not in ("alert.fire", "alert.clear"):
            continue
        attrs = event.get("attrs") or {}
        name = attrs.get("alert", "?")
        row = rows.setdefault(name, {"alert": name, "fired": 0,
                                     "active": False, "last_value": None,
                                     "metric": attrs.get("metric", "?")})
        if event["name"] == "alert.fire":
            row["fired"] += 1
            row["active"] = True
            row["last_value"] = attrs.get("value")
        else:
            row["active"] = False
    return [rows[name] for name in sorted(rows)]


def gauge_series(events: list[dict]) -> dict[tuple, list[float]]:
    """``(name, qualifier) -> ordered values`` for sparkline gauges."""
    series: dict[tuple, list[float]] = {}
    for event in events:
        if event.get("kind") != "gauge" \
                or event["name"] not in _SPARK_GAUGES:
            continue
        attrs = event.get("attrs") or {}
        qualifier = attrs.get("index") or attrs.get("node") \
            or attrs.get("build")
        value = event.get("value")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            series.setdefault((event["name"], qualifier),
                              []).append(float(value))
    return series


def lag_rows(events: list[dict]) -> list[dict]:
    """Per-node replication state from ``cluster.apply_lag`` gauges."""
    rows: dict[str, dict] = {}
    for event in events:
        if event.get("kind") == "gauge" \
                and event["name"] == "cluster.apply_lag":
            attrs = event.get("attrs") or {}
            node = attrs.get("node", "?")
            row = rows.setdefault(node, {"node": node, "lag": 0.0,
                                         "peak": 0.0, "position": None,
                                         "down": 0, "promoted": False})
            row["lag"] = float(event["value"])
            row["peak"] = max(row["peak"], float(event["value"]))
            row["position"] = attrs.get("position")
        elif event.get("kind") == "instant" and event["name"] in (
                "cluster.node_down", "cluster.promoted"):
            node = (event.get("attrs") or {}).get("node")
            if node is None:
                continue
            row = rows.setdefault(node, {"node": node, "lag": 0.0,
                                         "peak": 0.0, "position": None,
                                         "down": 0, "promoted": False})
            if event["name"] == "cluster.node_down":
                row["down"] += 1
            else:
                row["promoted"] = True
    return [rows[node] for node in sorted(rows)]


# -- rendering ---------------------------------------------------------------


def _render_sections(title: str, progress: list[dict],
                     alerts: list[dict], sparks: dict[tuple, list[float]],
                     lag: list[dict], width: int) -> str:
    bar_width = max(10, min(24, width - 50))
    spark_width = max(16, width - 36)
    lines = [title, ""]

    lines.append("build progress")
    if not progress:
        lines.append("  (no builds in trace)")
    for row in progress:
        eta = row.get("eta")
        eta_text = "eta -" if eta is None else f"eta {eta:.1f}"
        approx = "~" if row.get("approx") else " "
        lines.append(
            f"  {row['build'][:18]:<18} "
            f"{progress_bar(row['fraction'], bar_width)}"
            f"{approx}{row['fraction'] * 100:5.1f}%  "
            f"{row.get('phase', '?'):<16} {eta_text:<12} "
            f"{row.get('verdict', '?')}")

    lines.append("")
    lines.append("alerts")
    active = [row for row in alerts if row["active"]]
    if not alerts:
        lines.append("  none fired")
    for row in alerts:
        state = "FIRING" if row["active"] else "cleared"
        value = row.get("last_value")
        value_text = "-" if value is None else f"{value:g}"
        lines.append(f"  {row['alert'][:20]:<20} {state:<8} "
                     f"fired x{row['fired']}  metric {row['metric']} "
                     f"last {value_text}")
    if alerts and not active:
        lines.append("  active: none")

    if sparks:
        lines.append("")
        lines.append(f"gauges (ramp '{_RAMP}')")
        for name, qualifier in sorted(sparks,
                                      key=lambda k: (k[0], str(k[1]))):
            values = sparks[(name, qualifier)]
            label = name if qualifier is None else f"{name}[{qualifier}]"
            lines.append(f"  {label[:30]:<30} "
                         f"|{sparkline(values, spark_width)}| "
                         f"last {values[-1]:g} max {max(values):g}")

    if lag:
        lines.append("")
        lines.append("replication")
        lines.append(f"  {'node':<12} {'lag':>8} {'peak':>8} "
                     f"{'position':>9}  notes")
        for row in lag:
            notes = []
            if row["promoted"]:
                notes.append("promoted")
            if row["down"]:
                notes.append(f"down x{row['down']}")
            position = row["position"]
            lines.append(
                f"  {row['node']:<12} {row['lag']:>8g} {row['peak']:>8g} "
                f"{position if position is not None else '-':>9}  "
                f"{' '.join(notes)}".rstrip())
    return "\n".join(lines) + "\n"


def render_dashboard(events: list[dict], width: int = 76) -> str:
    """One dashboard frame from a recorded trace."""
    if not events:
        return "empty trace\n"
    t1 = max(event["t"] for event in events)
    epochs = max(event.get("epoch", 0) for event in events) + 1
    title = (f"cluster dashboard @ t={t1:.1f}  "
             f"({len(events)} events, {epochs} epoch(s))")
    return _render_sections(title, progress_rows(events),
                            alert_rows(events), gauge_series(events),
                            lag_rows(events), width)


def render_live(system: "System", tracker=None, monitor=None,
                width: int = 76) -> str:
    """One dashboard frame straight from live objects (no trace)."""
    metrics = system.metrics
    tracker = tracker if tracker is not None else metrics.progress
    progress = []
    if tracker is not None:
        for label, state in sorted(tracker.snapshot().items()):
            progress.append({"build": label, "fraction": state["fraction"],
                             "phase": state["phase"], "eta": state["eta"],
                             "verdict": state["verdict"], "approx": False})
    alerts = []
    if monitor is not None:
        for name, state in sorted(monitor.snapshot()["alerts"].items()):
            if not state["fired"] and not state["firing"]:
                continue
            alerts.append({"alert": name, "fired": state["fired"],
                           "active": state["firing"],
                           "last_value": state["value"],
                           "metric": state["metric"]})
    sparks: dict[tuple, list[float]] = {}
    for name in sorted(system.sidefiles):
        sidefile = system.sidefiles[name]
        backlog = max(0, len(sidefile.entries)
                      - getattr(sidefile, "drain_position", 0))
        sparks[("sidefile.backlog", name)] = [float(backlog)]
    lines = [_render_sections(
        f"live dashboard @ t={system.sim.now:.1f}", progress, alerts,
        sparks, [], width).rstrip("\n")]
    if metrics.histograms:
        lines.append("")
        lines.append("latency histograms")
        for name in sorted(metrics.histograms):
            hist = metrics.histograms[name]
            if hist.count == 0:
                continue
            p = hist.percentiles()
            lines.append(
                f"  {name[:28]:<28} n={hist.count:<6} "
                f"p50={p['p50']:g} p95={p['p95']:g} p99={p['p99']:g} "
                f"max={hist.maximum:g}")
    return "\n".join(lines) + "\n"


# -- the live demo -----------------------------------------------------------


def _live_demo(width: int, out) -> int:
    """A small throttled SF build under open-loop traffic, rendered as
    periodic live frames (also exercised by tests)."""
    from repro import BuildOptions, IndexSpec, System, SystemConfig
    from repro.core import get_builder
    from repro.obs.health import enable_health
    from repro.obs.progress import enable_progress
    from repro.obs.recorder import enable_tracing
    from repro.sim.kernel import Delay
    from repro.workloads.openloop import OpenLoopDriver, OpenLoopSpec

    system = System(SystemConfig(page_capacity=8, leaf_capacity=8,
                                 sort_workspace=32), seed=21)
    enable_tracing(system)
    tracker = enable_progress(system)
    monitor = enable_health(system, sample_every=20.0)
    table = system.create_table("t", ["k", "p"])
    spec = OpenLoopSpec(operations=120, rate=1.0, range_weight=0.0,
                        key_space=500)
    driver = OpenLoopDriver(system, table, spec, seed=21)
    preload = system.spawn(driver.preload(400), name="preload")
    system.run()
    if preload.error is not None:
        raise preload.error
    builder = get_builder("sf")(
        system, table, IndexSpec.of("idx", ["k"]),
        options=BuildOptions(checkpoint_every_keys=128))
    proc = system.spawn(builder.run(), name="builder")
    driver.spawn()

    def frames():
        while True:
            out.write(render_live(system, tracker, monitor, width=width))
            out.write("\n")
            yield Delay(40.0)
            if system.sim.live_processes <= 1:
                return

    system.spawn(frames(), name="dashboard")
    system.run()
    if proc.error is not None:
        raise proc.error
    out.write(render_live(system, tracker, monitor, width=width))
    return 0


# -- CLI ---------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dashboard",
        description="Render an ASCII cluster dashboard from a "
                    "TraceRecorder JSONL file (or --live-demo).")
    parser.add_argument("trace", nargs="?", help="JSONL trace file")
    parser.add_argument("--width", type=int, default=76,
                        help="dashboard width in columns (default 76)")
    parser.add_argument("--check-clean", action="store_true",
                        help="exit non-zero unless the trace has "
                             "progress rows and no firing alerts")
    parser.add_argument("--live-demo", action="store_true",
                        help="run a small tracked build and render "
                             "live frames instead of reading a trace")
    args = parser.parse_args(argv)
    if args.live_demo:
        return _live_demo(args.width, sys.stdout)
    if args.trace is None:
        parser.error("a trace file is required unless --live-demo")
    events = load_events(args.trace)
    sys.stdout.write(render_dashboard(events, width=args.width))
    if args.check_clean:
        rows = progress_rows(events)
        firing = [row for row in alert_rows(events) if row["active"]]
        if not rows:
            sys.stdout.write("check-clean: FAIL (no build progress)\n")
            return 1
        if firing:
            names = ", ".join(row["alert"] for row in firing)
            sys.stdout.write(f"check-clean: FAIL (firing: {names})\n")
            return 1
        sys.stdout.write(
            f"check-clean: OK ({len(rows)} build(s), 0 firing alerts)\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
