"""Per-build progress tracking, convergence verdicts, and ETAs.

The paper's central operational question -- does the online build's
catch-up phase converge under the live update rate, and when does the
index flip AVAILABLE? -- was previously answerable only after the fact,
by post-processing a trace.  :class:`ProgressTracker` answers it live:
builders report scan frontier position, load/insert key counts, and
drain position vs. side-file length through tiny bookkeeping hooks, and
the tracker folds them into a phase-weighted completion fraction, an
ETA on the simulated clock, and a convergence verdict.

The attachment pattern is exactly ``metrics.tracer`` /
``metrics.fault_injector``: builders test ``metrics.progress`` and do
nothing when it is ``None``, and the hooks themselves are pure Python
bookkeeping -- no yields, no simulated time -- so enabling tracking
never perturbs the schedule.  Enable it with::

    from repro.obs import enable_progress
    tracker = enable_progress(system)
    ...
    tracker.snapshot()   # {"idx": {"fraction": 0.62, "eta": 184.0, ...}}

**Divergence.**  During a drain phase the tracker watches the drain
position race the side-file length over a trailing sample window.  When
the drain rate falls to (or below) the append rate while backlog
remains, the catch-up phase is not converging: the verdict flips to
``diverging``, the ETA becomes ``None``, and a single
``build.diverging`` instant is emitted into the trace (the alerting
layer in :mod:`repro.obs.health` can page on it).  If the balance
recovers -- the adaptive throttle opened the bucket, or foreground load
subsided -- the verdict returns to ``converging`` and the ETA comes
back (EXPERIMENTS.md E24 shows the full arc).

**Crash safety.**  Like the throttle rate, progress state rides in the
utility checkpoint (only when tracking is enabled -- disabled payloads
are byte-identical), and resumed builders restore it via
``_restore_progress``, so a resumed build reports resumed progress, not
0%.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

#: minimum completion-fraction advance between published gauge points
PUBLISH_STEP = 0.01
#: drain-watch samples needed before a divergence verdict is rendered
DRAIN_MIN_SAMPLES = 4


def _phase_plan(mode: str, names: list[str]) -> list[tuple[str, float]]:
    """Ordered ``(phase_key, weight)`` rows for one build mode.

    Weights approximate each phase's share of build time at the default
    cost model; they only shape the completion fraction's pacing, never
    its endpoints (0 at start, 1 at finish).
    """
    k = max(1, len(names))
    if mode == "offline":
        return [("scan", 0.70)] + [(f"load:{n}", 0.30 / k) for n in names]
    if mode == "nsf":
        return [("scan", 0.60)] + [(f"insert:{n}", 0.40 / k)
                                   for n in names]
    if mode == "psf":
        rows = [("scan", 0.45), ("merge", 0.10)]
        for name in names:
            rows.append((f"load:{name}", 0.30 / k))
            rows.append((f"drain:{name}", 0.15 / k))
        return rows
    # sf and multi share the scan -> per-index load -> drain shape
    rows = [("scan", 0.50)]
    for name in names:
        rows.append((f"load:{name}", 0.35 / k))
        rows.append((f"drain:{name}", 0.15 / k))
    return rows


class BuildProgress:
    """Live progress state of one build (one :class:`BuilderBase` run)."""

    def __init__(self, tracker: "ProgressTracker", system, mode: str,
                 label: str, names: list[str]) -> None:
        self.tracker = tracker
        self.system = system
        self.mode = mode
        self.label = label
        self.plan = _phase_plan(mode, names)
        self.weights = dict(self.plan)
        self.fractions = {key: 0.0 for key, _w in self.plan}
        self.phase = self.plan[0][0]
        self.verdict = "converging"
        self.eta: Optional[float] = None
        self.done = False
        #: monotone floor: resumed baseline, and the clamp that keeps the
        #: published fraction non-decreasing when a moving target (SF's
        #: growing scan limit, the side-file length) briefly shrinks a
        #: phase fraction
        self._floor = 0.0
        self._fraction = 0.0
        self._published = -1.0
        self._published_phase: Optional[str] = None
        self._published_eta: Optional[float] = None
        #: (t, fraction) samples for the overall completion rate
        self._samples: deque[tuple[float, float]] = deque(maxlen=32)
        self._scan_pages = 0
        self._scan_total = 0
        #: per-drain-phase (t, position, total) windows
        self._drain: dict[str, deque] = {}

    # -- hooks (pure bookkeeping; builders call via _progress_* helpers) ----

    def scan(self, advanced: int, total: int) -> None:
        """``advanced`` more pages scanned; ``total`` is the current scan
        limit (0 = unchanged; it may grow while SF chases the EOF)."""
        self._scan_pages += advanced
        if total > self._scan_total:
            self._scan_total = total
        if self._scan_total:
            frac = min(1.0, self._scan_pages / self._scan_total)
            key = "scan"
            if frac > self.fractions.get(key, 0.0):
                self.fractions[key] = frac
        self._advance("scan")

    def units(self, key: str, done: int, total: int) -> None:
        """``done`` of ``total`` work units finished in phase ``key``
        (load keys, insert keys).  Unknown totals (0) leave the fraction
        at its floor until :meth:`phase_done`."""
        if key not in self.weights:
            return
        if total > 0:
            frac = min(1.0, done / total)
            if frac > self.fractions[key]:
                self.fractions[key] = frac
        self._advance(key)

    def drain(self, key: str, position: int, total: int) -> None:
        """Drain position vs. side-file length for phase ``key``; renders
        the convergence verdict over a trailing sample window."""
        if key not in self.weights:
            return
        if total > 0:
            frac = min(1.0, position / total)
            if frac > self.fractions[key]:
                self.fractions[key] = frac
        window = self._drain.get(key)
        if window is None:
            window = self._drain[key] = deque(maxlen=8)
        window.append((self.system.sim.now, position, total))
        self._judge_drain(key, window)
        self._advance(key)

    def phase_done(self, key: str) -> None:
        if key not in self.weights:
            return
        self.fractions[key] = 1.0
        self._drain.pop(key, None)
        if self.verdict == "diverging" and not self._drain:
            self.verdict = "converging"
        tracer = self.system.metrics.tracer
        if tracer is not None:
            tracer.instant("build.progress", build=self.label, phase=key,
                           fraction=round(self._overall(), 4))
        self._advance(key)

    def finish(self) -> None:
        for key in self.fractions:
            self.fractions[key] = 1.0
        self.done = True
        self.verdict = "done"
        self.eta = 0.0
        self._advance(self.plan[-1][0])

    # -- verdict + ETA -------------------------------------------------------

    def _judge_drain(self, key: str, window: deque) -> None:
        """Diverging iff the drain is not gaining on the side-file."""
        if len(window) < DRAIN_MIN_SAMPLES:
            return
        t0, pos0, total0 = window[0]
        t1, pos1, total1 = window[-1]
        backlog = total1 - pos1
        if t1 <= t0 or backlog <= 0:
            return
        drain_rate = (pos1 - pos0) / (t1 - t0)
        append_rate = (total1 - total0) / (t1 - t0)
        if drain_rate <= append_rate:
            if self.verdict != "diverging":
                self.verdict = "diverging"
                tracer = self.system.metrics.tracer
                if tracer is not None:
                    tracer.instant(
                        "build.diverging", build=self.label, phase=key,
                        backlog=backlog,
                        drain_rate=round(drain_rate, 6),
                        append_rate=round(append_rate, 6))
        elif self.verdict == "diverging":
            self.verdict = "converging"

    def _overall(self) -> float:
        raw = sum(weight * self.fractions[key] for key, weight in self.plan)
        return max(self._floor, min(1.0, raw))

    def _advance(self, key: str) -> None:
        """Refresh the current phase, fraction, ETA; publish gauges."""
        for phase_key, _weight in self.plan:
            if self.fractions[phase_key] < 1.0:
                self.phase = phase_key
                break
        else:
            self.phase = self.plan[-1][0]
        fraction = self._overall()
        if fraction > self._fraction:
            self._fraction = fraction
        now = self.system.sim.now
        self._samples.append((now, self._fraction))
        self.eta = self._estimate_eta(now)
        self._publish(now)

    def _estimate_eta(self, now: float) -> Optional[float]:
        if self.done:
            return 0.0
        if self.verdict == "diverging":
            return None
        if len(self._samples) < 2:
            return None
        t0, f0 = self._samples[0]
        t1, f1 = self._samples[-1]
        if t1 <= t0 or f1 <= f0:
            return None
        rate = (f1 - f0) / (t1 - t0)
        return (1.0 - f1) / rate

    def _publish(self, now: float) -> None:
        tracer = self.system.metrics.tracer
        if tracer is None:
            return
        eta_value = round(self.eta, 4) if self.eta is not None else -1.0
        if not self.done:
            if self._fraction - self._published < PUBLISH_STEP \
                    and self.phase == self._published_phase:
                return
        elif self._published == self._fraction \
                and self._published_eta == eta_value:
            return  # finish() already published 1.0 with a zero ETA
        self._published = self._fraction
        self._published_phase = self.phase
        self._published_eta = eta_value
        tracer.gauge("build.progress", round(self._fraction, 4),
                     build=self.label, phase=self.phase,
                     verdict=self.verdict)
        tracer.gauge("build.eta", eta_value, build=self.label)

    # -- snapshots and crash safety ------------------------------------------

    def snapshot(self) -> dict:
        """Serialisable live state (sorted keys)."""
        return {
            "eta": self.eta,
            "fraction": round(self._fraction, 6),
            "fractions": {key: round(value, 6)
                          for key, value in sorted(self.fractions.items())},
            "mode": self.mode,
            "phase": self.phase,
            "verdict": self.verdict,
        }

    def checkpoint_state(self) -> dict:
        """What rides in the utility checkpoint (JSON-safe)."""
        return {
            "fraction": round(self._fraction, 6),
            "fractions": {key: round(value, 6)
                          for key, value in sorted(self.fractions.items())},
            "scan": [self._scan_pages, self._scan_total],
        }

    def restore(self, state: dict) -> None:
        """Adopt a checkpointed baseline: the resumed build's progress
        starts from the crashed build's floor, never from 0%."""
        for key, value in state.get("fractions", {}).items():
            if key in self.fractions and value > self.fractions[key]:
                self.fractions[key] = value
        scan = state.get("scan")
        if scan:
            self._scan_pages, self._scan_total = int(scan[0]), int(scan[1])
        self._floor = float(state.get("fraction", 0.0))
        self._advance(self.plan[0][0])


class ProgressTracker:
    """Registry of live builds; the ``metrics.progress`` attachment."""

    def __init__(self) -> None:
        #: build label ("+"-joined index names) -> live progress
        self.builds: dict[str, BuildProgress] = {}

    def register(self, builder) -> BuildProgress:
        """Called by :class:`BuilderBase` when tracking is enabled; a
        resumed build re-registers under the same label (latest wins)."""
        names = [spec.name for spec in builder.specs]
        label = "+".join(names)
        progress = BuildProgress(self, builder.system, builder.mode,
                                 label, names)
        self.builds[label] = progress
        return progress

    def bind(self, system) -> None:
        """Point every live build at ``system`` (restart carry-over:
        the recovered system owns a new simulated clock)."""
        for progress in self.builds.values():
            progress.system = system

    def snapshot(self) -> dict[str, dict]:
        """Serialisable state of every tracked build, sorted by label."""
        return {label: self.builds[label].snapshot()
                for label in sorted(self.builds)}


def enable_progress(system, tracker: Optional[ProgressTracker] = None
                    ) -> ProgressTracker:
    """Install a :class:`ProgressTracker` as ``metrics.progress``.

    Builders constructed afterwards report into it; builders constructed
    before (or with tracking disabled) are unaffected.  Idempotent when
    ``tracker`` is the already-installed one.
    """
    if tracker is None:
        tracker = system.metrics.progress or ProgressTracker()
    system.metrics.progress = tracker
    tracker.bind(system)
    return tracker
