"""Build-report CLI: render a trace as an ASCII phase timeline.

Usage::

    python -m repro.obs.report TRACE.jsonl [--width N] [--json]

Reads a JSONL trace written by :class:`repro.obs.TraceRecorder` and
renders:

* a **phase timeline** -- one Gantt-style bar per span (per-shard rows
  for ``psf``), with spans cut short by a crash terminated by ``x``, and
  a marks row locating instants (crash, restart, flag flip, checkpoints,
  quiesce);
* a **phase summary table** -- per span: start, end, duration, the WAL
  bytes appended while it was open, and notable end attributes
  (barrier wait, keys, drained entries);
* **gauge high-water marks** -- per gauge series (side-file backlog,
  ``read_watermark`` progress, buffer dirty count): sample count,
  maximum and when it happened, final value;
* an **instant census**.

``--json`` emits the same analysis as a machine-readable document
instead (:func:`report_json`): keys are sorted and the schema is
stable, so downstream tooling can diff reports across runs.

The module is also the import surface the perf suite and tests use:
:func:`phase_durations` turns a raw event list into the per-phase
breakdown recorded in the benchmark JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Optional

#: instant name -> (mark character, priority); higher priority wins a column
_MARKS = {
    "system.crash": ("X", 6),
    "system.restart": ("R", 5),
    "sf.flip": ("F", 4),
    "quiesce.begin": ("Q", 3),
    "quiesce.end": ("q", 3),
    "recovery.orphan_discard": ("o", 2),
    "recovery.torn_tree": ("t", 2),
    "wal.checkpoint": ("C", 1),
}

_MARK_LEGEND = ("X crash  R restart  F flip  Q/q quiesce  C checkpoint  "
                "o orphan-discard  t torn-tree")


@dataclass
class Span:
    """One reconstructed span (begin event plus optional end event)."""

    span_id: int
    name: str
    start: float
    epoch: int
    seq: int
    parent: Optional[int] = None
    attrs: dict = field(default_factory=dict)
    end: Optional[float] = None
    end_attrs: dict = field(default_factory=dict)
    #: True when the span never ended and a crash instant follows it
    crashed: bool = False
    depth: int = 0

    @property
    def label(self) -> str:
        label = self.name
        index = self.attrs.get("index")
        if index is not None:
            label += f":{index}"
        shard = self.attrs.get("shard")
        if shard is not None:
            label += f"#{shard}"
        return label

    def duration(self, default_end: float) -> float:
        end = self.end if self.end is not None else default_end
        return max(0.0, end - self.start)


# -- parsing ------------------------------------------------------------------


def events_from_jsonl(text: str) -> list[dict]:
    """Parse JSONL trace text; ``meta`` lines are dropped."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        if event.get("kind") == "meta":
            continue
        events.append(event)
    return events


def load_events(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        return events_from_jsonl(handle.read())


def parse_spans(events: list[dict]) -> list[Span]:
    """Rebuild the span forest; open spans are closed at the crash that
    interrupted them (or at end of trace), flagged ``crashed``."""
    spans: dict[int, Span] = {}
    ordered: list[Span] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span_begin":
            span = Span(span_id=event["span"], name=event["name"],
                        start=event["t"], epoch=event.get("epoch", 0),
                        seq=event.get("seq", 0),
                        parent=event.get("parent"),
                        attrs=dict(event.get("attrs") or {}))
            spans[span.span_id] = span
            ordered.append(span)
        elif kind == "span_end":
            span = spans.get(event.get("span"))
            if span is not None:
                span.end = event["t"]
                span.end_attrs = dict(event.get("attrs") or {})
    last_t = max((event["t"] for event in events), default=0.0)
    crashes = sorted(event["t"] for event in events
                     if event.get("kind") == "instant"
                     and event.get("name") == "system.crash")
    for span in ordered:
        if span.end is None:
            cut = next((t for t in crashes if t >= span.start), None)
            if cut is not None:
                span.end = cut
                span.crashed = True
            else:
                span.end = last_t
        depth = 0
        parent = span.parent
        while parent is not None and depth < 16:
            depth += 1
            parent = spans[parent].parent if parent in spans else None
        span.depth = depth
    return ordered


def phase_durations(events: list[dict]) -> dict[str, float]:
    """Per-phase simulated durations (summed over same-label spans).

    Only the build root and its direct children count as phases; deeper
    spans (per-shard rows) stay out so the breakdown's parts relate to
    the whole.  Used by the perf suite's trace-derived breakdowns.
    """
    durations: dict[str, float] = {}
    last_t = max((event["t"] for event in events), default=0.0)
    for span in parse_spans(events):
        if span.depth > 1:
            continue
        durations[span.label] = durations.get(span.label, 0.0) \
            + span.duration(last_t)
    return durations


# -- machine-readable report ---------------------------------------------------


def report_json(events: list[dict]) -> dict:
    """The report as a schema-stable document (see ``--json``).

    Top-level keys: ``epochs``, ``events``, ``gauges``, ``instants``,
    ``phases``, ``spans``, ``t0``, ``t1``.  Collections are sorted;
    serialising with ``sort_keys=True`` yields byte-stable output for
    equal traces.
    """
    if not events:
        return {"epochs": 0, "events": 0, "gauges": {}, "instants": {},
                "phases": {}, "spans": [], "t0": 0.0, "t1": 0.0}
    spans = parse_spans(events)
    t0 = min(event["t"] for event in events)
    t1 = max(event["t"] for event in events)

    span_docs = []
    for span in spans:
        doc = {
            "crashed": span.crashed,
            "depth": span.depth,
            "duration": round(span.duration(t1), 6),
            "end": None if span.crashed else round(span.end, 6),
            "epoch": span.epoch,
            "label": span.label,
            "name": span.name,
            "start": round(span.start, 6),
        }
        wal = span.end_attrs.get("wal_bytes")
        if wal is not None:
            doc["wal_bytes"] = wal
        notes = _notes(span)
        if notes:
            doc["notes"] = notes
        span_docs.append(doc)

    gauge_docs: dict[str, dict] = {}
    series: dict[tuple, list[dict]] = {}
    for event in events:
        if event.get("kind") != "gauge":
            continue
        key = (event["name"], (event.get("attrs") or {}).get("index"))
        series.setdefault(key, []).append(event)
    for (name, index) in sorted(series, key=lambda k: (k[0], str(k[1]))):
        samples = series[(name, index)]
        peak = max(samples, key=lambda e: (e.get("value", 0), -e["t"]))
        label = name if index is None else f"{name}[{index}]"
        gauge_docs[label] = {
            "last": samples[-1].get("value"),
            "max": peak.get("value"),
            "max_t": round(peak["t"], 6),
            "samples": len(samples),
        }

    instant_docs: dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "instant":
            continue
        doc = instant_docs.setdefault(
            event["name"], {"count": 0, "times": []})
        doc["count"] += 1
        doc["times"].append(round(event["t"], 6))

    return {
        "epochs": max(event.get("epoch", 0) for event in events) + 1,
        "events": len(events),
        "gauges": gauge_docs,
        "instants": instant_docs,
        "phases": {label: round(duration, 6)
                   for label, duration
                   in sorted(phase_durations(events).items())},
        "spans": span_docs,
        "t0": round(t0, 6),
        "t1": round(t1, 6),
    }


# -- rendering ----------------------------------------------------------------


def _bar(start: float, end: float, t0: float, t1: float, width: int,
         crashed: bool) -> str:
    window = (t1 - t0) or 1.0
    c0 = int((start - t0) / window * (width - 1))
    c1 = int((end - t0) / window * (width - 1))
    c0 = min(max(c0, 0), width - 1)
    c1 = min(max(c1, c0), width - 1)
    cells = [" "] * width
    for col in range(c0, c1 + 1):
        cells[col] = "="
    if crashed:
        cells[c1] = "x"
    return "".join(cells)


def _marks_row(events: list[dict], t0: float, t1: float,
               width: int) -> str:
    window = (t1 - t0) or 1.0
    cells = [" "] * width
    best = [0] * width
    for event in events:
        if event.get("kind") != "instant":
            continue
        mark = _MARKS.get(event.get("name"))
        if mark is None:
            continue
        char, priority = mark
        col = int((event["t"] - t0) / window * (width - 1))
        col = min(max(col, 0), width - 1)
        if priority > best[col]:
            best[col] = priority
            cells[col] = char
    return "".join(cells)


def _notes(span: Span) -> str:
    parts = []
    for key in ("barrier_wait", "keys", "pages", "drained", "waited",
                "held", "workers"):
        value = span.end_attrs.get(key, span.attrs.get(key))
        if value is None:
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.1f}")
        else:
            parts.append(f"{key}={value}")
    if span.crashed:
        parts.append("cut-by-crash")
    return " ".join(parts)


def render_report(events: list[dict], width: int = 60) -> str:
    """The full text report for one trace."""
    if not events:
        return "empty trace\n"
    spans = parse_spans(events)
    t0 = min(event["t"] for event in events)
    t1 = max(event["t"] for event in events)
    instants = [e for e in events if e.get("kind") == "instant"]
    gauges = [e for e in events if e.get("kind") == "gauge"]
    epochs = max(event.get("epoch", 0) for event in events) + 1
    cut = sum(1 for span in spans if span.crashed)

    lines = [
        f"trace report: {len(events)} events, {epochs} epoch(s), "
        f"t={t0:.1f}..{t1:.1f}",
        f"spans: {len(spans)} ({cut} cut short by a crash), "
        f"instants: {len(instants)}, gauge samples: {len(gauges)}",
        "",
        "phase timeline ('=' span, 'x' crash-cut)",
    ]
    label_width = max([len("  " * s.depth + s.label) for s in spans] + [5])
    label_width = min(label_width, 28)
    for span in spans:
        label = ("  " * span.depth + span.label)[:label_width]
        bar = _bar(span.start, span.end, t0, t1, width, span.crashed)
        lines.append(f"{label:<{label_width}} |{bar}|")
    marks = _marks_row(events, t0, t1, width)
    if marks.strip():
        lines.append(f"{'marks':<{label_width}} |{marks}|")
        lines.append(f"{'':<{label_width}}  {_MARK_LEGEND}")

    lines.append("")
    lines.append("phase summary")
    header = (f"{'phase':<{label_width}} {'start':>9} {'end':>9} "
              f"{'duration':>9} {'wal_bytes':>9}  notes")
    lines.append(header)
    lines.append("-" * len(header))
    for span in spans:
        label = ("  " * span.depth + span.label)[:label_width]
        wal = span.end_attrs.get("wal_bytes")
        wal_text = str(wal) if wal is not None else "-"
        end_text = f"{span.end:>9.1f}" if not span.crashed \
            else f"{'CRASH':>9}"
        lines.append(f"{label:<{label_width}} {span.start:>9.1f} "
                     f"{end_text} {span.duration(t1):>9.1f} "
                     f"{wal_text:>9}  {_notes(span)}")

    if gauges:
        lines.append("")
        lines.append("gauge high-water marks")
        series: dict[tuple, list[dict]] = {}
        for event in gauges:
            key = (event["name"], (event.get("attrs") or {}).get("index"))
            series.setdefault(key, []).append(event)
        for (name, index) in sorted(series,
                                    key=lambda k: (k[0], str(k[1]))):
            samples = series[(name, index)]
            peak = max(samples, key=lambda e: (e.get("value", 0), -e["t"]))
            label = name if index is None else f"{name}[{index}]"
            lines.append(
                f"  {label:<28} samples={len(samples):<4} "
                f"max={peak.get('value')} at t={peak['t']:.1f}  "
                f"last={samples[-1].get('value')}")

    if instants:
        lines.append("")
        lines.append("instants")
        census: dict[str, int] = {}
        for event in instants:
            census[event["name"]] = census.get(event["name"], 0) + 1
        for name in sorted(census):
            times = [e["t"] for e in instants if e["name"] == name]
            where = ", ".join(f"{t:.1f}" for t in times[:4])
            if len(times) > 4:
                where += ", ..."
            lines.append(f"  {name:<28} x{census[name]:<4} at t={where}")
    return "\n".join(lines) + "\n"


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render an ASCII phase timeline + summary tables "
                    "from a TraceRecorder JSONL file.")
    parser.add_argument("trace", help="JSONL trace file")
    parser.add_argument("--width", type=int, default=60,
                        help="timeline width in columns (default 60)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as a schema-stable JSON "
                             "document instead of ASCII tables")
    args = parser.parse_args(argv)
    events = load_events(args.trace)
    if args.json:
        sys.stdout.write(json.dumps(report_json(events), indent=2,
                                    sort_keys=True) + "\n")
    else:
        sys.stdout.write(render_report(events, width=args.width))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
