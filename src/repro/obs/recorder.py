"""The trace recorder: hierarchical spans, instants, and gauge samples.

Event model (one dict per event, JSONL on export):

``span_begin`` / ``span_end``
    A named interval on the simulated clock.  Begin carries ``span`` (a
    recorder-unique id), optional ``parent`` span id, and ``attrs``; end
    repeats the id and adds end-time ``attrs`` (e.g. the WAL bytes
    appended while the span was open).  A span with no matching end was
    cut short by a crash -- the report renders it as crash-terminated.
``instant``
    A point event: checkpoint written, quiesce begin/end, crash,
    restart, recovery decisions, the atomic flag flip.
``gauge``
    One sample of a named value (side-file backlog, buffer dirty count,
    ``read_watermark`` progress, WAL bytes), either from instrumented
    code or from the optional periodic sampler process.

Every event records ``t`` (trace time), ``epoch`` (how many systems the
recorder has been bound to, bumped on restart), and ``seq`` (emission
order).  Trace time is ``base + sim.now`` of the bound simulator; on
re-bind after a crash, ``base`` advances to the last recorded time so
one trace stays monotonic across the crash boundary even though the new
simulator's clock restarts at zero.

Determinism: the recorder adds no simulated time and spawns no process
unless ``sample_every`` is set, so passive tracing never perturbs the
schedule; export uses ``sort_keys`` + compact separators, making equal
runs byte-identical.
"""

from __future__ import annotations

import json
from typing import Any, Optional, TYPE_CHECKING

from repro.sim.kernel import Delay, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

#: bump only for incompatible event-shape changes (consumers gate on it)
TRACE_SCHEMA_VERSION = 1


def key_metric(key_value: Any) -> float:
    """A float standing in for a key value, for gauge plotting.

    Key values are tuples of column values; take the head element (and
    the head of nested tuples).  Non-numeric keys gauge as -1.0 -- the
    attrs carry the exact key string for humans.
    """
    head = key_value
    while isinstance(head, (tuple, list)) and head:
        head = head[0]
    if isinstance(head, bool) or not isinstance(head, (int, float)):
        return -1.0
    return float(head)


def _jsonable(value: Any) -> Any:
    """Coerce ``value`` to something ``json.dumps`` renders stably."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    return str(value)


class TraceRecorder:
    """Collects structured events for one (possibly multi-system) trace."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        #: how many simulators this recorder has been bound to, minus one
        self.epoch = 0
        #: periodic gauge-sampling interval (None = passive tracing)
        self.sample_every: Optional[float] = None
        self._sim: Optional[Simulator] = None
        self._base = 0.0
        self._last_t = 0.0
        self._next_span = 0
        self._open: dict[int, dict] = {}
        self._sampler_sim: Optional[Simulator] = None

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Trace time: monotone across crash/restart re-binds."""
        t = self._base + (self._sim.now if self._sim is not None else 0.0)
        if t < self._last_t:
            t = self._last_t
        self._last_t = t
        return t

    def bind(self, sim: Simulator) -> bool:
        """Key the recorder to ``sim``'s clock; True if this re-bound.

        Re-binding (restart recovery handing the trace to the recovered
        system) bumps :attr:`epoch` and advances the time base so the new
        simulator's t=0 lands at the crash instant, not before it.
        """
        if sim is self._sim:
            return False
        if self._sim is not None:
            self._base = self._last_t
            self.epoch += 1
        self._sim = sim
        return True

    # -- recording ------------------------------------------------------

    def _emit(self, kind: str, name: str, **fields) -> dict:
        event = {"kind": kind, "name": name, "t": self.now,
                 "epoch": self.epoch, "seq": len(self.events)}
        event.update(fields)
        self.events.append(event)
        return event

    def begin_span(self, name: str, parent: Optional[int] = None,
                   **attrs) -> int:
        self._next_span += 1
        span_id = self._next_span
        event = self._emit("span_begin", name, span=span_id, parent=parent,
                           attrs=_jsonable(attrs))
        self._open[span_id] = event
        return span_id

    def end_span(self, span_id: int, **attrs) -> None:
        begin = self._open.pop(span_id, None)
        if begin is None:
            return
        self._emit("span_end", begin["name"], span=span_id,
                   attrs=_jsonable(attrs))

    def instant(self, name: str, **attrs) -> None:
        self._emit("instant", name, attrs=_jsonable(attrs))

    def gauge(self, name: str, value: float, **attrs) -> None:
        self._emit("gauge", name, value=_jsonable(value),
                   attrs=_jsonable(attrs))

    # -- export ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """Byte-stable JSONL: one meta line, then one line per event."""
        meta = {"kind": "meta", "schema": TRACE_SCHEMA_VERSION,
                "epochs": self.epoch + 1, "events": len(self.events)}
        lines = [json.dumps(meta, sort_keys=True, separators=(",", ":"))]
        for event in self.events:
            lines.append(json.dumps(event, sort_keys=True,
                                    separators=(",", ":")))
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


# -- wiring a recorder to a system -------------------------------------------


def enable_tracing(system: "System", recorder: Optional[TraceRecorder] = None,
                   *, sample_every: Optional[float] = None) -> TraceRecorder:
    """Attach a (new or existing) recorder to ``system``; returns it.

    Sets ``system.metrics.tracer`` -- the single hook every instrumented
    code path tests (mirror of ``metrics.fault_injector``).  With
    ``sample_every`` set, also spawns a gauge-sampler process that takes
    periodic backlog / watermark / buffer / WAL samples and exits once it
    is the only live process.  Call again after
    :func:`repro.recovery.restart.restart` to re-arm the sampler on the
    recovered system (the recorder itself is carried over automatically).
    """
    if recorder is None:
        recorder = TraceRecorder()
    recorder.bind(system.sim)
    system.metrics.tracer = recorder
    if sample_every is not None:
        recorder.sample_every = sample_every
    if recorder.sample_every \
            and recorder._sampler_sim is not system.sim:
        recorder._sampler_sim = system.sim
        system.spawn(_sampler_body(system, recorder), name="trace-sampler")
    return recorder


def sample_gauges(system: "System", recorder: TraceRecorder) -> None:
    """Take one sample of every periodic gauge (deterministic order)."""
    metrics = system.metrics
    recorder.gauge("buffer.dirty", len(system.buffer.dirty))
    recorder.gauge("wal.bytes", metrics.get("wal.bytes"))
    for name in sorted(system.sidefiles):
        sidefile = system.sidefiles[name]
        backlog = len(sidefile.entries) \
            - getattr(sidefile, "drain_position", 0)
        if backlog < 0:
            backlog = 0
        recorder.gauge("sidefile.backlog", backlog, index=name)
    for name in sorted(system.indexes):
        descriptor = system.indexes[name]
        watermark = getattr(descriptor, "read_watermark", None)
        if watermark is not None:
            # Footnote 3 gradual availability: the committed key frontier
            # readable before the index is fully built.
            recorder.gauge("read_watermark", key_metric(watermark[0]),
                           index=name, key=str(watermark[0]))


def _sampler_body(system: "System", recorder: TraceRecorder):
    """Generator process: sample every ``sample_every`` time units.

    Exits when it is the only live process left, so it never keeps the
    simulator spinning; it does extend the final clock by up to one
    interval, which is why the quickstart golden uses passive tracing.
    """
    interval = recorder.sample_every or 1.0
    while True:
        sample_gauges(system, recorder)
        yield Delay(interval)
        if system.sim.live_processes <= 1:
            return
