"""The simulated DBMS: one object wiring every substrate together.

A :class:`System` owns the discrete-event simulator, stable disk, WAL,
buffer pool, lock manager, transaction manager, tables, indexes, and any
in-progress index builds.  Experiments construct a System, populate a
table, spawn transaction processes and an index-builder process, run the
simulator, and read the metrics registry.

Crash/restart: :meth:`crash` throws away volatile state (buffer pool, lock
tables, unflushed log tail, in-memory index trees not yet forced) exactly
as a power failure would; :func:`repro.recovery.restart.restart` then
rebuilds a consistent state on a *new* System sharing the same Disk and
stable log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import StorageError
from repro.metrics import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.semaphore import Semaphore
from repro.storage.buffer import BufferPool
from repro.storage.disk import Disk
from repro.storage.table import Table
from repro.txn.locks import LockManager
from repro.txn.transaction import TransactionManager
from repro.wal.manager import LogManager


@dataclass
class SystemConfig:
    """Tunable sizes and simulated costs.

    Defaults keep trees shallow and runs fast; experiments shrink page
    capacities to force multi-level trees and multi-run sorts at laptop
    scale (the DESIGN.md substitution for the paper's petabyte tables).
    """

    #: records per data page
    page_capacity: int = 16
    #: buffer pool frames
    buffer_frames: int = 1024
    #: key entries per B+-tree leaf page
    leaf_capacity: int = 16
    #: child pointers per B+-tree branch page
    branch_capacity: int = 16
    #: fraction of each leaf left free during a bulk build (section 2.2.3:
    #: "The proper amount of desired free space ... is left in the leaf
    #: pages")
    fill_free_fraction: float = 0.0
    #: simulated time for one record modify (CPU)
    record_op_cost: float = 0.5
    #: simulated time for one index key operation (CPU)
    key_op_cost: float = 0.5
    #: simulated time per key appended by the bottom-up bulk loader --
    #: cheaper than key_op_cost because there is no traversal, latching or
    #: per-key logging (sections 2.3.1 and 4)
    bulk_load_key_cost: float = 0.05
    #: simulated time charged per B+-tree page visited during a traversal
    tree_visit_cost: float = 0.1
    #: simulated time per page visited by an IB side-file drain descent.
    #: Defaults to 0 (descents ride the key_op_cost charge), keeping the
    #: baseline calibration where drain batching is purely a wall-clock
    #: optimization; set to ``tree_visit_cost`` to charge drain descents
    #: like query descents, the regime EXPERIMENTS.md E19 measures (the
    #: catch-up window then shrinks as ``drain_batch`` amortizes them).
    drain_visit_cost: float = 0.0
    #: pages fetched per sequential prefetch I/O during IB's scan (§2.2.2)
    prefetch_pages: int = 8
    #: keys per multi-key insert call NSF's IB passes to the index manager
    ib_batch_keys: int = 8
    #: replacement-selection tournament-tree size (number of leaf slots)
    sort_workspace: int = 64
    #: maximum sorted runs merged in one pass
    merge_fanin: int = 8
    #: simulated time per key moved by the parallel build's per-shard
    #: merge workers (:mod:`repro.parallel`); serial builders fold merge
    #: cost into ``bulk_load_key_cost`` via the pipelined final merge
    merge_key_cost: float = 0.02
    #: IB admission control: maximum builder work items (pages scanned,
    #: keys loaded/inserted, side-file entries drained) per simulated
    #: time unit, shared across all of a build's processes (PSF shard
    #: workers included).  ``None`` disables the throttle entirely --
    #: the token bucket is never constructed and the schedule is
    #: byte-identical to a pre-throttle build.
    build_rate_limit: Optional[float] = None
    #: shared-disk model: number of concurrent data-page I/Os the disk
    #: serves; further I/Os queue FIFO.  ``None`` (default) keeps the
    #: unlimited-bandwidth model where every I/O only delays its own
    #: process -- byte-identical schedules to earlier builds.  The WAL
    #: is modeled as its own device and is never gated by this.
    disk_channels: Optional[int] = None


class System:
    """A complete simulated DBMS instance."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 seed: int = 0, *,
                 disk: Optional[Disk] = None,
                 log: Optional[LogManager] = None,
                 sim: Optional[Simulator] = None) -> None:
        self.config = config or SystemConfig()
        self.metrics = MetricsRegistry()
        self.rng = random.Random(seed)
        # A cluster (repro.cluster) runs several systems on one shared
        # clock; each standalone system otherwise owns its simulator.
        self.sim = sim if sim is not None else Simulator()
        self.disk = disk if disk is not None else Disk(metrics=self.metrics)
        # A disk carried over from a crashed system keeps its own metrics.
        if disk is not None:
            self.disk.metrics = self.metrics
        self.log = log if log is not None else LogManager(metrics=self.metrics)
        if log is not None:
            self.log.metrics = self.metrics
        channels = self.config.disk_channels
        self.io_channels = Semaphore("disk", channels,
                                     metrics=self.metrics) \
            if channels else None
        self.buffer = BufferPool(self.disk, self.log,
                                 capacity=self.config.buffer_frames,
                                 metrics=self.metrics,
                                 sim=self.sim, io=self.io_channels)
        self.locks = LockManager(self.sim, metrics=self.metrics)
        self.txns = TransactionManager(self)
        self.tables: dict[str, Table] = {}
        #: index name -> repro.core.descriptor.IndexDescriptor
        self.indexes: dict[str, object] = {}
        #: active index builds: table name -> list of BuildContext
        self.builds: dict[str, list] = {}
        #: side-files by index name
        self.sidefiles: dict[str, object] = {}
        #: sort-run stores by utility name; survive restart like side-files
        self.run_stores: dict[str, object] = {}
        #: sealed-run manifests by index name: each completed SF-like
        #: build parks its fully merged, forced final run in a
        #: ``sealed:{index}`` store so :meth:`rebuild_index` can rebuild
        #: the tree without rescanning the table; survives restart like
        #: the run stores themselves
        self.sealed_runs: dict[str, dict] = {}
        #: latest utility-checkpoint payload per table with an unfinished
        #: build.  Mirrored into every checkpoint record when more than
        #: one build is live, so concurrent builds stop clobbering each
        #: other's single ``utility_state`` slot; restart() reloads it.
        self.utility_states: dict[str, dict] = {}
        #: the system-wide IB admission-control bucket (lazily built by
        #: :meth:`build_bucket`): ``build_rate_limit`` bounds the
        #: *aggregate* utility rate, however many builds share it
        self._build_bucket = None
        #: components with volatile state beyond the standard set register
        #: a callable here; :meth:`crash` invokes each one
        self.crash_hooks: list = []
        #: crash() is deliberately idempotent (restart() calls it again);
        #: the trace instant must still be recorded exactly once
        self._crash_traced = False

    # -- catalog -------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[str],
                     page_capacity: Optional[int] = None) -> Table:
        if name in self.tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(self, name, columns, page_capacity=page_capacity)
        self.tables[name] = table
        return table

    def rebuild_index(self, name: str, options=None):
        """Prepare a fast drop + rebuild of an existing index.

        Reuses the sealed sorted runs parked by the index's original
        SF-like build -- no table scan, no re-sort, zero data-page reads
        (experiment E25).  Returns a
        :class:`repro.core.rebuild.RebuildIndexBuilder`; spawn its
        ``run()`` to perform the rebuild online (concurrent updates
        route through a side-file exactly as during an SF build).
        """
        from repro.core.rebuild import RebuildIndexBuilder
        descriptor = self.indexes.get(name)
        if descriptor is None:
            raise StorageError(f"no index named {name!r}")
        manifest = self.sealed_runs.get(name)
        if manifest is None:
            raise StorageError(
                f"index {name!r} has no sealed sorted runs to rebuild "
                "from (only completed SF-like builds seal their final "
                "run; NSF- or offline-built indexes must be rebuilt "
                "with a fresh full build)")
        if self.builds.get(descriptor.table.name) is not None:
            raise StorageError(
                f"table {descriptor.table.name!r} already has an active "
                "index build; rebuild after it completes")
        return RebuildIndexBuilder.for_index(self, descriptor,
                                             options=options)

    # -- IB admission control -----------------------------------------------

    def build_bucket(self, rate: float):
        """The shared token bucket charging all index-build work.

        One bucket per System: K concurrent builds each debiting it keep
        the *total* utility rate at ``rate`` -- K per-build buckets would
        silently admit K times the configured limit.  Lazily constructed
        on the first throttled build, so unthrottled systems never pay
        for it (and their schedules stay byte-identical); a restart gets
        a fresh System and hence a fresh, full bucket.
        """
        if self._build_bucket is None:
            from repro.core.throttle import TokenBucket
            self._build_bucket = TokenBucket(self.sim, rate)
        return self._build_bucket

    # -- convenience ------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run the simulator (delegates to :meth:`Simulator.run`)."""
        self.sim.run(until=until)

    def spawn(self, body, name: str = "proc"):
        return self.sim.spawn(body, name=name)

    def now(self) -> float:
        return self.sim.now

    # -- crash modelling -----------------------------------------------------------

    def crash(self) -> tuple[Disk, LogManager]:
        """Simulate a system failure.

        Volatile state (buffer frames, latches, locks, live transactions,
        index trees not yet persisted) is lost.  Returns the surviving
        stable state ``(disk, log)`` for :func:`repro.recovery.restart.restart`.
        """
        tracer = self.metrics.tracer
        if tracer is not None and not self._crash_traced:
            self._crash_traced = True
            tracer.instant("system.crash",
                           flushed_lsn=self.log.flushed_lsn,
                           lost_records=len(self.log.records)
                           - self.log.flushed_lsn)
        self.buffer.crash()
        self.log.crash()
        for descriptor in self.indexes.values():
            tree = getattr(descriptor, "tree", None)
            if tree is not None:
                tree.crash()
        for sidefile in self.sidefiles.values():
            sidefile.crash()
        for store in self.run_stores.values():
            store.crash()
        for hook in self.crash_hooks:
            hook()
        self.metrics.incr("system.crashes")
        return self.disk, self.log

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<System tables={list(self.tables)} "
                f"indexes={list(self.indexes)} t={self.sim.now}>")
