"""Workload-aware index advisor (what-if costing + greedy selection).

Given a query workload (:class:`QueryTemplate` list, or derived from an
:class:`~repro.workloads.openloop.OpenLoopSpec` via
:func:`templates_from_spec`) and table statistics, :func:`recommend`
picks the set of indexes with the best estimated benefit per storage
page under an :class:`AdvisorConfig` budget.  The resulting
:meth:`AdvisorReport.specs` feed straight into one shared-scan
multi-index build (:func:`repro.multibuild.multi_build`, section 6.2):
the advisor decides *what* to build, the multi-builder amortizes *how*.
"""

from repro.advisor.model import (
    CandidateIndex,
    QueryTemplate,
    TableStats,
    WhatIfCostModel,
)
from repro.advisor.recommend import (
    AdvisorConfig,
    AdvisorReport,
    AdvisorStep,
    candidate_name,
    generate_candidates,
    recommend,
    templates_from_spec,
)

__all__ = [
    "AdvisorConfig",
    "AdvisorReport",
    "AdvisorStep",
    "CandidateIndex",
    "QueryTemplate",
    "TableStats",
    "WhatIfCostModel",
    "candidate_name",
    "generate_candidates",
    "recommend",
    "templates_from_spec",
]
