"""Greedy workload-aware index selection under a storage budget.

Candidate generation and selection follow the classic greedy what-if
loop (and its modern Extend-style refinement): candidates are every
prefix of every template's filter columns up to ``max_index_width``, and
each round picks the candidate with the best *benefit per storage page*
-- cost reduction divided by estimated index size -- until the budget is
exhausted, the improvement falls below ``min_cost_improvement``, or
``max_indexes`` picks were made.  Benefit-per-page (not raw benefit)
is what makes the knapsack-shaped budget constraint behave: a slightly
less useful but much smaller index can beat a wide composite.

Everything is deterministic: candidates are generated in sorted order
and ties break on (ratio, benefit, name), so the same workload always
yields the same recommendation -- the property the golden example and
the bench suite rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.advisor.model import (
    CandidateIndex,
    QueryTemplate,
    TableStats,
    WhatIfCostModel,
)
from repro.core import IndexSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.openloop import OpenLoopSpec


@dataclass(frozen=True)
class AdvisorConfig:
    """Constraints on one recommendation run."""

    #: total estimated pages the picked indexes may occupy
    storage_budget_pages: int
    #: widest composite index considered
    max_index_width: int = 2
    #: a pick must shrink the workload cost by at least this factor
    #: (old / new); 1.0 accepts any strict improvement
    min_cost_improvement: float = 1.003
    #: cap on the number of picks (None = budget-limited only)
    max_indexes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.storage_budget_pages < 0:
            raise ValueError("storage budget must be >= 0")
        if self.max_index_width < 1:
            raise ValueError("max_index_width must be >= 1")
        if self.min_cost_improvement < 1.0:
            raise ValueError("min_cost_improvement must be >= 1.0")


@dataclass(frozen=True)
class AdvisorStep:
    """One accepted greedy pick, for explainability."""

    candidate: CandidateIndex
    size_pages: int
    cost_before: float
    cost_after: float

    @property
    def benefit(self) -> float:
        return self.cost_before - self.cost_after


@dataclass
class AdvisorReport:
    """The recommendation: picks, their order, and the cost trajectory."""

    config: AdvisorConfig
    stats: TableStats
    initial_cost: float
    steps: list = field(default_factory=list)

    @property
    def picks(self) -> list:
        return [step.candidate for step in self.steps]

    @property
    def final_cost(self) -> float:
        return self.steps[-1].cost_after if self.steps \
            else self.initial_cost

    @property
    def storage_used(self) -> int:
        return sum(step.size_pages for step in self.steps)

    def specs(self) -> list:
        """The picks as build-ready :class:`~repro.core.IndexSpec`."""
        return [IndexSpec.of(pick.name, list(pick.key_columns))
                for pick in self.picks]

    def to_text(self) -> str:
        lines = [f"advisor: budget={self.config.storage_budget_pages} "
                 f"pages, max_width={self.config.max_index_width}",
                 f"  workload cost without indexes: "
                 f"{self.initial_cost:.1f}"]
        for step in self.steps:
            lines.append(
                f"  + {step.candidate.name} "
                f"on {','.join(step.candidate.key_columns)} "
                f"({step.size_pages} pages): cost "
                f"{step.cost_before:.1f} -> {step.cost_after:.1f}")
        lines.append(f"  final cost {self.final_cost:.1f} using "
                     f"{self.storage_used} pages")
        return "\n".join(lines)


def candidate_name(columns: Sequence[str]) -> str:
    return "adv_" + "_".join(columns)


def generate_candidates(templates: Sequence[QueryTemplate],
                        max_width: int) -> list:
    """Every prefix of every template's filter columns, deduplicated.

    Sorted by (width, columns) so generation order -- and therefore
    tie-breaking -- is independent of template order.
    """
    seen: set[tuple[str, ...]] = set()
    for template in templates:
        for width in range(1, min(max_width, len(template.columns)) + 1):
            seen.add(template.columns[:width])
    return [CandidateIndex(candidate_name(columns), columns)
            for columns in sorted(seen, key=lambda c: (len(c), c))]


def recommend(templates: Sequence[QueryTemplate], stats: TableStats,
              config: AdvisorConfig) -> AdvisorReport:
    """Greedy benefit-per-page selection under the config's constraints."""
    model = WhatIfCostModel(stats)
    templates = [t for t in templates if t.weight > 0]
    report = AdvisorReport(config=config, stats=stats,
                           initial_cost=model.workload_cost(templates, []))
    if not templates:
        return report
    remaining = list(generate_candidates(templates,
                                         config.max_index_width))
    picked: list[CandidateIndex] = []
    budget = config.storage_budget_pages
    while remaining:
        if config.max_indexes is not None \
                and len(picked) >= config.max_indexes:
            break
        current = model.workload_cost(templates, picked)
        best = None  # (ratio, benefit, candidate, size, cost_after)
        for candidate in remaining:
            size = model.size_pages(candidate)
            if size > budget:
                continue
            cost = model.workload_cost(templates, picked + [candidate])
            benefit = current - cost
            if benefit <= 0 or current < cost * config.min_cost_improvement:
                continue
            ratio = benefit / size
            key = (ratio, benefit, candidate.name)
            if best is None or key > (best[0], best[1], best[2].name):
                best = (ratio, benefit, candidate, size, cost)
        if best is None:
            break
        _ratio, _benefit, candidate, size, cost = best
        picked.append(candidate)
        remaining.remove(candidate)
        budget -= size
        report.steps.append(AdvisorStep(
            candidate=candidate, size_pages=size,
            cost_before=current, cost_after=cost))
    return report


def templates_from_spec(olspec: "OpenLoopSpec") -> list:
    """Derive query templates from an open-loop traffic spec.

    Each weighted range column becomes a single-column range template:
    its selectivity is the range span over the key space, its weight the
    spec's overall range weight times the column's share of the range
    mix.  This is the advisor's input when the workload is described by
    the same spec that will drive the live traffic.
    """
    if not olspec.range_columns:
        return []
    total = sum(weight for _name, weight in olspec.range_columns)
    if total <= 0:
        return []
    selectivity = min(1.0, max(olspec.range_span, 1)
                      / max(olspec.key_space, 1))
    return [QueryTemplate(columns=(name,), selectivity=selectivity,
                          weight=olspec.range_weight * weight / total)
            for name, weight in olspec.range_columns]
