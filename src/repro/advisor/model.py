"""What-if cost model for the workload-aware index advisor.

The advisor never builds anything to evaluate it: candidate indexes are
costed *hypothetically* against a query workload, the way commercial
what-if advisors piggyback on the optimizer's cost model.  The model
here is deliberately small but honours the two effects that make index
selection non-trivial:

* **prefix matching** -- an index on ``(a, b)`` serves a query filtering
  on ``a`` alone (partially) and on ``(a, b)`` (fully), but is useless
  for a filter on ``b``;
* **diminishing selectivity** -- matching only a prefix of the query's
  filter columns leaves a residual fraction of entries to post-filter,
  so a partial match costs more than a full one but still beats a heap
  scan.

Every number is in simulated page reads, the unit the rest of the repo
charges I/O in, so advisor estimates are comparable with measured scan
counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table
    from repro.system import System


@dataclass(frozen=True)
class TableStats:
    """The statistics the cost model needs about one table."""

    rows: int
    pages: int
    #: entries per bulk-loaded leaf for a single-column key (wider keys
    #: divide this; mirrors ``SystemConfig.leaf_capacity``)
    leaf_capacity: int = 8
    #: child pointers per branch page (tree fan-out)
    branch_capacity: int = 8

    @classmethod
    def from_table(cls, system: "System", table: "Table") -> "TableStats":
        rows = sum(1 for _ in table.audit_records())
        return cls(rows=rows, pages=table.page_count,
                   leaf_capacity=system.config.leaf_capacity,
                   branch_capacity=system.config.branch_capacity)


@dataclass(frozen=True)
class QueryTemplate:
    """One query shape in the workload: a conjunctive filter.

    ``columns`` are the filtered columns in priority order (the leading
    ones are the most selective); ``selectivity`` is the fraction of
    rows the whole filter keeps; ``weight`` is the template's share of
    the workload (arbitrary units -- only ratios matter).
    """

    columns: tuple[str, ...]
    selectivity: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a query template filters at least 1 column")
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError(
                f"selectivity must be in (0, 1], got {self.selectivity}")
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")


@dataclass(frozen=True)
class CandidateIndex:
    """A hypothetical index the advisor can recommend."""

    name: str
    key_columns: tuple[str, ...]

    @property
    def width(self) -> int:
        return len(self.key_columns)


class WhatIfCostModel:
    """Page-read estimates for queries with and without candidates."""

    def __init__(self, stats: TableStats) -> None:
        self.stats = stats

    # -- index shape -------------------------------------------------------

    def size_pages(self, candidate: CandidateIndex) -> int:
        """Estimated page footprint of the built index (leaves+branches).

        Wider keys pack fewer entries per leaf, so a composite index
        costs more storage than a single-column one -- the pressure the
        advisor's storage budget pushes back against.
        """
        entries_per_leaf = max(1, self.stats.leaf_capacity
                               // max(1, candidate.width))
        leaves = max(1, math.ceil(self.stats.rows / entries_per_leaf))
        total = leaves
        level = leaves
        while level > 1:
            level = math.ceil(level / self.stats.branch_capacity)
            total += level
        return total

    def height(self, candidate: CandidateIndex) -> int:
        """Root-to-leaf levels of the built index."""
        entries_per_leaf = max(1, self.stats.leaf_capacity
                               // max(1, candidate.width))
        leaves = max(1, math.ceil(self.stats.rows / entries_per_leaf))
        height = 1
        level = leaves
        while level > 1:
            level = math.ceil(level / self.stats.branch_capacity)
            height += 1
        return height

    # -- query costs -------------------------------------------------------

    def scan_cost(self) -> float:
        """A full heap scan: every data page."""
        return float(max(1, self.stats.pages))

    def query_cost(self, template: QueryTemplate,
                   candidate: CandidateIndex) -> float:
        """Cost of answering ``template`` through ``candidate``.

        The match length ``m`` is the longest shared prefix of the
        index's key columns and the template's filter columns.  The
        index narrows the scan by ``selectivity ** (m / len(columns))``
        -- a full match applies the whole filter inside the tree, a
        partial match applies a correspondingly weaker power of it and
        post-filters the rest.  No match at all falls back to the heap
        scan.
        """
        matched = 0
        for key_col, query_col in zip(candidate.key_columns,
                                      template.columns):
            if key_col != query_col:
                break
            matched += 1
        if matched == 0:
            return self.scan_cost()
        effective = template.selectivity \
            ** (matched / len(template.columns))
        entries_per_leaf = max(1, self.stats.leaf_capacity
                               // max(1, candidate.width))
        leaves = max(1, math.ceil(self.stats.rows / entries_per_leaf))
        return self.height(candidate) + effective * leaves

    def best_query_cost(self, template: QueryTemplate,
                        candidates: Sequence[CandidateIndex]) -> float:
        """Cheapest plan: the heap scan or the best matching index."""
        best = self.scan_cost()
        for candidate in candidates:
            best = min(best, self.query_cost(template, candidate))
        return best

    def workload_cost(self, templates: Sequence[QueryTemplate],
                      candidates: Sequence[CandidateIndex]) -> float:
        """Weighted sum of each template's cheapest plan."""
        return sum(template.weight
                   * self.best_query_cost(template, candidates)
                   for template in templates)
