"""Index <-> table consistency audits.

Section 2.1.1's whole point is that a missed or spurious key "would
introduce an inconsistency between the table and the index data".  Every
test and experiment finishes by auditing exactly that:

* each live record contributes exactly one ``<key value, RID>`` per index;
* the index contains no live entry without a matching record;
* a unique index maps each key value to at most one live entry;
* the tree itself passes the structural audit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.btree.audit import audit_tree
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.descriptor import IndexDescriptor
    from repro.system import System


class ConsistencyError(ReproError):
    """An index disagrees with its table."""


def audit_index(system: "System", descriptor: "IndexDescriptor") -> dict:
    """Verify one index against its table; returns summary statistics."""
    tree_stats = audit_tree(descriptor.tree)
    table = descriptor.table
    expected = set()
    for rid, record in table.audit_records():
        expected.add((descriptor.key_of(record), rid))
    actual = set()
    for entry in descriptor.tree.all_entries():
        item = (entry.key_value, entry.rid)
        if item in actual:
            raise ConsistencyError(
                f"{descriptor.name}: duplicate live entry {item!r}")
        actual.add(item)
    missing = expected - actual
    spurious = actual - expected
    if missing or spurious:
        raise ConsistencyError(
            f"{descriptor.name}: index/table mismatch -- "
            f"{len(missing)} missing (e.g. {_sample(missing)}), "
            f"{len(spurious)} spurious (e.g. {_sample(spurious)})")
    if descriptor.unique:
        key_values = [key for key, _rid in actual]
        if len(key_values) != len(set(key_values)):
            raise ConsistencyError(
                f"{descriptor.name}: unique index holds duplicate key "
                f"values")
    pseudo = descriptor.tree.key_count(include_pseudo_deleted=True) \
        - descriptor.tree.key_count()
    return {
        "entries": len(actual),
        "pseudo_deleted": pseudo,
        "leaves": tree_stats.get("leaves", 0),
        "height": tree_stats.get("height", 0),
        "clustering": descriptor.tree.clustering_factor(),
    }


def audit_all(system: "System") -> dict:
    """Audit every AVAILABLE index in the system."""
    from repro.core.descriptor import IndexState

    reports = {}
    for name, descriptor in system.indexes.items():
        if descriptor.state is IndexState.AVAILABLE:
            reports[name] = audit_index(system, descriptor)
    return reports


def _sample(items: set, limit: int = 3) -> list:
    return sorted(items)[:limit]
