"""Consistency audits for indexes, tables, and trees."""

from repro.verify.consistency import ConsistencyError, audit_all, audit_index

__all__ = ["ConsistencyError", "audit_all", "audit_index"]
