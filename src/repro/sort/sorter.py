"""Restartable sort phase: replacement selection with checkpoints.

Implements section 5.1.  Keys stream in from IB's data scan; a tournament
tree performs *replacement selection* [Knut73], emitting sorted runs about
twice the workspace size.  Periodically the caller checkpoints:

    "While taking a checkpoint, we wait for the tournament tree to output
    all the keys that have so far been extracted.  We force to disk all
    those keys.  We checkpoint the information (file names, etc.) relating
    to the already output sorted streams and the position of the IB data
    scan up to which keys have already been extracted and sorted.  For the
    last sorted stream that was produced, we also record the value of the
    highest key that was output."

After a crash, :meth:`RunFormation.restore` replays the restart steps of
section 5.1: discard post-checkpoint streams, reposition the last stream to
its checkpointed end-of-file, and continue feeding the tournament from the
checkpointed scan position -- appending to the same stream when the new
keys are all higher than the checkpointed highest key, else opening a new
stream (the tournament's run-assignment rule gives exactly that behaviour).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SortRestartError
from repro.sort.codec import KeyCodec, SpilledKey
from repro.sort.runs import RunStore, SortRun
from repro.sort.tournament import INF, LoserTree, _Infinite


class RunFormation:
    """Replacement-selection run formation over a :class:`RunStore`."""

    def __init__(self, store: RunStore, workspace_size: int) -> None:
        if workspace_size < 1:
            raise SortRestartError("workspace must hold at least one key")
        self.store = store
        self.workspace_size = workspace_size
        self._tree = LoserTree(workspace_size)
        self._occupied = 0
        #: sequence number of the run currently being emitted
        self._emit_seq = 0
        #: run objects by sequence number
        self._runs_by_seq: dict[int, SortRun] = {}
        self._run_order: list[SortRun] = []
        self.keys_pushed = 0
        self._finished = False
        #: comparisons from trees already drained and replaced
        self._comparisons_base = 0

    @property
    def comparisons(self) -> int:
        """Total tournament comparisons across every workspace fill."""
        return self._comparisons_base + self._tree.comparisons

    # -- feeding ------------------------------------------------------------

    def push(self, key: Any) -> None:
        """Feed one key from the data scan."""
        if self._finished:
            raise SortRestartError("run formation already finished")
        self.keys_pushed += 1
        if self._occupied < self.workspace_size:
            seq = self._assign_seq(key)
            self._tree.set(self._occupied, (seq, key))
            self._occupied += 1
            if self._occupied == self.workspace_size:
                self._tree.build()
            return
        slot, (seq, smallest) = self._tree.pop()
        self._emit(seq, smallest)
        new_seq = seq if key >= smallest else seq + 1
        self._tree.set(slot, (new_seq, key))
        self._tree.fixup(slot)

    def _assign_seq(self, key: Any) -> int:
        """Run assignment when the workspace is (re)filling: the key joins
        the current run if it does not break its sort order."""
        current = self._runs_by_seq.get(self._emit_seq)
        if current is None or current.highest_key is None \
                or key >= current.highest_key:
            return self._emit_seq
        return self._emit_seq + 1

    def _emit(self, seq: int, key: Any) -> None:
        run = self._runs_by_seq.get(seq)
        if run is None:
            run = self.store.new_run()
            self._runs_by_seq[seq] = run
            self._run_order.append(run)
            if seq > self._emit_seq:
                previous = self._runs_by_seq.get(self._emit_seq)
                if previous is not None:
                    previous.closed = True
                self._emit_seq = seq
        run.append(key)

    # -- draining (checkpoints and finish) --------------------------------------

    def drain(self) -> None:
        """Emit every key still in the workspace, preserving run
        assignment ("we wait for the tournament tree to output all the
        keys that have so far been extracted")."""
        if self._occupied < self.workspace_size:
            # Partial fill: only the first _occupied slots hold keys.
            pending = [self._tree.values[i] for i in range(self._occupied)
                       if not isinstance(self._tree.values[i], _Infinite)]
            for seq, key in sorted(pending):
                self._emit(seq, key)
            self._comparisons_base += self._tree.comparisons
            self._tree = LoserTree(self.workspace_size)
            self._occupied = 0
            return
        while not self._tree.exhausted:
            slot, (seq, key) = self._tree.pop()
            self._emit(seq, key)
            self._tree.set(slot, INF)
            self._tree.fixup(slot)
        self._comparisons_base += self._tree.comparisons
        self._tree = LoserTree(self.workspace_size)
        self._occupied = 0

    def checkpoint(self, scan_position: Any) -> dict:
        """Drain, force all runs, and return the restart manifest."""
        self.drain()
        for run in self._run_order:
            run.force()
        last = self._run_order[-1] if self._run_order else None
        manifest = {
            "phase": "sort",
            "scan_position": scan_position,
            "runs": [run.name for run in self._run_order],
            "run_lengths": {run.name: len(run) for run in self._run_order},
            "emit_seq": self._emit_seq,
            "last_run": last.name if last is not None else None,
            "last_highest_key": last.highest_key if last is not None else None,
        }
        return manifest

    def finish(self) -> list[SortRun]:
        """Drain, close and force every run; returns them in order."""
        self.drain()
        for run in self._run_order:
            run.closed = True
            run.force()
        self._finished = True
        return list(self._run_order)

    @property
    def runs(self) -> list[SortRun]:
        return list(self._run_order)

    # -- restart (section 5.1) ------------------------------------------------------

    @classmethod
    def restore(cls, store: RunStore, manifest: dict,
                workspace_size: int,
                prune: bool = True,
                codec: Optional[KeyCodec] = None) -> tuple["RunFormation", Any]:
        """Rebuild run formation from a checkpoint after a crash.

        Returns ``(sorter, scan_position)``: the caller repositions IB's
        data scan to ``scan_position`` and resumes pushing keys.

        ``prune=False`` skips discarding store runs outside the manifest:
        the parallel build keeps several shards' sorters on one shared
        store, so each shard restores with ``prune=False`` and the caller
        issues a single union ``keep_only`` across every shard's manifest.

        A manifest carrying a ``codec`` layout restores a
        :class:`CompressedRunFormation`; ``codec`` (for shard sorters that
        share one codec per index) is validated against, or bound from,
        the persisted layout.
        """
        if manifest.get("phase") != "sort":
            raise SortRestartError("manifest is not a sort-phase checkpoint")
        run_names = list(manifest["runs"])
        run_lengths = manifest["run_lengths"]
        for name in run_names:
            if name not in run_lengths:
                raise SortRestartError(
                    f"sort manifest records no length for run {name!r}")
        if run_names and len(run_names) - 1 > manifest["emit_seq"]:
            raise SortRestartError(
                f"sort manifest emit_seq {manifest['emit_seq']} cannot cover "
                f"{len(run_names)} runs")
        if run_names and manifest.get("last_run") != run_names[-1]:
            raise SortRestartError(
                f"sort manifest last_run {manifest.get('last_run')!r} is not "
                f"the newest run {run_names[-1]!r}")
        if prune:
            store.keep_only(run_names)
        for name, length in run_lengths.items():
            run = store.get(name)
            if length > len(run):
                raise SortRestartError(
                    f"run {name!r} holds {len(run)} keys but the manifest "
                    f"checkpointed {length}: stale manifest for a reused run")
            run.truncate(length)
        codec_manifest = manifest.get("codec")
        if codec_manifest is not None:
            if codec is None:
                codec = KeyCodec.from_manifest(codec_manifest)
            else:
                codec.adopt(codec_manifest)
            sorter: RunFormation = CompressedRunFormation(
                store, workspace_size, codec)
        else:
            sorter = RunFormation(store, workspace_size)
        sorter._emit_seq = manifest["emit_seq"]
        for seq_offset, name in enumerate(manifest["runs"]):
            run = store.get(name)
            run.closed = False
            # Sequence numbers are dense in emission order ending at
            # emit_seq; rebuild the mapping accordingly.
            seq = manifest["emit_seq"] - (len(manifest["runs"]) - 1
                                          - seq_offset)
            sorter._runs_by_seq[seq] = run
            sorter._run_order.append(run)
        for run in sorter._run_order[:-1]:
            run.closed = True
        return sorter, manifest["scan_position"]


class CompressedRunFormation(RunFormation):
    """Run formation over codec-encoded keys (compressed key sort).

    The caller still pushes raw ``(key_value, raw_rid)`` pairs; they are
    encoded into machine integers at push time, so the tournament compares
    one int per match instead of a composite tuple.  The run-sequence
    number is folded into the code's high bits (``(seq << total_bits) |
    code``) -- replacement selection then needs no ``(seq, key)`` tuple at
    all.  Runs store *bare* codes (sequence stripped), so the merge phase
    and the final-merger output also compare ints; decode happens only at
    ``BulkLoader.append``.

    If the codec cannot represent the first key's column types it disables
    itself and every path falls back to the raw-tuple base class -- one
    sorter never mixes encoded and raw keys.
    """

    def __init__(self, store: RunStore, workspace_size: int,
                 codec: Optional[KeyCodec] = None) -> None:
        super().__init__(store, workspace_size)
        self.codec = codec if codec is not None else KeyCodec()

    def push(self, pair: Any) -> None:
        codec = self.codec
        if not codec.bound and not codec.disabled:
            codec.bind(pair[0])
        if codec.disabled:
            RunFormation.push(self, pair)
            return
        if self._finished:
            raise SortRestartError("run formation already finished")
        enc = codec.encode(pair[0], pair[1])
        self.keys_pushed += 1
        bits = codec.total_bits
        if self._occupied < self.workspace_size:
            seq = self._assign_seq(enc)
            if type(enc) is int:
                folded: Any = (seq << bits) | enc
            else:
                folded = SpilledKey((seq << bits) | enc.code, enc.raw)
            self._tree.set(self._occupied, folded)
            self._occupied += 1
            if self._occupied == self.workspace_size:
                self._tree.build()
            return
        slot, popped = self._tree.pop()
        if type(popped) is int:
            seq = popped >> bits
            smallest: Any = popped & ((1 << bits) - 1)
        else:
            seq = popped.code >> bits
            smallest = SpilledKey(popped.code & ((1 << bits) - 1), popped.raw)
        self._emit(seq, smallest)
        new_seq = seq if enc >= smallest else seq + 1
        if type(enc) is int:
            folded = (new_seq << bits) | enc
        else:
            folded = SpilledKey((new_seq << bits) | enc.code, enc.raw)
        self._tree.set(slot, folded)
        self._tree.fixup(slot)

    def drain(self) -> None:
        codec = self.codec
        if codec.disabled or not codec.bound:
            RunFormation.drain(self)
            return
        bits = codec.total_bits
        mask = (1 << bits) - 1
        tree = self._tree
        if self._occupied < self.workspace_size:
            pending = [tree.values[i] for i in range(self._occupied)
                       if not isinstance(tree.values[i], _Infinite)]
            pending.sort()
            for folded in pending:
                if type(folded) is int:
                    self._emit(folded >> bits, folded & mask)
                else:
                    self._emit(folded.code >> bits,
                               SpilledKey(folded.code & mask, folded.raw))
            self._comparisons_base += tree.comparisons
            self._tree = LoserTree(self.workspace_size)
            self._occupied = 0
            return
        while not tree.exhausted:
            slot, folded = tree.pop()
            if type(folded) is int:
                self._emit(folded >> bits, folded & mask)
            else:
                self._emit(folded.code >> bits,
                           SpilledKey(folded.code & mask, folded.raw))
            tree.set(slot, INF)
            tree.fixup(slot)
        self._comparisons_base += tree.comparisons
        self._tree = LoserTree(self.workspace_size)
        self._occupied = 0

    def checkpoint(self, scan_position: Any) -> dict:
        manifest = RunFormation.checkpoint(self, scan_position)
        manifest["codec"] = self.codec.to_manifest()
        return manifest
