"""Restartable sort phase: replacement selection with checkpoints.

Implements section 5.1.  Keys stream in from IB's data scan; a tournament
tree performs *replacement selection* [Knut73], emitting sorted runs about
twice the workspace size.  Periodically the caller checkpoints:

    "While taking a checkpoint, we wait for the tournament tree to output
    all the keys that have so far been extracted.  We force to disk all
    those keys.  We checkpoint the information (file names, etc.) relating
    to the already output sorted streams and the position of the IB data
    scan up to which keys have already been extracted and sorted.  For the
    last sorted stream that was produced, we also record the value of the
    highest key that was output."

After a crash, :meth:`RunFormation.restore` replays the restart steps of
section 5.1: discard post-checkpoint streams, reposition the last stream to
its checkpointed end-of-file, and continue feeding the tournament from the
checkpointed scan position -- appending to the same stream when the new
keys are all higher than the checkpointed highest key, else opening a new
stream (the tournament's run-assignment rule gives exactly that behaviour).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SortRestartError
from repro.sort.runs import RunStore, SortRun
from repro.sort.tournament import INF, LoserTree, _Infinite


class RunFormation:
    """Replacement-selection run formation over a :class:`RunStore`."""

    def __init__(self, store: RunStore, workspace_size: int) -> None:
        if workspace_size < 1:
            raise SortRestartError("workspace must hold at least one key")
        self.store = store
        self.workspace_size = workspace_size
        self._tree = LoserTree(workspace_size)
        self._occupied = 0
        #: sequence number of the run currently being emitted
        self._emit_seq = 0
        #: run objects by sequence number
        self._runs_by_seq: dict[int, SortRun] = {}
        self._run_order: list[SortRun] = []
        self.keys_pushed = 0
        self._finished = False

    # -- feeding ------------------------------------------------------------

    def push(self, key: Any) -> None:
        """Feed one key from the data scan."""
        if self._finished:
            raise SortRestartError("run formation already finished")
        self.keys_pushed += 1
        if self._occupied < self.workspace_size:
            seq = self._assign_seq(key)
            self._tree.set(self._occupied, (seq, key))
            self._occupied += 1
            if self._occupied == self.workspace_size:
                self._tree.build()
            return
        slot, (seq, smallest) = self._tree.pop()
        self._emit(seq, smallest)
        new_seq = seq if key >= smallest else seq + 1
        self._tree.set(slot, (new_seq, key))
        self._tree.fixup(slot)

    def _assign_seq(self, key: Any) -> int:
        """Run assignment when the workspace is (re)filling: the key joins
        the current run if it does not break its sort order."""
        current = self._runs_by_seq.get(self._emit_seq)
        if current is None or current.highest_key is None \
                or key >= current.highest_key:
            return self._emit_seq
        return self._emit_seq + 1

    def _emit(self, seq: int, key: Any) -> None:
        run = self._runs_by_seq.get(seq)
        if run is None:
            run = self.store.new_run()
            self._runs_by_seq[seq] = run
            self._run_order.append(run)
            if seq > self._emit_seq:
                previous = self._runs_by_seq.get(self._emit_seq)
                if previous is not None:
                    previous.closed = True
                self._emit_seq = seq
        run.append(key)

    # -- draining (checkpoints and finish) --------------------------------------

    def drain(self) -> None:
        """Emit every key still in the workspace, preserving run
        assignment ("we wait for the tournament tree to output all the
        keys that have so far been extracted")."""
        if self._occupied < self.workspace_size:
            # Partial fill: only the first _occupied slots hold keys.
            pending = [self._tree.values[i] for i in range(self._occupied)
                       if not isinstance(self._tree.values[i], _Infinite)]
            for seq, key in sorted(pending):
                self._emit(seq, key)
            self._tree = LoserTree(self.workspace_size)
            self._occupied = 0
            return
        while not self._tree.exhausted:
            slot, (seq, key) = self._tree.pop()
            self._emit(seq, key)
            self._tree.set(slot, INF)
            self._tree.fixup(slot)
        self._tree = LoserTree(self.workspace_size)
        self._occupied = 0

    def checkpoint(self, scan_position: Any) -> dict:
        """Drain, force all runs, and return the restart manifest."""
        self.drain()
        for run in self._run_order:
            run.force()
        last = self._run_order[-1] if self._run_order else None
        manifest = {
            "phase": "sort",
            "scan_position": scan_position,
            "runs": [run.name for run in self._run_order],
            "run_lengths": {run.name: len(run) for run in self._run_order},
            "emit_seq": self._emit_seq,
            "last_run": last.name if last is not None else None,
            "last_highest_key": last.highest_key if last is not None else None,
        }
        return manifest

    def finish(self) -> list[SortRun]:
        """Drain, close and force every run; returns them in order."""
        self.drain()
        for run in self._run_order:
            run.closed = True
            run.force()
        self._finished = True
        return list(self._run_order)

    @property
    def runs(self) -> list[SortRun]:
        return list(self._run_order)

    # -- restart (section 5.1) ------------------------------------------------------

    @classmethod
    def restore(cls, store: RunStore, manifest: dict,
                workspace_size: int,
                prune: bool = True) -> tuple["RunFormation", Any]:
        """Rebuild run formation from a checkpoint after a crash.

        Returns ``(sorter, scan_position)``: the caller repositions IB's
        data scan to ``scan_position`` and resumes pushing keys.

        ``prune=False`` skips discarding store runs outside the manifest:
        the parallel build keeps several shards' sorters on one shared
        store, so each shard restores with ``prune=False`` and the caller
        issues a single union ``keep_only`` across every shard's manifest.
        """
        if manifest.get("phase") != "sort":
            raise SortRestartError("manifest is not a sort-phase checkpoint")
        if prune:
            store.keep_only(list(manifest["runs"]))
        for name, length in manifest["run_lengths"].items():
            store.get(name).truncate(length)
        sorter = cls(store, workspace_size)
        sorter._emit_seq = manifest["emit_seq"]
        for seq_offset, name in enumerate(manifest["runs"]):
            run = store.get(name)
            run.closed = False
            # Sequence numbers are dense in emission order ending at
            # emit_seq; rebuild the mapping accordingly.
            seq = manifest["emit_seq"] - (len(manifest["runs"]) - 1
                                          - seq_offset)
            sorter._runs_by_seq[seq] = run
            sorter._run_order.append(run)
        for run in sorter._run_order[:-1]:
            run.closed = True
        return sorter, manifest["scan_position"]
