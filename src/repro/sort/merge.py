"""Restartable merge phase (section 5.2).

An N-way tournament merges N sorted input streams.  Restartability rests
on the paper's counter vector:

    "Associate with the tournament tree a vector of N counters, where each
    counter is associated with one input stream ...  while outputting a
    value from the tree, we increment by one the counter associated with
    the input stream from which that value came."

A checkpoint forces the output stream and records the counters plus the
output's end-of-file; restart truncates the output back to that position,
repositions every input to its counter, and rebuilds the tournament --
"no key is left out from the merge and no key is output more than once".
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.errors import SortRestartError
from repro.sort.runs import RunStore, SortRun
from repro.sort.tournament import INF, LoserTree, _Infinite


class RestartableMerger:
    """Merge N input runs into one output run with checkpoint support."""

    def __init__(self, inputs: list[SortRun], output: SortRun,
                 counters: Optional[list[int]] = None) -> None:
        if not inputs:
            raise SortRestartError("merge needs at least one input")
        self.inputs = list(inputs)
        self.output = output
        # Counters are 1-based positions of the next key to read from each
        # input, as in the paper ("All the counters are initialized to 1").
        self.counters = list(counters) if counters is not None \
            else [1] * len(inputs)
        if len(self.counters) != len(self.inputs):
            raise SortRestartError("one counter per input stream required")
        # A counter is the 1-based position of the next key to read, so the
        # legal range is [1, len(run) + 1] (the latter: input exhausted).
        # Restored counters outside it mean the checkpoint does not belong
        # to these runs -- e.g. a stale manifest applied to reused sealed
        # runs -- and would silently merge from the wrong offsets.
        for run, counter in zip(self.inputs, self.counters):
            if not 1 <= counter <= len(run.keys) + 1:
                raise SortRestartError(
                    f"counter {counter} out of range for run {run.name!r} "
                    f"with {len(run.keys)} keys")
        self._tree = LoserTree(len(self.inputs))
        for slot, run in enumerate(self.inputs):
            self._tree.set(slot, self._key_at(run, self.counters[slot]))
        self._tree.build()

    @staticmethod
    def _key_at(run: SortRun, counter: int) -> Any:
        index = counter - 1
        if index >= len(run.keys):
            return INF
        return run.keys[index]

    # -- producing ---------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self._tree.exhausted

    def pop(self) -> Optional[Any]:
        """Produce the next merged key (appending it to the output run),
        or None when every input is exhausted."""
        if self._tree.exhausted:
            return None
        slot, value = self._tree.pop()
        self.output.append(value)
        self.counters[slot] += 1
        self._tree.set(slot,
                       self._key_at(self.inputs[slot], self.counters[slot]))
        self._tree.fixup(slot)
        return value

    def pop_many(self, limit: int) -> list[Any]:
        """Produce up to ``limit`` merged keys.

        Inlines :meth:`pop`'s loop body with hoisted bindings -- this is
        NSF's key-supply path, called once per IB batch for the whole
        build, and the per-key method dispatch was measurable.
        """
        tree = self._tree
        if not tree._built:
            tree.build()
        counters = self.counters
        append = self.output.append
        values = tree.values
        losers = tree._losers
        size = tree.size
        keys_by_slot = [run.keys for run in self.inputs]
        out: list[Any] = []
        out_append = out.append
        compared = 0
        winner = losers[0]
        while len(out) < limit:
            value = values[winner]
            if isinstance(value, _Infinite):
                break
            append(value)
            out_append(value)
            counter = counters[winner] + 1
            counters[winner] = counter
            keys = keys_by_slot[winner]
            replacement = keys[counter - 1] if counter <= len(keys) else INF
            values[winner] = replacement
            # Inlined fixup: replay matches from the refilled leaf upward.
            node = (winner + size) // 2
            while node >= 1:
                loser = losers[node]
                compared += 1
                contender = values[loser]
                # A bare ``<`` is total here: _Infinite answers False on
                # the left and (via the reflected operator) True on the
                # right, so the isinstance guards this used to carry were
                # two redundant tests per match in the hottest loop.
                if contender < replacement:
                    losers[node] = winner
                    winner = loser
                    replacement = contender
                node >>= 1
            losers[0] = winner
        tree.comparisons += compared
        return out

    def run_to_completion(self) -> SortRun:
        while self.pop() is not None:
            pass
        self.output.closed = True
        self.output.force()
        return self.output

    # -- checkpointing (section 5.2) ---------------------------------------------

    def checkpoint(self) -> dict:
        """Force the output and record counters + output end-of-file."""
        self.output.force()
        return {
            "phase": "merge",
            "inputs": [run.name for run in self.inputs],
            "counters": list(self.counters),
            "output": self.output.name,
            "output_length": len(self.output),
        }

    @classmethod
    def restore(cls, store: RunStore, manifest: dict) -> "RestartableMerger":
        """Resume a merge from its latest checkpoint after a crash."""
        if manifest.get("phase") != "merge":
            raise SortRestartError("manifest is not a merge-phase checkpoint")
        output = store.get(manifest["output"])
        # "Truncate the tail of the output file so that its end of file
        # position corresponds to the checkpointed information."
        output.truncate(manifest["output_length"])
        output.closed = False
        inputs = [store.get(name) for name in manifest["inputs"]]
        return cls(inputs, output, counters=list(manifest["counters"]))


def merge_pass(store: RunStore, runs: list[SortRun], fanin: int,
               ) -> list[SortRun]:
    """One full merge pass: groups of ``fanin`` runs -> one run each."""
    if fanin < 2:
        raise SortRestartError("merge fan-in must be at least 2")
    merged: list[SortRun] = []
    for start in range(0, len(runs), fanin):
        group = runs[start:start + fanin]
        if len(group) == 1:
            merged.append(group[0])
            continue
        output = store.new_run()
        merger = RestartableMerger(group, output)
        merger.run_to_completion()
        for run in group:
            store.discard(run.name)
        merged.append(output)
    return merged


def merge_to_single(store: RunStore, runs: list[SortRun], fanin: int
                    ) -> Optional[SortRun]:
    """Repeat merge passes until at most one run remains."""
    current = list(runs)
    while len(current) > 1:
        current = merge_pass(store, current, fanin)
    return current[0] if current else None


def final_merger(store: RunStore, runs: list[SortRun], fanin: int
                 ) -> Optional[RestartableMerger]:
    """Prepare the *final* merge as a streaming merger.

    Earlier passes (if the run count exceeds ``fanin``) are performed
    eagerly; the last pass is returned as a :class:`RestartableMerger` so
    the caller can pipeline its output into index construction ("the final
    merge phase of sort can be performed as keys are being inserted into
    the index", section 2.2.2).  Returns None when there are no runs.
    """
    if not runs:
        return None
    current = list(runs)
    while len(current) > fanin:
        current = merge_pass(store, current, fanin)
    output = store.new_run()
    return RestartableMerger(current, output)
