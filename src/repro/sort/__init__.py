"""Restartable external sort (section 5 of the paper)."""

from repro.sort.merge import (
    RestartableMerger,
    final_merger,
    merge_pass,
    merge_to_single,
)
from repro.sort.runs import RunStore, SortRun, run_sequence
from repro.sort.sorter import RunFormation
from repro.sort.tournament import INF, LoserTree

__all__ = [
    "INF",
    "LoserTree",
    "RestartableMerger",
    "RunFormation",
    "RunStore",
    "SortRun",
    "final_merger",
    "merge_pass",
    "merge_to_single",
    "run_sequence",
]
