"""Restartable external sort (section 5 of the paper)."""

from repro.sort.codec import KeyCodec, SpilledKey
from repro.sort.merge import (
    RestartableMerger,
    final_merger,
    merge_pass,
    merge_to_single,
)
from repro.sort.runs import RunStore, SortRun, run_sequence
from repro.sort.sorter import CompressedRunFormation, RunFormation
from repro.sort.tournament import INF, LoserTree

__all__ = [
    "INF",
    "CompressedRunFormation",
    "KeyCodec",
    "LoserTree",
    "RestartableMerger",
    "RunFormation",
    "RunStore",
    "SortRun",
    "SpilledKey",
    "final_merger",
    "merge_pass",
    "merge_to_single",
    "run_sequence",
]
