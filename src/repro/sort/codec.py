"""Order-preserving fixed-width compressed key codec.

Composite keys ``(col0, col1, ..., page, slot)`` are packed column-wise into a
single Python machine integer so that ``encode(a) < encode(b)  <=>  a < b``.
``LoserTree`` and ``RestartableMerger`` then compare one int instead of a
composite tuple; decoding is deferred until ``BulkLoader.append``.

Layout (big-endian, most significant column first):

* int column   -- ``INT_BITS`` bits holding ``value + INT_OFFSET``.  Values
  outside the representable window spill: field becomes the underflow (0) or
  overflow (all-ones) sentinel and the key is carried raw.
* str column   -- ``STR_PREFIX`` prefix bytes, each stored as ``byte + 1``
  (0 reserved for padding, so the empty string sorts below ``"\\x00"``),
  followed by one continuation bit.  Strings longer than the prefix keep the
  exact prefix, set the continuation bit, and spill so ties are broken on the
  raw tuple.  UTF-8 byte order equals code-point order, so prefix order is
  string order.
* rid          -- ``RID_PAGE_BITS + RID_SLOT_BITS`` low bits, each field
  stored as ``value + 1`` with 0/all-ones underflow/overflow sentinels.
  Out-of-range rids spill (never happens at the scales this repo simulates).

Spilled keys are wrapped in :class:`SpilledKey`: every field *after* the
spilling column is zeroed in the code, so two codes are equal only when the
encoded prefix is identical, and the wrapper breaks the tie on the raw key.
Sentinel field values are disjoint from every exact encoding, so a spilled
code never collides with an exact code for a different key -- comparing the
bare ints is always decisive across the exact/spilled boundary.
"""

from __future__ import annotations

INT_BITS = 40
INT_OFFSET = 1 << (INT_BITS - 1)
_INT_MAX_FIELD = (1 << INT_BITS) - 1  # overflow sentinel; 0 is underflow

STR_PREFIX = 4
STR_BITS = STR_PREFIX * 8 + 1  # prefix bytes + continuation bit
_STR_SPILL_FIELD = (1 << STR_BITS) - 1  # non-encodable value sentinel

RID_PAGE_BITS = 24
RID_SLOT_BITS = 12
RID_BITS = RID_PAGE_BITS + RID_SLOT_BITS
_RID_PAGE_FIELD_MAX = (1 << RID_PAGE_BITS) - 1  # overflow sentinel; 0 underflow
_RID_SLOT_FIELD_MAX = (1 << RID_SLOT_BITS) - 1
_RID_PAGE_EXACT_MAX = _RID_PAGE_FIELD_MAX - 2  # field stores page + 1
_RID_SLOT_EXACT_MAX = _RID_SLOT_FIELD_MAX - 2

_KIND_BITS = {"i": INT_BITS, "s": STR_BITS}


class SpilledKey:
    """A key whose fixed-width encoding was lossy.

    ``code`` orders it against every other key (exact or spilled) up to the
    encoded prefix; ``raw`` is the ``(key_tuple, rid_tuple)`` pair used to
    break exact prefix ties and to recover the original key on decode.
    """

    __slots__ = ("code", "raw")

    def __init__(self, code, raw):
        self.code = code
        self.raw = raw

    def __repr__(self):  # pragma: no cover - debug aid
        return f"SpilledKey({self.code!r}, {self.raw!r})"

    def __lt__(self, other):
        if type(other) is SpilledKey:
            if self.code != other.code:
                return self.code < other.code
            return self.raw < other.raw
        if isinstance(other, int):
            # Sentinel fields are disjoint from exact encodings, so the codes
            # can never be equal: the int comparison is decisive.
            return self.code < other
        return NotImplemented

    def __le__(self, other):
        if type(other) is SpilledKey:
            if self.code != other.code:
                return self.code < other.code
            return self.raw <= other.raw
        if isinstance(other, int):
            return self.code < other
        return NotImplemented

    def __gt__(self, other):
        if type(other) is SpilledKey:
            if self.code != other.code:
                return self.code > other.code
            return self.raw > other.raw
        if isinstance(other, int):
            return self.code > other
        return NotImplemented

    def __ge__(self, other):
        if type(other) is SpilledKey:
            if self.code != other.code:
                return self.code > other.code
            return self.raw >= other.raw
        if isinstance(other, int):
            return self.code > other
        return NotImplemented

    def __eq__(self, other):
        if type(other) is SpilledKey:
            return self.code == other.code and self.raw == other.raw
        return NotImplemented

    def __ne__(self, other):
        if type(other) is SpilledKey:
            return self.code != other.code or self.raw != other.raw
        return NotImplemented

    def __hash__(self):
        return hash((self.code, self.raw))


class KeyCodec:
    """Column-wise fixed-width codec for one index's composite keys.

    The column layout binds lazily from the first key seen (or from a
    persisted manifest on crash/resume).  A column of any type other than
    int/str disables the codec: ``encode`` must not be called once
    ``disabled`` is true -- callers fall back to raw tuples.
    """

    __slots__ = ("kinds", "_shifts", "total_bits", "spills", "disabled",
                 "_encode_cache", "_decode_cache")

    def __init__(self, kinds=None):
        self.kinds = None
        self._shifts = None
        self.total_bits = 0
        self.spills = 0
        self.disabled = False
        #: dictionary-encoding memos: secondary-index key values repeat
        #: across records (every record in a region/category shares
        #: them), so the column encoding is computed once per distinct
        #: key value and the decode once per distinct column code.  Pure
        #: memos of deterministic functions -- volatile, never persisted,
        #: bounded so adversarial key streams cannot grow them unboundedly.
        self._encode_cache = {}
        self._decode_cache = {}
        if kinds is not None:
            self._bind_kinds(kinds)

    # -- layout binding ----------------------------------------------------

    @property
    def bound(self):
        return self.kinds is not None

    @property
    def active(self):
        return self.kinds is not None and not self.disabled

    def _bind_kinds(self, kinds):
        for kind in kinds:
            if kind not in _KIND_BITS:
                raise ValueError(f"unsupported codec kind {kind!r}")
        self.kinds = kinds
        shifts = []
        position = RID_BITS
        for kind in reversed(kinds):
            shifts.append(position)
            position += _KIND_BITS[kind]
        shifts.reverse()
        self._shifts = shifts
        self.total_bits = position
        self._encode_cache.clear()
        self._decode_cache.clear()

    def bind(self, key_value):
        """Bind the layout from the first key's column types."""
        kinds = []
        for value in key_value:
            if type(value) is int:
                kinds.append("i")
            elif type(value) is str:
                kinds.append("s")
            else:
                self.disabled = True
                return False
        self._bind_kinds("".join(kinds))
        return True

    # -- persistence -------------------------------------------------------

    def to_manifest(self):
        return {"kinds": self.kinds, "disabled": self.disabled}

    @classmethod
    def from_manifest(cls, manifest):
        codec = cls()
        if manifest.get("disabled"):
            codec.disabled = True
            return codec
        kinds = manifest.get("kinds")
        if kinds is not None:
            codec._bind_kinds(kinds)
        return codec

    def adopt(self, manifest):
        """Rebind from a persisted manifest, validating any existing binding."""
        restored = KeyCodec.from_manifest(manifest)
        if self.bound and restored.bound and self.kinds != restored.kinds:
            from repro.errors import SortRestartError

            raise SortRestartError(
                f"codec layout mismatch: bound {self.kinds!r}, "
                f"manifest {restored.kinds!r}"
            )
        if restored.disabled:
            self.disabled = True
        elif restored.bound and not self.bound:
            self._bind_kinds(restored.kinds)

    # -- encode / decode ---------------------------------------------------

    def encode(self, key_value, raw_rid):
        """Encode ``(key_value, raw_rid)`` into an int or a SpilledKey.

        ``raw_rid`` is the raw ``(page, slot)`` tuple carried through the sort
        pipeline (matching the uncompressed path, which pushes
        ``(key_value, raw)``).

        The column encoding is memoized per distinct key value (the rid
        fields are folded in fresh for every record): repeated key values
        -- the normal case for a secondary index -- pay one dict hit
        instead of the column loop.
        """
        try:
            cached = self._encode_cache.get(key_value)
        except TypeError:  # unhashable column value: encode directly
            cached = self._encode_columns(key_value)
        else:
            if cached is None:
                cached = self._encode_columns(key_value)
                if len(self._encode_cache) < _CACHE_LIMIT:
                    self._encode_cache[key_value] = cached
        code, spilled = cached
        if not spilled:
            page, slot = raw_rid
            if 0 <= page <= _RID_PAGE_EXACT_MAX:
                code |= (page + 1) << RID_SLOT_BITS
                if 0 <= slot <= _RID_SLOT_EXACT_MAX:
                    return code | (slot + 1)
                # Slot sentinel: orders above every exact slot on this page.
                code |= 0 if slot < 0 else _RID_SLOT_FIELD_MAX
            elif page > _RID_PAGE_EXACT_MAX:
                code |= _RID_PAGE_FIELD_MAX << RID_SLOT_BITS
            # page < 0 leaves both rid fields at the 0 underflow sentinel
        self.spills += 1
        return SpilledKey(code, (key_value, raw_rid))

    def _encode_columns(self, key_value):
        """``(code, spilled)`` for the column fields alone (rid bits 0)."""
        kinds = self.kinds
        shifts = self._shifts
        code = 0
        spilled = False
        for index, kind in enumerate(kinds):
            value = key_value[index]
            if kind == "i":
                if type(value) is int:
                    field = value + INT_OFFSET
                    if field < 1:
                        field = 0
                        spilled = True
                    elif field > _INT_MAX_FIELD - 1:
                        field = _INT_MAX_FIELD
                        spilled = True
                else:
                    field = _INT_MAX_FIELD
                    spilled = True
            else:
                if type(value) is str:
                    try:
                        encoded = value.encode("utf-8")
                    except UnicodeEncodeError:
                        field = _STR_SPILL_FIELD
                        spilled = True
                    else:
                        prefix = encoded[:STR_PREFIX]
                        field = 0
                        for byte in prefix:
                            field = (field << 8) | (byte + 1)
                        field <<= 8 * (STR_PREFIX - len(prefix)) + 1
                        if len(encoded) > STR_PREFIX:
                            field |= 1
                            spilled = True
                else:
                    field = _STR_SPILL_FIELD
                    spilled = True
            code |= field << shifts[index]
            if spilled:
                # Zero every lower-significance field so equal codes imply an
                # identical encoded prefix; the raw tuple breaks the tie.
                break
        return code, spilled

    def decode(self, encoded):
        """Recover ``(key_value, raw_rid)`` from an encoded key.

        The column tuple is memoized per distinct column code (the
        mirror of the encode memo): the final merger emits duplicates
        adjacently, so a loaded run of one key value decodes its columns
        exactly once.
        """
        if type(encoded) is not int:
            return encoded.raw
        slot = (encoded & _RID_SLOT_FIELD_MAX) - 1
        page = ((encoded >> RID_SLOT_BITS) & _RID_PAGE_FIELD_MAX) - 1
        column_code = encoded >> RID_BITS
        cached = self._decode_cache.get(column_code)
        if cached is not None:
            return cached, (page, slot)
        values = []
        for index, kind in enumerate(self.kinds):
            field = encoded >> self._shifts[index]
            if kind == "i":
                field &= _INT_MAX_FIELD
                values.append(field - INT_OFFSET)
            else:
                field &= _STR_SPILL_FIELD
                field >>= 1  # continuation bit is 0 for exact encodings
                raw = field.to_bytes(STR_PREFIX, "big")
                values.append(raw.rstrip(b"\x00").translate(_STR_DECODE).decode("utf-8"))
        values = tuple(values)
        if len(self._decode_cache) < _CACHE_LIMIT:
            self._decode_cache[column_code] = values
        return values, (page, slot)


_STR_DECODE = b"\x00" + bytes(range(255))  # byte -> byte - 1 (index 0 unused)

#: memo bound: adversarial all-distinct key streams stop inserting here
_CACHE_LIMIT = 1 << 16
