"""Tournament (loser) tree -- the comparison engine of section 5.

The paper assumes "a tournament tree sort [Knut73]" for both sorting
phases.  This is Knuth's *tree of losers*: an array-embedded complete
binary tree whose internal nodes remember the loser of each match and
whose root produces the overall winner with O(log N) comparisons per
output.

The property the merge-phase checkpoint relies on (section 5.2) holds by
construction: "a particular leaf node of the tree is always fed from the
same input stream", so every produced value is attributable to exactly one
input.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

#: Sentinel greater than every real key.  Tuples of this sort above any
#: composite key tuple; a dedicated class keeps the comparison total.


class _Infinite:
    """Compares greater than everything (except another _Infinite).

    The full operator set is defined: the codec spill path mixes plain-int
    keys and :class:`~repro.sort.codec.SpilledKey` wrappers in one tree, and
    those only implement comparisons against each other and ints -- every
    ``<= INF`` / ``>= INF`` form therefore reaches the reflected operator
    here, which previously did not exist and raised TypeError.
    """

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return isinstance(other, _Infinite)

    def __gt__(self, other: Any) -> bool:
        return not isinstance(other, _Infinite)

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _Infinite)

    def __ne__(self, other: Any) -> bool:
        return not isinstance(other, _Infinite)

    def __hash__(self) -> int:
        return hash("repro.sort.INF")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "INF"


INF = _Infinite()


# NOTE: matches below compare with a plain ``a < b``.  _Infinite's full
# operator set makes that total without any isinstance guard: ``INF < x``
# answers False directly, and ``x < INF`` falls through x's NotImplemented
# to the reflected ``INF.__gt__`` (True for every non-INF x).  The guard
# function this replaced was one Python call plus two isinstance tests per
# match -- the single hottest line of every build's wall-clock profile.


class LoserTree:
    """A tree of losers over ``size`` feedable slots.

    Usage::

        tree = LoserTree(size)
        for slot in range(size):
            tree.set(slot, first_value_of(slot))
        tree.build()
        while not tree.exhausted:
            slot, value = tree.pop()
            tree.set(slot, next_value_of(slot) or INF)
            tree.fixup(slot)

    ``pop`` returns the minimum value and the slot it came from; the caller
    replenishes that slot (with :data:`INF` when the source is dry) and
    calls :meth:`fixup`.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("tournament tree needs at least one slot")
        self.size = size
        self.values: list[Any] = [INF] * size
        # losers[0] holds the overall winner; losers[1:] the match losers.
        self._losers: list[int] = [0] * size
        self._built = False
        self.comparisons = 0

    # -- feeding -----------------------------------------------------------

    def set(self, slot: int, value: Any) -> None:
        self.values[slot] = value

    def build(self) -> None:
        """(Re)play all matches after the initial feed."""
        winners: dict[int, int] = {}
        size = self.size
        # Leaves occupy virtual nodes [size, 2*size); play bottom-up.
        for node in range(2 * size - 1, size - 1, -1):
            winners[node] = node - size
        for node in range(size - 1, 0, -1):
            left, right = winners[2 * node], winners[2 * node + 1]
            self.comparisons += 1
            if self.values[right] < self.values[left]:
                winner, loser = right, left
            else:
                winner, loser = left, right
            self._losers[node] = loser
            winners[node] = winner
        self._losers[0] = winners[1] if size > 1 else 0
        self._built = True

    # -- producing ------------------------------------------------------------

    def pop(self) -> tuple[int, Any]:
        """The current minimum (slot, value).  Caller must then
        :meth:`set` the slot and :meth:`fixup`."""
        if not self._built:
            self.build()
        slot = self._losers[0]
        return slot, self.values[slot]

    def fixup(self, slot: int) -> None:
        """Replay matches on the path from ``slot`` to the root.

        This runs once per produced key across every sort and merge in a
        build, so the instance attributes are hoisted to locals and the
        comparison counter is accumulated once per call.
        """
        values = self.values
        losers = self._losers
        winner = slot
        node = (slot + self.size) // 2
        compared = 0
        while node >= 1:
            loser = losers[node]
            compared += 1
            if values[loser] < values[winner]:
                losers[node] = winner
                winner = loser
            node >>= 1
        losers[0] = winner
        self.comparisons += compared

    @property
    def exhausted(self) -> bool:
        if not self._built:
            self.build()
        return isinstance(self.values[self._losers[0]], _Infinite)

    @property
    def minimum(self) -> Any:
        if not self._built:
            self.build()
        return self.values[self._losers[0]]
