"""Sorted runs (streams) with stable/volatile crash semantics.

Section 5 checkpoints "the sorted streams" by forcing their keys to disk.
A :class:`SortRun` therefore keeps an explicit *stable length*: keys past
it are lost by a crash (:meth:`crash` truncates to the stable prefix),
exactly modelling an ordinary sequential file whose tail was still in OS
buffers.  :class:`RunStore` groups the runs of one sort and gives each a
"file name" so checkpoint records can reference them the way the paper's
do ("we checkpoint the information (file names, etc.) relating to the
already output sorted streams").
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import SortRestartError


def run_sequence(name: str) -> int:
    """Creation sequence number of a run name (``"sort:idx-10"`` -> 10).

    :meth:`RunStore.new_run` names runs ``f"{prefix}-{counter}"``, so the
    numeric suffix is the creation order.  Resuming builders must feed the
    final merge in this order; sorting the *names* lexicographically puts
    ``...-10`` before ``...-2`` once a build produces ten or more runs.
    """
    return int(name.rsplit("-", 1)[-1])


class SortRun:
    """One sorted stream of keys."""

    __slots__ = ("name", "keys", "stable_length", "closed", "ever_forced")

    def __init__(self, name: str) -> None:
        self.name = name
        self.keys: list[Any] = []
        #: keys[:stable_length] survive a crash
        self.stable_length = 0
        self.closed = False
        #: an empty-but-forced run still "exists" on disk after a crash
        self.ever_forced = False

    def append(self, key: Any) -> None:
        if self.closed:
            raise SortRestartError(f"run {self.name} is closed")
        if self.keys and key < self.keys[-1]:
            raise SortRestartError(
                f"run {self.name}: key {key!r} breaks sort order after "
                f"{self.keys[-1]!r}")
        self.keys.append(key)

    def force(self) -> None:
        """Make everything appended so far crash-survivable."""
        self.stable_length = len(self.keys)
        self.ever_forced = True

    def truncate(self, length: int) -> None:
        """Drop keys beyond ``length`` (merge-phase output rewind)."""
        if length > len(self.keys):
            raise SortRestartError(
                f"run {self.name}: cannot truncate to {length}, only "
                f"{len(self.keys)} keys exist")
        del self.keys[length:]
        self.stable_length = min(self.stable_length, length)

    def crash(self) -> None:
        del self.keys[self.stable_length:]

    def read_from(self, position: int) -> Iterator[Any]:
        """Keys starting at 0-based ``position`` (the paper's counters are
        1-based positions of the *next* key; callers convert)."""
        yield from self.keys[position:]

    @property
    def highest_key(self) -> Optional[Any]:
        return self.keys[-1] if self.keys else None

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SortRun {self.name} n={len(self.keys)} "
                f"stable={self.stable_length}>")


class RunStore:
    """All runs belonging to one (possibly multi-pass) sort."""

    def __init__(self, prefix: str = "run") -> None:
        self.prefix = prefix
        self.runs: dict[str, SortRun] = {}
        self._counter = 0

    def new_run(self) -> SortRun:
        self._counter += 1
        run = SortRun(f"{self.prefix}-{self._counter}")
        self.runs[run.name] = run
        return run

    def get(self, name: str) -> SortRun:
        try:
            return self.runs[name]
        except KeyError:
            raise SortRestartError(f"unknown run {name!r}") from None

    def discard(self, name: str) -> None:
        self.runs.pop(name, None)

    def crash(self) -> None:
        """Apply crash semantics to every run; drop fully volatile runs."""
        doomed = []
        for name, run in self.runs.items():
            run.crash()
            if not run.ever_forced and run.stable_length == 0 \
                    and not run.keys:
                doomed.append(name)
        for name in doomed:
            del self.runs[name]

    def keep_only(self, names: list[str]) -> None:
        """Discard runs not listed (restart: "discard any output sorted
        streams that did not exist as of the last checkpoint")."""
        for name in list(self.runs):
            if name not in names:
                del self.runs[name]

    def total_keys(self) -> int:
        return sum(len(run) for run in self.runs.values())
