"""Algorithm NSF: index build without a side-file (section 2).

Timeline (section 2.2):

1. **Descriptor creation under a short quiesce** -- IB takes a share lock
   on the table, which waits out every active updater's IX lock and holds
   off new updates just long enough to create the descriptor; from then on
   transactions insert and delete keys *directly* in the new index
   (section 2.2.1).
2. **Scan and pipelined restartable sort** (sections 2.2.2, 5).
3. **Key insertion** through the multi-key index-manager interface with a
   remembered root-to-leaf path and specialized splits; IB writes
   undo-redo log records and periodically commits and checkpoints the
   highest inserted key (section 2.2.3).
4. The index becomes available for reads; pseudo-deleted-key cleanup may
   be scheduled (sections 2.2.4, handled by :mod:`repro.core.cleanup`).

Duplicate-key and delete-key races are resolved by the tree's rejection /
tombstone machinery (:mod:`repro.btree.tree`).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.btree.tree import IBCursor
from repro.core.base import BuilderBase, BuildOptions, IndexSpec
from repro.core.descriptor import IndexState
from repro.core.maintenance import BuildContext, NSF_MODE, install_maintenance
from repro.faultinject.sites import fault_point
from repro.sort import RestartableMerger, RunFormation, run_sequence
from repro.storage.rid import RID

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


class NSFIndexBuilder(BuilderBase):
    """No-Side-File online index builder."""

    mode = NSF_MODE

    def __init__(self, system, table, specs, options=None):
        super().__init__(system, table, specs, options)
        self._resume_state: Optional[dict] = None

    # -- main process ------------------------------------------------------

    def run(self):
        """Generator process body: build all requested indexes online."""
        self._mark("start")
        self._trace_begin("build", mode=self.mode, table=self.table.name,
                          indexes=[s.name for s in self.specs],
                          resumed=self._resume_state is not None)
        if self._resume_state is None:
            yield from self._descriptor_phase()
            self._make_sorters()
            scan_start, done_indexes = 0, []
            mergers: dict[str, RestartableMerger] = {}
            phase = "scan"
        else:
            phase, scan_start, done_indexes, mergers = \
                yield from self._prepare_resume()

        if phase == "scan":
            yield from self._scan_phase(scan_start)
            runs_by_index = self._finish_sort()
            self._mark("scan_done")
            self._progress_phase_done("scan")
            # Transition checkpoint: a crash from here resumes by
            # rebuilding the final merge from the forced, closed runs.
            self._write_utility_checkpoint({
                "phase": "insert-start", "done_indexes": []})
            mergers = {
                d.name: self._final_merger(d, runs_by_index[d.name])
                for d in self.descriptors}

        for descriptor in self.descriptors:
            if descriptor.name in done_indexes:
                continue
            merger = mergers.get(descriptor.name)
            yield from self._insert_phase(descriptor, merger, done_indexes)
            done_indexes.append(descriptor.name)
            self._write_utility_checkpoint({
                "phase": "insert-start",
                "done_indexes": list(done_indexes)})

        self._mark_available()
        self._remove_context()
        self._write_utility_checkpoint({"phase": "done"})
        self._mark("done")
        self._progress_finish()
        self._trace_end("build")
        return self.descriptors

    # -- phase 1: descriptor under short quiesce ---------------------------------

    def _descriptor_phase(self):
        quiesce_txn = self.system.txns.begin("IB-descriptor")
        lock_requested = self.system.sim.now
        yield from quiesce_txn.lock(self.table.table_lock_name, "S")
        lock_granted = self.system.sim.now
        self.system.metrics.observe("build.quiesce_wait",
                                    lock_granted - lock_requested)
        self._trace_instant("quiesce.begin",
                            waited=lock_granted - lock_requested)
        self._create_descriptors()
        self._install_context()
        yield from quiesce_txn.commit()  # ends the quiesce
        self.system.metrics.observe("build.quiesce_hold",
                                    self.system.sim.now - lock_granted)
        self._trace_instant("quiesce.end",
                            held=self.system.sim.now - lock_granted)
        # Initial checkpoint so a crash before the first periodic scan
        # checkpoint can still resume (from page zero).
        self._write_utility_checkpoint({
            "phase": "scan", "next_page": 0, "sort": {}})
        self._mark("descriptor_done")
        fault_point(self.system.metrics, "nsf.descriptor_done")

    # -- phase 2: scan + sort -----------------------------------------------------

    def _scan_phase(self, start_page: int):
        if self.options.parallel_readers > 1:
            yield from self._scan_and_sort_parallel(start_page=start_page)
        else:
            yield from self._scan_and_sort(start_page=start_page)

    # -- phase 3: key insertion ------------------------------------------------------

    def _trace_watermark(self, descriptor, highest) -> None:
        """Gauge the gradual-availability frontier (footnote 3)."""
        if self.system.metrics.tracer is None or highest is None:
            return
        from repro.obs.recorder import key_metric
        self._trace_gauge("read_watermark", key_metric(highest[0]),
                          index=descriptor.name, key=str(highest[0]))

    def _insert_phase(self, descriptor, merger: Optional[RestartableMerger],
                      done_indexes: list):
        tree = descriptor.tree
        self._trace_begin("insert", key=f"insert:{descriptor.name}",
                          index=descriptor.name)
        ib_txn = self.system.txns.begin(f"IB-insert-{descriptor.name}")
        cursor = IBCursor()
        since_commit = 0
        since_checkpoint = 0
        inserted = 0
        keys_total = self._store_for(descriptor).total_keys() \
            if self._progress is not None else 0
        highest = None
        commit_every = self.options.commit_every_keys
        checkpoint_every = self.options.checkpoint_every_keys
        codec = self._codecs.get(descriptor.name)
        decode = codec.decode if codec is not None and codec.active else None
        while merger is not None:
            batch = merger.pop_many(self.ib_batch_keys)
            if not batch:
                break
            if decode is not None:
                batch = [decode(encoded) for encoded in batch]
            yield from self._throttle(len(batch))
            yield from tree.ib_insert_batch(ib_txn, batch, cursor)
            fault_point(self.system.metrics, "nsf.insert_batch")
            highest = batch[-1]
            since_commit += len(batch)
            since_checkpoint += len(batch)
            inserted += len(batch)
            self._progress_units(f"insert:{descriptor.name}",
                                 inserted, keys_total)
            if commit_every and since_commit >= commit_every:
                yield from ib_txn.commit()
                fault_point(self.system.metrics, "nsf.ib_commit")
                # Footnote 3 of section 2.2.1: the committed frontier can
                # serve reads of lower key ranges (opt-in, see
                # repro.query.set_gradual_availability).
                descriptor.read_watermark = highest
                self._trace_watermark(descriptor, highest)
                ib_txn = self.system.txns.begin(
                    f"IB-insert-{descriptor.name}")
                since_commit = 0
                self.system.metrics.incr("build.ib_commits")
            if checkpoint_every and since_checkpoint >= checkpoint_every:
                yield from ib_txn.commit()
                # The checkpoint path is a commit too: the frontier it
                # commits is just as readable as the one committed by the
                # commit_every path above.  Leaving the watermark behind
                # here stalled gradual availability whenever checkpoints
                # fired more often than (or instead of) plain commits.
                descriptor.read_watermark = highest
                self._trace_watermark(descriptor, highest)
                manifest = merger.checkpoint()
                self._write_utility_checkpoint({
                    "phase": "insert",
                    "index": descriptor.name,
                    "merge": manifest,
                    "highest_key": highest,
                    "done_indexes": list(done_indexes),
                })
                ib_txn = self.system.txns.begin(
                    f"IB-insert-{descriptor.name}")
                since_checkpoint = 0
                since_commit = 0
                self.system.metrics.incr("build.insert_checkpoints")
                fault_point(self.system.metrics, "nsf.insert_checkpoint")
        yield from ib_txn.commit()
        if highest is not None:
            descriptor.read_watermark = highest
            self._trace_watermark(descriptor, highest)
        self._progress_phase_done(f"insert:{descriptor.name}")
        self._trace_end(f"insert:{descriptor.name}")
        self._mark(f"insert_done:{descriptor.name}")
        fault_point(self.system.metrics, "nsf.insert_done")

    # -- restart (sections 2.2.3 and 2.3.2) ------------------------------------------

    @classmethod
    def resume(cls, system: "System", utility_state: dict
               ) -> "NSFIndexBuilder":
        """Rebuild a builder from the latest utility checkpoint.

        The system must already have gone through restart recovery (which
        re-attached descriptors and rolled back IB's uncommitted batch).
        """
        table = system.tables[utility_state["table"]]
        specs = [IndexSpec(name, tuple(cols), unique)
                 for name, cols, unique in utility_state["specs"]]
        builder = cls(system, table, specs)
        builder.descriptors = [system.indexes[name]
                               for name in utility_state["indexes"]]
        builder._install_context()
        install_maintenance(system, table)
        builder._resume_state = utility_state
        builder._restore_throttle(utility_state)
        builder._restore_progress(utility_state)
        builder._restore_codec(utility_state)
        return builder

    def _prepare_resume(self):
        """Re-establish phase state from the checkpoint; returns
        ``(phase, scan_start, done_indexes, mergers)``."""
        state = self._resume_state
        phase = state.get("phase", "scan")
        done_indexes = list(state.get("done_indexes", []))
        mergers: dict[str, RestartableMerger] = {}
        if phase == "scan":
            scan_start = state.get("next_page", 0)
            manifests = state.get("sort", {})
            for descriptor in self.descriptors:
                manifest = manifests.get(descriptor.name)
                if manifest is not None:
                    sorter, _pos = self._restore_sorter(descriptor, manifest)
                else:
                    sorter = self._new_sorter(descriptor)
                self._sorters[descriptor.name] = sorter
            self.system.metrics.incr("build.resumes.scan")
            return phase, scan_start, done_indexes, mergers
        if phase in ("insert", "insert-start"):
            if phase == "insert":
                name = state["index"]
                store = self._store_for(self.system.indexes[name])
                mergers[name] = RestartableMerger.restore(store,
                                                          state["merge"])
            else:
                name = None
            # Indexes with no merge checkpoint restart their final merge
            # from the forced, closed runs; already-inserted keys are
            # duplicate-rejected (section 2.2.3: "no integrity problem in
            # IB trying to insert keys which were already inserted prior
            # to the failure").
            for descriptor in self.descriptors:
                if descriptor.name in done_indexes \
                        or descriptor.name == name:
                    continue
                dstore = self._store_for(descriptor)
                # Creation order, not name order: lexicographic names put
                # run-10 before run-2, silently merging resumed builds in
                # a different stream order than the original run.
                runs = sorted((run for run in dstore.runs.values()
                               if run.closed),
                              key=lambda run: run_sequence(run.name))
                mergers[descriptor.name] = self._final_merger(
                    descriptor, runs)
            self.system.metrics.incr("build.resumes.insert")
            return "insert", 0, done_indexes, mergers
        # phase == "done": everything finished before the crash
        return phase, 0, [d.name for d in self.descriptors], mergers
        yield  # pragma: no cover - generator shape


def nsf_pre_undo(system: "System", utility_state: dict) -> None:
    """Reinstall the NSF build context before recovery's undo pass."""
    if utility_state.get("builder") != NSF_MODE:
        return
    table = system.tables[utility_state["table"]]
    descriptors = [system.indexes[name]
                   for name in utility_state["indexes"]
                   if name in system.indexes]
    context = BuildContext(mode=NSF_MODE, descriptors=descriptors)
    if utility_state.get("phase") == "done":
        return
    system.builds[table.name] = context
