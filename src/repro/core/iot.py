"""Extension: online index build over an index-organized table (§6.2).

"Our algorithms can also be easily extended to the storage model in which
the records are stored in the primary index and the primary key is
required to be unique.  We would perform a complete range scan of the
primary index to construct the keys for the new index.  In SF, in the
place of Current-RID, we would use the current-key as the scan position.
Since the primary key has to be unique, this position also would be a
unique one in the index."

This module provides:

* :class:`IOTable` -- a table whose records live in a unique primary
  B+-tree keyed by the first column; secondary index entries are
  ``<key value, primary key>`` (the primary key is encoded in the RID slot
  of the secondary tree's entries, as ``RID(pk, 0)``);
* :class:`SFIotBuilder` -- the SF algorithm over that storage model: a
  range scan of the primary index with ``current_key`` as the scan
  position, a side-file for changes behind the scan, bottom-up load, and
  a drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, TYPE_CHECKING

from repro.btree.loader import BulkLoader
from repro.btree.tree import BTree
from repro.errors import RecordNotFoundError, StorageError
from repro.sidefile import SideFile, register_sidefile_operations
from repro.sim.kernel import Acquire, Delay
from repro.sim.latch import EXCLUSIVE, SHARE
from repro.sort import RunFormation, RunStore, final_merger
from repro.storage.page import Record
from repro.storage.rid import RID
from repro.wal.records import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System
    from repro.txn.transaction import Transaction

#: Scan-position sentinel: "the whole key range has been scanned".
KEY_INFINITY = object()


@dataclass
class IotSecondaryIndex:
    """Catalog entry for one secondary index over an :class:`IOTable`."""

    name: str
    key_columns: tuple[int, ...]   # column positions within the record
    tree: BTree
    available: bool = False

    def key_of(self, record: Record) -> tuple:
        return record.project(self.key_columns)


class IOTable:
    """A table stored in its (unique) primary index.

    The first column is the primary key.  Rows are kept in a dict (the
    "data" part of the primary index's leaf entries) while a unique
    :class:`BTree` maintains ordering for range scans; both are updated
    under WAL protection so crash recovery replays them.
    """

    def __init__(self, system: "System", name: str,
                 columns: Sequence[str]) -> None:
        self.system = system
        self.name = name
        self.columns = tuple(columns)
        self.primary = BTree(system, f"{name}.pk", name, unique=True)
        self.rows: dict = {}
        self.secondary: list[IotSecondaryIndex] = []
        #: active SF build over this table, if any
        self.build: Optional["SFIotBuilder"] = None
        self._register_operations()

    # -- key helpers -------------------------------------------------------

    def column_indexes(self, columns: Sequence[str]) -> tuple[int, ...]:
        try:
            return tuple(self.columns.index(c) for c in columns)
        except ValueError as exc:
            raise StorageError(f"unknown column in {columns!r}") from exc

    def lock_name(self, pk) -> tuple:
        """Data-only locking: key locks equal record locks (section 6.2)."""
        return ("iot", self.name, pk)

    @staticmethod
    def pk_rid(pk) -> RID:
        """The primary key encoded in a secondary entry's RID slot."""
        return RID(pk, 0)

    # -- record operations (generators) ---------------------------------------

    def insert(self, txn: "Transaction", values: Sequence):
        record = Record(tuple(values))
        pk = values[0]
        yield from txn.lock(self.lock_name(pk), "X")
        if pk in self.rows:
            raise StorageError(f"duplicate primary key {pk!r}")
        behind = self._behind_scan(pk)
        self.rows[pk] = record
        self.primary.apply_logical("insert", pk, RID(0, 0))
        txn.log(RecordKind.UPDATE,
                redo=("iot.put", {"table": self.name, "pk": pk,
                                  "values": record.values}),
                undo=("iot.insert", {"table": self.name, "pk": pk,
                                     "values": record.values}),
                info={"table": self.name, "behind_scan": behind})
        self._maintain(txn, pk, None, record, behind)
        yield Delay(self.system.config.record_op_cost)
        self.system.metrics.incr("iot.inserts")
        return pk

    def delete(self, txn: "Transaction", pk):
        yield from txn.lock(self.lock_name(pk), "X")
        record = self.rows.get(pk)
        if record is None:
            raise RecordNotFoundError(f"{self.name} has no row {pk!r}")
        behind = self._behind_scan(pk)
        del self.rows[pk]
        self.primary.apply_logical("physical_delete", pk, RID(0, 0))
        txn.log(RecordKind.UPDATE,
                redo=("iot.del", {"table": self.name, "pk": pk}),
                undo=("iot.delete", {"table": self.name, "pk": pk,
                                     "values": record.values}),
                info={"table": self.name, "behind_scan": behind})
        self._maintain(txn, pk, record, None, behind)
        yield Delay(self.system.config.record_op_cost)
        self.system.metrics.incr("iot.deletes")
        return record

    def update(self, txn: "Transaction", pk, new_values: Sequence):
        """Update non-key columns (the primary key itself is immutable;
        change it with delete+insert, as index-organized stores require)."""
        if new_values[0] != pk:
            raise StorageError("primary key update must be delete+insert")
        yield from txn.lock(self.lock_name(pk), "X")
        old = self.rows.get(pk)
        if old is None:
            raise RecordNotFoundError(f"{self.name} has no row {pk!r}")
        behind = self._behind_scan(pk)
        new = Record(tuple(new_values))
        self.rows[pk] = new
        txn.log(RecordKind.UPDATE,
                redo=("iot.put", {"table": self.name, "pk": pk,
                                  "values": new.values}),
                undo=("iot.update", {"table": self.name, "pk": pk,
                                     "old_values": old.values,
                                     "new_values": new.values}),
                info={"table": self.name, "behind_scan": behind})
        self._maintain_update(txn, pk, old, new, behind)
        yield Delay(self.system.config.record_op_cost)
        self.system.metrics.incr("iot.updates")
        return old, new

    def read(self, txn: "Transaction", pk):
        yield from txn.lock(self.lock_name(pk), "S")
        record = self.rows.get(pk)
        if record is None:
            raise RecordNotFoundError(f"{self.name} has no row {pk!r}")
        return record

    # -- visibility (current-key in place of Current-RID) -----------------------

    def _behind_scan(self, pk) -> bool:
        """Is ``pk`` behind the in-progress build's scan position?"""
        if self.build is None:
            return False
        position = self.build.current_key
        if position is None:
            return False
        if position is KEY_INFINITY:
            return True
        return pk < position

    # -- secondary maintenance ------------------------------------------------------

    def _maintain(self, txn, pk, old: Optional[Record],
                  new: Optional[Record], behind: bool) -> None:
        for index in self.secondary:
            if index.available:
                self._direct(txn, index, pk, old, new)
            elif self.build is not None \
                    and index in self.build.indexes and behind:
                sidefile = self.system.sidefiles[index.name]
                if old is not None:
                    sidefile.append_sync(txn, "delete", index.key_of(old),
                                         self.pk_rid(pk))
                if new is not None:
                    sidefile.append_sync(txn, "insert", index.key_of(new),
                                         self.pk_rid(pk))

    def _maintain_update(self, txn, pk, old: Record, new: Record,
                         behind: bool) -> None:
        for index in self.secondary:
            old_key = index.key_of(old)
            new_key = index.key_of(new)
            if old_key == new_key:
                continue
            if index.available:
                self._direct(txn, index, pk, old, new)
            elif self.build is not None \
                    and index in self.build.indexes and behind:
                sidefile = self.system.sidefiles[index.name]
                sidefile.append_sync(txn, "delete", old_key,
                                     self.pk_rid(pk))
                sidefile.append_sync(txn, "insert", new_key,
                                     self.pk_rid(pk))

    def _direct(self, txn, index: IotSecondaryIndex, pk,
                old: Optional[Record], new: Optional[Record]) -> None:
        rid = self.pk_rid(pk)
        if old is not None:
            index.tree.apply_logical("physical_delete", index.key_of(old),
                                     rid)
            txn.log(RecordKind.UPDATE,
                    redo=("index.apply", {"index": index.name,
                                          "action": "physical_delete",
                                          "key_value": index.key_of(old),
                                          "rid": tuple(rid)}),
                    undo=("index.undo", {"index": index.name,
                                         "action": "insert",
                                         "key_value": index.key_of(old),
                                         "rid": tuple(rid)}),
                    info={"index": index.name})
        if new is not None:
            index.tree.apply_logical("insert", index.key_of(new), rid)
            txn.log(RecordKind.UPDATE,
                    redo=("index.apply", {"index": index.name,
                                          "action": "insert",
                                          "key_value": index.key_of(new),
                                          "rid": tuple(rid)}),
                    undo=("index.undo", {"index": index.name,
                                         "action": "physical_delete",
                                         "key_value": index.key_of(new),
                                         "rid": tuple(rid)}),
                    info={"index": index.name})

    # -- scans and audits --------------------------------------------------------------

    def range_scan(self) -> Iterator[tuple]:
        """(pk, record) pairs in primary-key order (audit; no latching)."""
        for pk in sorted(self.rows):
            yield pk, self.rows[pk]

    # -- recovery ---------------------------------------------------------------------------

    def _register_operations(self) -> None:
        ops = self.system.log.operations
        if ops.knows("iot.put"):
            return
        ops.register("iot.put", redo=_redo_iot_put)
        ops.register("iot.del", redo=_redo_iot_del)
        ops.register("iot.insert", redo=_reject, undo=_undo_iot_insert)
        ops.register("iot.delete", redo=_reject, undo=_undo_iot_delete)
        ops.register("iot.update", redo=_reject, undo=_undo_iot_update)


class SFIotBuilder:
    """SF over an index-organized table: current-key scan position."""

    def __init__(self, system: "System", table: IOTable, name: str,
                 key_columns: Sequence[str],
                 sort_workspace: Optional[int] = None) -> None:
        self.system = system
        self.table = table
        index = IotSecondaryIndex(
            name=name,
            key_columns=table.column_indexes(key_columns),
            tree=BTree(system, name, table.name),
        )
        self.indexes = [index]
        self.index = index
        #: the scan position: None (nothing scanned) -> pk values ->
        #: KEY_INFINITY (scan complete)
        self.current_key = None
        self.sort_workspace = sort_workspace \
            or system.config.sort_workspace

    def run(self):
        """Generator process body: build the secondary index online."""
        system = self.system
        table = self.table
        register_sidefile_operations(system)
        system.sidefiles[self.index.name] = SideFile(system,
                                                     self.index.name)
        table.secondary.append(self.index)
        table.build = self

        # Range scan of the primary index in key order, batched so update
        # transactions interleave.  A snapshot of the key range ahead of
        # the scan is re-taken each batch: rows inserted ahead are seen,
        # rows inserted behind go to the side-file.
        store = RunStore(prefix=f"iot:{self.index.name}")
        system.run_stores[f"iot:{self.index.name}"] = store
        sorter = RunFormation(store, self.sort_workspace)
        batch = 16
        while True:
            pending = [pk for pk in sorted(table.rows)
                       if self.current_key is None
                       or pk > self.current_key]
            if not pending:
                self.current_key = KEY_INFINITY
                break
            for pk in pending[:batch]:
                record = table.rows.get(pk)
                if record is not None:
                    sorter.push((self.index.key_of(record),
                                 tuple(IOTable.pk_rid(pk))))
                self.current_key = pk
            yield Delay(len(pending[:batch])
                        * system.config.tree_visit_cost)
        runs = sorter.finish()
        system.metrics.incr("iot.scan_complete")

        # Bottom-up, unlogged load (pipelined final merge).
        merger = final_merger(store, runs, system.config.merge_fanin)
        loader = BulkLoader(self.index.tree)
        loaded = 0
        while merger is not None:
            key = merger.pop()
            if key is None:
                break
            loader.append(key[0], RID(*key[1]))
            loaded += 1
            if loaded % 64 == 0:
                yield Delay(64 * system.config.bulk_load_key_cost)
        loader.finish()
        self.index.tree.force()

        # Drain the side-file, then flip atomically.
        sidefile = system.sidefiles[self.index.name]
        ib_txn = system.txns.begin(f"IB-iot-{self.index.name}")
        position = 0
        while True:
            while position < len(sidefile.entries):
                entry = sidefile.entries[position]
                position += 1
                yield from self.index.tree.sf_drain_apply(
                    ib_txn, entry.operation, entry.key_value, entry.rid)
                system.metrics.incr("iot.sidefile_drained")
            if position == len(sidefile.entries):
                self.index.available = True
                table.build = None
                break
        yield from ib_txn.commit()
        return self.index


def audit_iot_index(table: IOTable, index: IotSecondaryIndex) -> dict:
    """Verify a secondary index against its IOT (like audit_index)."""
    from repro.verify.consistency import ConsistencyError

    expected = {(index.key_of(record), IOTable.pk_rid(pk))
                for pk, record in table.range_scan()}
    actual = {(entry.key_value, entry.rid)
              for entry in index.tree.all_entries()}
    if expected != actual:
        raise ConsistencyError(
            f"{index.name}: IOT mismatch -- missing "
            f"{sorted(expected - actual)[:3]}, spurious "
            f"{sorted(actual - expected)[:3]}")
    return {"entries": len(actual),
            "clustering": index.tree.clustering_factor()}


# -- recovery handlers -----------------------------------------------------------


def _table(system: "System", name: str) -> Optional[IOTable]:
    table = system.tables.get(name)
    return table if isinstance(table, IOTable) else None


def _redo_iot_put(system: "System", record: LogRecord):
    _op, args = record.redo
    table = _table(system, args["table"])
    if table is not None:
        pk = args["pk"]
        table.rows[pk] = Record(tuple(args["values"]))
        table.primary.apply_logical("insert", pk, RID(0, 0))
    return
    yield  # pragma: no cover - generator shape


def _redo_iot_del(system: "System", record: LogRecord):
    _op, args = record.redo
    table = _table(system, args["table"])
    if table is not None:
        pk = args["pk"]
        table.rows.pop(pk, None)
        table.primary.apply_logical("physical_delete", pk, RID(0, 0))
    return
    yield  # pragma: no cover


def _reject(system, record):  # pragma: no cover
    raise AssertionError("iot undo payloads are never redone")


def _undo_iot_insert(system: "System", txn, record: LogRecord):
    _op, args = record.undo
    table = _table(system, args["table"])
    if table is not None:
        pk = args["pk"]
        old = table.rows.pop(pk, None)
        table.primary.apply_logical("physical_delete", pk, RID(0, 0))
        table._maintain(txn, pk, old, None,
                        behind=table._behind_scan(pk))
    clr_redo = ("iot.del", {"table": args["table"], "pk": args["pk"]})
    yield Delay(system.config.record_op_cost)
    return clr_redo, None


def _undo_iot_delete(system: "System", txn, record: LogRecord):
    _op, args = record.undo
    table = _table(system, args["table"])
    restored = Record(tuple(args["values"]))
    if table is not None:
        pk = args["pk"]
        table.rows[pk] = restored
        table.primary.apply_logical("insert", pk, RID(0, 0))
        table._maintain(txn, pk, None, restored,
                        behind=table._behind_scan(pk))
    clr_redo = ("iot.put", {"table": args["table"], "pk": args["pk"],
                            "values": restored.values})
    yield Delay(system.config.record_op_cost)
    return clr_redo, None


def _undo_iot_update(system: "System", txn, record: LogRecord):
    _op, args = record.undo
    table = _table(system, args["table"])
    old = Record(tuple(args["old_values"]))
    new = Record(tuple(args["new_values"]))
    if table is not None:
        pk = args["pk"]
        table.rows[pk] = old
        table._maintain_update(txn, pk, new, old,
                               behind=table._behind_scan(pk))
    clr_redo = ("iot.put", {"table": args["table"], "pk": args["pk"],
                            "values": old.values})
    yield Delay(system.config.record_op_cost)
    return clr_redo, None
