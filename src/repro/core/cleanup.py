"""Background garbage collection of pseudo-deleted keys (section 2.2.4).

"After IB completes its processing, garbage collection of the
pseudo-deleted keys in the index can be scheduled as a background
activity ...  Scan the leaf pages.  For each page, latch the page and
check if there are any pseudo-deleted keys.  If there are, then apply the
Commit_LSN check.  If it is successful, then garbage collect those keys;
otherwise, for each pseudo-deleted key, request a conditional instant
share lock on it.  If the lock is granted, then delete the key; otherwise,
skip it since the key's deletion is probably uncommitted."

The Commit_LSN fast path is modelled at tree granularity: when the tree's
last modification LSN is below the system's Commit_LSN, every
pseudo-delete on it is committed and no locks are needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.descriptor import IndexDescriptor
from repro.sim.kernel import Acquire, Delay
from repro.sim.latch import EXCLUSIVE
from repro.wal.records import RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


def cleanup_pseudo_deleted(system: "System", descriptor: IndexDescriptor):
    """Generator process body: collect every committed pseudo-deleted key.

    Returns the number of keys physically removed.
    """
    tree = descriptor.tree
    txn = system.txns.begin(f"gc-{descriptor.name}")
    removed = 0
    skipped = 0
    # Commit_LSN check at tree granularity: when every log record below
    # Commit_LSN belongs to a terminated transaction and nothing newer
    # touched this index, all pseudo-deletes are committed.  The cheap
    # conservative test: no transaction is active at all (other than us).
    commit_lsn = system.txns.commit_lsn()
    fast_path = commit_lsn > system.log.last_lsn \
        or len(system.txns.active) <= 1
    for leaf_no in [leaf.page_no for leaf in tree.leaf_chain()]:
        leaf = tree.pages.get(leaf_no)
        if leaf is None or not hasattr(leaf, "entries"):
            continue  # restructured since we planned the scan
        yield Acquire(leaf.latch, EXCLUSIVE)
        try:
            doomed = []
            for entry in list(leaf.entries):
                if not entry.pseudo_deleted:
                    continue
                if fast_path:
                    system.metrics.incr("gc.commit_lsn_fast_path")
                    doomed.append(entry)
                    continue
                granted = yield from txn.lock(
                    ("rec", descriptor.table.name, entry.rid), "S",
                    conditional=True, instant=True)
                if granted:
                    doomed.append(entry)
                else:
                    skipped += 1  # deletion probably uncommitted: skip
            for entry in doomed:
                if entry in leaf.entries:
                    leaf.entries.remove(entry)
                    removed += 1
                    txn.log(
                        RecordKind.UPDATE,
                        redo=("index.apply", {
                            "index": descriptor.name,
                            "action": "physical_delete",
                            "key_value": entry.key_value,
                            "rid": tuple(entry.rid)}),
                        info={"index": descriptor.name, "reason": "gc"},
                        writer="gc",
                    )
        finally:
            leaf.latch.release(system.sim.current)
        if removed or skipped:
            yield Delay(system.config.key_op_cost)
    yield from txn.commit()
    system.metrics.incr("gc.keys_removed", removed)
    system.metrics.incr("gc.keys_skipped", skipped)
    return removed
