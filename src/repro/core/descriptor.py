"""Index descriptors: the catalog entry for one index.

Creating the descriptor is the step that makes a new index *visible* to
update transactions (sections 2.2.1 and 3.2.1).  How and when it is created
differs per algorithm -- NSF quiesces updates around this step, SF does not
-- so the builders orchestrate that; this module only defines the catalog
object and the plumbing that attaches it to its table.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, TYPE_CHECKING

from repro.btree.tree import BTree
from repro.errors import StorageError
from repro.storage.page import Record

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table
    from repro.system import System


class IndexState(enum.Enum):
    """Lifecycle of an index."""

    #: descriptor exists; transactions maintain it (per-algorithm rules)
    #: but readers may not use it as an access path yet (section 2.2.1)
    BUILDING = "building"
    #: fully built; available for reads and maintained directly
    AVAILABLE = "available"
    #: build was cancelled; descriptor pending removal
    CANCELLED = "cancelled"


class IndexDescriptor:
    """Catalog entry: key columns, uniqueness, the tree, and build state."""

    def __init__(self, system: "System", table: "Table", name: str,
                 key_columns: Sequence[str], unique: bool = False,
                 leaf_capacity: Optional[int] = None) -> None:
        if name in system.indexes:
            raise StorageError(f"index {name!r} already exists")
        self.system = system
        self.table = table
        self.name = name
        self.key_columns = tuple(key_columns)
        self.unique = unique
        self.column_indexes = table.column_indexes(self.key_columns)
        self.tree = BTree(system, name, table.name, unique=unique,
                          leaf_capacity=leaf_capacity)
        self.state = IndexState.BUILDING

    def key_of(self, record: Record) -> tuple:
        """The record's key value: concatenated key-column values
        (section 1.1)."""
        return record.project(self.column_indexes)

    def attach(self) -> None:
        """Register in the catalog and append to the table's index list.

        Section 3.1 footnote 6: the per-table index list only grows while
        update transactions are active, so the count comparison of
        Figure 2 is meaningful.
        """
        self.system.indexes[self.name] = self
        self.table.indexes.append(self)
        self.system.metrics.incr("catalog.index_descriptors")

    def detach(self) -> None:
        """Remove from the catalog (index cancel/drop)."""
        self.system.indexes.pop(self.name, None)
        if self in self.table.indexes:
            self.table.indexes.remove(self)

    @property
    def is_available(self) -> bool:
        return self.state is IndexState.AVAILABLE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        uniq = "unique " if self.unique else ""
        return (f"<{uniq}Index {self.name} on {self.table.name}"
                f"({', '.join(self.key_columns)}) {self.state.value}>")
