"""Side-file drain and atomic flag flip (section 3.2.5).

Extracted from :mod:`repro.core.sf` so the serial SF builder and the
partitioned parallel builder (:mod:`repro.parallel`) share one copy of
the drain loop, the sorted-chunk optimization, and -- critically -- the
atomic completion test that flips ``Index_Build`` off.  The behaviour is
exactly the serial builder's: IB applies side-file entries in order with
undo-redo logging, checkpoints its position, and when the drain position
reaches the end of the file flips the descriptor to AVAILABLE in the same
atomic step (no yields), so a racing append either landed before the test
(and was processed) or lands after the flip and goes directly to the
index.
"""

from __future__ import annotations

from repro.core.descriptor import IndexState
from repro.faultinject.sites import fault_point


class SideFileDrainer:
    """Mixin providing SF's phase-4 drain for :class:`BuilderBase` heirs.

    Expects the host class to provide ``system``, ``options``,
    ``context``, ``_mark`` and ``_write_utility_checkpoint`` (all defined
    by :class:`repro.core.base.BuilderBase`).
    """

    def _drain_phase(self, descriptor, start_position: int,
                     loaded: list, drained: list):
        tree = descriptor.tree
        sidefile = self.system.sidefiles[descriptor.name]
        ib_txn = self.system.txns.begin(f"IB-drain-{descriptor.name}")
        position = start_position
        since_checkpoint = 0
        checkpoint_every = self.options.checkpoint_every_keys
        self._trace_begin("drain", key=f"drain:{descriptor.name}",
                          index=descriptor.name,
                          start_position=start_position,
                          backlog=len(sidefile.entries) - position)
        tracer = self.system.metrics.tracer

        if self.options.sort_sidefile and position < len(sidefile.entries):
            position = yield from self._drain_sorted_chunk(
                descriptor, ib_txn, sidefile, position)
            sidefile.drain_position = position

        drain_batch = self.options.drain_batch
        while True:
            while position < len(sidefile.entries):
                # Feed the tree batches instead of single entries: one
                # traversal + latch hold covers a whole batch of
                # consecutive same-leaf entries (bounded so checkpoints
                # still land on schedule).
                take = len(sidefile.entries) - position
                if take > drain_batch:
                    take = drain_batch
                if checkpoint_every:
                    slack = checkpoint_every - since_checkpoint
                    if slack >= 1 and take > slack:
                        take = slack
                yield from self._throttle(take)
                batch = [(entry.operation, entry.key_value, entry.rid)
                         for entry in
                         sidefile.entries[position:position + take]]
                position += take
                yield from tree.sf_drain_apply_batch(ib_txn, batch)
                self.system.metrics.incr("build.sidefile_drained", take)
                sidefile.drain_position = position
                self._progress_drain(f"drain:{descriptor.name}",
                                     position, len(sidefile.entries))
                if tracer is not None:
                    tracer.gauge("sidefile.backlog",
                                 len(sidefile.entries) - position,
                                 index=descriptor.name)
                since_checkpoint += take
                if checkpoint_every and since_checkpoint >= checkpoint_every:
                    yield from ib_txn.commit()
                    sidefile.force()
                    self._write_utility_checkpoint({
                        "phase": "drain",
                        "index": descriptor.name,
                        "position": position,
                        "loaded_indexes": list(loaded),
                        "drained_indexes": list(drained),
                    })
                    ib_txn = self.system.txns.begin(
                        f"IB-drain-{descriptor.name}")
                    since_checkpoint = 0
                    self.system.metrics.incr("build.drain_checkpoints")
                    fault_point(self.system.metrics, "sf.drain_checkpoint")
            # Atomic completion test: no yields between the length check
            # and the state flip, so a racing append either landed before
            # (and was processed) or lands after the flip and goes
            # directly to the index (section 3.2.5).
            fault_point(self.system.metrics, "sf.flag_flip.before")
            if position == len(sidefile.entries):
                descriptor.state = IndexState.AVAILABLE
                if self.context is not None \
                        and descriptor in self.context.descriptors:
                    self.context.descriptors.remove(descriptor)
                self._trace_instant("sf.flip", index=descriptor.name,
                                    position=position)
                self._progress_phase_done(f"drain:{descriptor.name}")
                fault_point(self.system.metrics, "sf.flag_flip.after")
                break
        tree.verify_unique()
        yield from ib_txn.commit()
        self.system.metrics.observe(
            f"build.sidefile_length.{descriptor.name}", position)
        self._trace_end(f"drain:{descriptor.name}",
                        drained=position - start_position)
        self._mark(f"drain_done:{descriptor.name}")

    def _drain_sorted_chunk(self, descriptor, ib_txn, sidefile,
                            position: int):
        """Section 3.2.5 optimization: sort the current side-file contents
        (stable with respect to identical keys) before applying, so the
        tree is updated in key order; the remainder arriving during the
        sorted pass is processed sequentially by the caller.

        Key order is where drain batching pays off most: consecutive
        sorted entries land on the same leaf, so each batch collapses to
        a handful of traversals (EXPERIMENTS.md E19 measures the window
        shrinking as ``drain_batch`` grows)."""
        end = len(sidefile.entries)
        chunk = list(enumerate(sidefile.entries[position:end],
                               start=position))
        chunk.sort(key=lambda item: (item[1].key_value, item[1].rid,
                                     item[0]))
        drain_batch = max(1, self.options.drain_batch)
        metrics = self.system.metrics
        for start in range(0, len(chunk), drain_batch):
            batch = [(entry.operation, entry.key_value, entry.rid)
                     for _pos, entry in chunk[start:start + drain_batch]]
            yield from self._throttle(len(batch))
            yield from descriptor.tree.sf_drain_apply_batch(ib_txn, batch)
            metrics.incr("build.sidefile_drained", len(batch))
            metrics.incr("build.sidefile_drained_sorted", len(batch))
        return end
