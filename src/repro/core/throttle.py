"""IB admission control: a token bucket on the simulated clock.

The paper's online builders remove the *correctness* reason to quiesce
updates, but an unthrottled IB still competes with foreground
transactions for page latches, locks, and the log -- the query-update
tradeoff formalized by Yi (PAPERS.md).  Production systems therefore
rate-limit utility work.  :class:`TokenBucket` implements the classic
deficit bucket against the discrete-event clock:

* ``rate`` tokens accrue per simulated time unit, capped at ``burst``;
* :meth:`acquire` debits one batch's cost and, when the bucket runs
  dry, yields a single ``Delay`` exactly long enough to repay the
  deficit -- so a throttled builder's long-run work rate converges to
  ``rate`` work items per time unit regardless of batch sizes.

Builders call :meth:`repro.core.base.BuilderBase._throttle` (which
wraps one shared bucket per build) at batch boundaries: scan prefetch
batches, NSF insert batches, SF bulk-load batches, side-file drain
batches, and each PSF shard worker's prefetch batches.  The shared
bucket means a parallel build's *total* rate is limited, not each
shard's.

Determinism: the bucket reads only the simulator clock, and an
unthrottled build (``SystemConfig.build_rate_limit is None``) never
constructs one -- the ``_throttle`` helper then yields nothing at all,
leaving the schedule byte-identical to pre-throttle builds.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Delay, Simulator


class TokenBucket:
    """Deficit token bucket keyed to a :class:`Simulator` clock."""

    def __init__(self, sim: Simulator, rate: float,
                 burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.sim = sim
        self.rate = float(rate)
        #: at most one time unit of work may pass un-delayed after an
        #: idle period (plus whatever single batch overdraws the bucket)
        self.burst = float(burst) if burst is not None \
            else max(1.0, self.rate)
        self.tokens = self.burst
        self._last_refill = sim.now
        self._custom_burst = burst is not None

    def set_rate(self, rate: float) -> None:
        """Retune the bucket's rate in place (adaptive throttling).

        Tokens accrued so far are settled at the *old* rate first, so a
        mid-flight rate change never retroactively re-prices elapsed
        time.  Unless the caller pinned an explicit burst at
        construction, the burst follows the default policy
        (``max(1.0, rate)``) and the token level is clamped to it.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self._refill()
        self.rate = float(rate)
        if not self._custom_burst:
            self.burst = max(1.0, self.rate)
        self.tokens = min(self.tokens, self.burst)

    def _refill(self) -> None:
        now = self.sim.now
        if now > self._last_refill:
            self.tokens = min(
                self.burst,
                self.tokens + (now - self._last_refill) * self.rate)
            self._last_refill = now

    def acquire(self, cost: float):
        """Generator: debit ``cost`` work items; pay off any deficit.

        Debits first, then delays -- a single batch larger than the
        burst capacity still goes through, it just waits proportionally
        longer.  Callers from concurrent processes (PSF shard workers)
        each repay their own overdraft, so the shared bucket bounds the
        build's aggregate rate.
        """
        self._refill()
        self.tokens -= cost
        if self.tokens < 0:
            yield Delay(-self.tokens / self.rate)
            self._refill()

    def state(self) -> dict:
        """Snapshot for utility checkpoints (observability; the rate is
        what resume must restore -- token levels are volatile and reset
        to a full burst on restart, like any post-crash cache)."""
        return {"rate": self.rate, "burst": self.burst,
                "tokens": self.tokens}
