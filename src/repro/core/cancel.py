"""Cancelling an in-progress index build (section 2.3.2).

"Since canceling an in-progress index build requires that the descriptor
of the index be deleted, we need to quiesce update transactions by
acquiring a share lock on the table.  Quiescing is required so that the
transactions which roll back can process their log records against the
index without running into any abnormal situations.  The rest of the
processing ... is the same as what is normally required for the dropping
of an index."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.descriptor import IndexDescriptor, IndexState

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


def cancel_build(system: "System", descriptor: IndexDescriptor):
    """Generator process body: cancel a build and drop its index."""
    txn = system.txns.begin(f"cancel-{descriptor.name}")
    # Quiesce updates: wait out all IX holders, block new ones briefly.
    yield from txn.lock(descriptor.table.table_lock_name, "S")
    descriptor.state = IndexState.CANCELLED
    context = system.builds.get(descriptor.table.name)
    if context is not None and descriptor in context.descriptors:
        context.descriptors.remove(descriptor)
        if not context.descriptors:
            system.builds.pop(descriptor.table.name, None)
    descriptor.detach()
    descriptor.tree.pages.clear()
    descriptor.tree.root = None
    system.sidefiles.pop(descriptor.name, None)
    system.run_stores.pop(f"sort:{descriptor.name}", None)
    system.metrics.incr("build.cancels")
    yield from txn.commit()
