"""The offline baseline: build with updates fully quiesced.

This is the behaviour the paper sets out to eliminate ("current DBMSs do
not allow updates to be performed on a table while an index is being
built").  IB takes an X lock on the table for the *entire* build, so every
updating transaction blocks until the index is finished -- the
availability cost experiments E3 and E13 measure against.

Being alone, IB skips all the online machinery: no side-file, no
tombstones, no logging of key inserts (a failed build simply restarts),
and a perfectly clustered bottom-up load.
"""

from __future__ import annotations

from repro.btree.loader import BulkLoader
from repro.core.base import BuilderBase
from repro.sim.kernel import Delay


class OfflineIndexBuilder(BuilderBase):
    """Quiesced baseline builder."""

    mode = "offline"

    def run(self):
        """Generator process body: build all requested indexes."""
        self._mark("start")
        self._trace_begin("build", mode=self.mode, table=self.table.name,
                          indexes=[s.name for s in self.specs])
        txn = self.system.txns.begin("IB-offline")
        lock_requested = self.system.sim.now
        yield from txn.lock(self.table.table_lock_name, "X")
        self.system.metrics.observe(
            "build.quiesce_wait", self.system.sim.now - lock_requested)
        self._mark("quiesced")
        self._trace_instant("quiesce.begin",
                            waited=self.system.sim.now - lock_requested)
        try:
            self._create_descriptors()
            self._make_sorters()
            if self.options.parallel_readers > 1:
                yield from self._scan_and_sort_parallel()
            else:
                yield from self._scan_and_sort()
            runs_by_index = self._finish_sort()
            self._mark("scan_done")
            self._progress_phase_done("scan")
            for descriptor in self.descriptors:
                self._trace_begin("load", key=f"load:{descriptor.name}",
                                  index=descriptor.name)
                merger = self._final_merger(
                    descriptor, runs_by_index[descriptor.name])
                loader = BulkLoader(
                    descriptor.tree,
                    fill_free_fraction=self.options.fill_free_fraction)
                loaded = 0
                keys_total = self._store_for(descriptor).total_keys() \
                    if self._progress is not None else 0
                codec = self._codecs.get(descriptor.name)
                decode = codec.decode \
                    if codec is not None and codec.active else None
                while merger is not None:
                    key = merger.pop()
                    if key is None:
                        break
                    if decode is not None:
                        key = decode(key)
                    loader.append(key[0], key[1])
                    loaded += 1
                    if loaded % 64 == 0:
                        yield from self._throttle(64)
                        yield Delay(
                            64 * self.system.config.bulk_load_key_cost)
                        self._progress_units(f"load:{descriptor.name}",
                                             loaded, keys_total)
                loader.finish()
                descriptor.tree.force()
                self._progress_phase_done(f"load:{descriptor.name}")
                self._trace_end(f"load:{descriptor.name}", keys=loaded)
            self._mark_available()
            self._mark("built")
        finally:
            yield from txn.commit()  # releases the X lock
        self.system.metrics.observe(
            "build.quiesce_hold", self.system.sim.now - self.timings["quiesced"])
        self._trace_instant(
            "quiesce.end",
            held=self.system.sim.now - self.timings["quiesced"])
        self._write_utility_checkpoint({"phase": "done"})
        self._mark("done")
        self._progress_finish()
        self._trace_end("build")
        return self.descriptors
