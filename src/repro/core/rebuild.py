"""Fast index reconstruction from sealed sorted runs.

Every completed SF-like build parks its fully merged, forced final run
in a ``sealed:{index}`` store (:meth:`repro.core.sf.SFIndexBuilder.
_seal_sorted_runs`) together with a manifest in ``system.sealed_runs``.
Dropping and rebuilding the index -- the classic remedy for a bloated or
corrupted tree -- can then skip the expensive half of the build
entirely: no table scan, no run formation, zero data-page reads
(experiment E25).  The rebuild is:

1. **Reset** -- checkpoint the rebuild *first* (so a crash can never
   leave a BUILDING descriptor the checkpoint does not know about --
   orphan discard would detach it, destroying a live index), then in one
   atomic step flip the descriptor to BUILDING, drop the old tree pages,
   and install an SF build context with Current-RID already at infinity:
   the sealed run covers every record, so all concurrent maintenance
   routes straight to a side-file (section 3.2.2's end-of-scan state).
2. **Load** -- bulk-load the tree bottom-up from the sealed run, exactly
   SF's phase 3 (checkpointed merge counters, restartable), then replay
   the logged ``index.apply`` history on top: the sealed run reflects the
   table as of the *original* build's scan, and everything since -- the
   original drain, post-flip direct maintenance, earlier rebuilds -- was
   logged (the same mechanism as the section 6 torn-snapshot fallback).
3. **Drain + flip** -- SF's phase 4, starting from the side-file length
   recorded at reset (the prefix below it was applied -- and logged --
   by the original build; re-applying a non-suffix does not converge).

The builder *is* an :class:`~repro.core.sf.SFIndexBuilder` whose run
store is the sealed store; crash/resume, throttling, progress, and the
compressed-key codec all ride along unchanged.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.base import IndexSpec
from repro.core.descriptor import IndexState
from repro.core.maintenance import (
    BuildContext,
    REBUILD_MODE,
    install_maintenance,
)
from repro.core.sf import SFIndexBuilder
from repro.errors import StorageError
from repro.faultinject.sites import fault_point
from repro.sidefile import SideFile, register_sidefile_operations
from repro.sort import RestartableMerger
from repro.storage.rid import INFINITY_RID

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.descriptor import IndexDescriptor
    from repro.system import System


class RebuildIndexBuilder(SFIndexBuilder):
    """Drop + rebuild an existing index from its sealed sorted runs."""

    mode = REBUILD_MODE

    def __init__(self, system, table, specs, options=None):
        super().__init__(system, table, specs, options)
        #: side-file length at reset time, per index: the drain floor.
        #: Entries below it belong to the original build's era and were
        #: already applied (and logged) -- re-draining them would replay
        #: a non-suffix, which does not converge.
        self._sidefile_starts: dict[str, int] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def for_index(cls, system: "System", descriptor: "IndexDescriptor",
                  options=None) -> "RebuildIndexBuilder":
        """Builder rebuilding the *existing* ``descriptor`` in place."""
        manifest = system.sealed_runs[descriptor.name]
        spec = IndexSpec(descriptor.name, tuple(descriptor.key_columns),
                         descriptor.unique)
        builder = cls(system, descriptor.table, [spec], options)
        builder.descriptors = [descriptor]
        builder._validate_sealed(descriptor, manifest)
        codec_manifest = manifest.get("codec")
        if codec_manifest is not None:
            # The sealed run holds *encoded* keys: the rebuild must adopt
            # the original build's codec layout (and its compressed mode)
            # so the load phase decodes them identically.
            builder.options.compressed_keys = True
            builder._codec_for(descriptor.name).adopt(codec_manifest)
        return builder

    def _validate_sealed(self, descriptor, manifest) -> None:
        """Fail fast on a stale or torn sealed manifest."""
        name = descriptor.name
        if manifest.get("table") != self.table.name:
            raise StorageError(
                f"sealed runs for {name!r} belong to table "
                f"{manifest.get('table')!r}, not {self.table.name!r}")
        if tuple(manifest.get("key_columns", ())) \
                != tuple(descriptor.key_columns):
            raise StorageError(
                f"sealed runs for {name!r} were sorted on columns "
                f"{manifest.get('key_columns')!r}; the index now keys on "
                f"{list(descriptor.key_columns)!r}")
        store = self.system.run_stores.get(f"sealed:{name}")
        if store is None:
            raise StorageError(
                f"sealed run store for {name!r} is missing")
        for run_name in manifest.get("runs", []):
            run = store.runs.get(run_name)
            if run is None:
                raise StorageError(
                    f"sealed run {run_name!r} for {name!r} is missing")
            if not run.closed:
                raise StorageError(
                    f"sealed run {run_name!r} for {name!r} is not closed")
            expected = manifest.get("lengths", {}).get(run_name)
            if expected is not None and expected != len(run):
                raise StorageError(
                    f"sealed run {run_name!r} for {name!r} holds "
                    f"{len(run)} keys, manifest expects {expected} "
                    "(torn or stale seal)")

    # -- sort plumbing: the sealed store IS the run store -------------------

    def _store_name(self, descriptor) -> str:
        return f"sealed:{descriptor.name}"

    # -- main process -------------------------------------------------------

    def run(self):
        """Generator process body: rebuild every requested index."""
        self._mark("start")
        self._trace_begin("build", mode=self.mode, table=self.table.name,
                          indexes=[s.name for s in self.specs],
                          resumed=self._resume_state is not None)
        if self._resume_state is None:
            self._reset_phase()
            mergers = self._reuse_sealed_runs()
            phase = "load"
            loaded: list[str] = []
            drained: list[str] = []
            drain_positions = dict(self._sidefile_starts)
        else:
            (phase, _scan_start, loaded, drained, mergers,
             drain_positions) = self._prepare_resume()

        yield from self._load_and_drain(phase, loaded, drained, mergers,
                                        drain_positions)

        self._remove_context()
        self._write_utility_checkpoint({"phase": "done"})
        self._mark("done")
        self._progress_finish()
        self._trace_end("build")
        return self.descriptors

    # -- phase 1: checkpoint, then atomic flip + drop -----------------------

    def _reset_phase(self) -> None:
        register_sidefile_operations(self.system)
        for descriptor in self.descriptors:
            sidefile = self.system.sidefiles.get(descriptor.name)
            if sidefile is None:
                sidefile = SideFile(self.system, descriptor.name)
                self.system.sidefiles[descriptor.name] = sidefile
            self._sidefile_starts[descriptor.name] = len(sidefile.entries)
        # Checkpoint BEFORE the flip: restart's orphan discard detaches
        # any BUILDING descriptor the surviving checkpoint never recorded
        # -- correct for a fresh build's throwaway descriptor, fatal for
        # a rebuild of a live index.  Registering first means a crash in
        # the gap sees either an AVAILABLE index (rebuild never started)
        # or a BUILDING descriptor the checkpoint knows how to resume.
        self._write_utility_checkpoint({"phase": "reset"})
        fault_point(self.system.metrics, "rebuild.reset")
        # Atomic flip + drop (no yields): queries stop seeing the index,
        # maintenance starts routing to the side-file, and the old tree
        # pages vanish in the same step.
        for descriptor in self.descriptors:
            descriptor.state = IndexState.BUILDING
            descriptor.build_mode = self.mode
            self._reset_tree(descriptor.tree)
            descriptor.tree.force()  # the empty tree is the stable image
        self._install_context(current_rid=INFINITY_RID, index_build=True)
        # SF's headline property holds for the rebuild too: no quiesce.
        self.system.metrics.observe("build.quiesce_wait", 0.0)
        self.system.metrics.observe("build.quiesce_hold", 0.0)
        self._mark("reset_done")

    def _reuse_sealed_runs(self) -> dict:
        """Final mergers over the sealed runs -- the zero-scan shortcut."""
        mergers: dict[str, RestartableMerger] = {}
        for descriptor in self.descriptors:
            manifest = self.system.sealed_runs[descriptor.name]
            store = self._store_for(descriptor)
            runs = [store.get(run_name)
                    for run_name in manifest.get("runs", [])]
            mergers[descriptor.name] = self._final_merger(descriptor, runs)
            self.system.metrics.incr("rebuild.runs_reused", len(runs))
            self._trace_instant("rebuild.reuse_runs",
                                index=descriptor.name,
                                runs=list(manifest.get("runs", [])),
                                keys=sum(len(run) for run in runs))
            fault_point(self.system.metrics, "rebuild.reuse_runs")
        return mergers

    # -- phase 2: SF's load, then replay the logged history -----------------

    def _load_phase(self, descriptor, merger, loaded, loader=None):
        yield from super()._load_phase(descriptor, merger, loaded,
                                       loader=loader)
        # The sealed run reflects the table as of the original build's
        # scan; everything since (the original drain, direct maintenance
        # after its flip, earlier rebuilds' drains) was logged as
        # ``index.apply``.  Replaying it here is exactly the section 6
        # torn-snapshot fallback -- discard the torn marker so the shared
        # loop does not replay a second time.
        self._torn_recover.discard(descriptor.name)
        self._replay_index_log(descriptor)
        fault_point(self.system.metrics, "rebuild.replayed")

    # -- restart ------------------------------------------------------------

    def _write_utility_checkpoint(self, state: dict) -> None:
        # Every rebuild checkpoint carries the drain floors so resume can
        # clamp restored (or torn-fallback) drain positions to them.
        if self._sidefile_starts:
            state = dict(state)
            state["sidefile_start"] = dict(self._sidefile_starts)
        super()._write_utility_checkpoint(state)

    @classmethod
    def resume(cls, system: "System", utility_state: dict
               ) -> "RebuildIndexBuilder":
        table = system.tables[utility_state["table"]]
        specs = [IndexSpec(name, tuple(cols), unique)
                 for name, cols, unique in utility_state["specs"]]
        builder = cls(system, table, specs)
        builder.descriptors = [system.indexes[name]
                               for name in utility_state["indexes"]]
        register_sidefile_operations(system)
        install_maintenance(system, table)
        context = system.builds.get(table.name)
        if context is None:
            context = rebuild_pre_undo(system, utility_state) \
                or BuildContext(mode=REBUILD_MODE,
                                descriptors=list(builder.descriptors),
                                current_rid=INFINITY_RID)
            system.builds[table.name] = context
        builder.context = context
        builder._resume_state = utility_state
        builder._sidefile_starts = dict(
            utility_state.get("sidefile_start", {}))
        builder._restore_throttle(utility_state)
        builder._restore_progress(utility_state)
        builder._restore_codec(utility_state)
        return builder

    def _prepare_resume(self):
        state = self._resume_state
        # A crash at phase "reset" may predate the flip: the descriptors
        # are still AVAILABLE with their old trees intact.  The SF resume
        # path below treats "reset" like "load-start" (mergers from the
        # closed sealed runs; surviving tree content discarded), so all
        # that remains is re-flipping and re-creating missing side-files.
        for descriptor in self.descriptors:
            if descriptor.name not in self.system.sidefiles:
                self.system.sidefiles[descriptor.name] = SideFile(
                    self.system, descriptor.name)
            self._sidefile_starts.setdefault(descriptor.name, 0)
        (phase, scan_start, loaded, drained, mergers,
         drain_positions) = super()._prepare_resume()
        for descriptor in self.descriptors:
            if descriptor.name in drained:
                continue
            if descriptor.state is not IndexState.BUILDING:
                # Crash before (or torn snapshot of) the flip: redo it.
                descriptor.state = IndexState.BUILDING
                descriptor.build_mode = self.mode
            if self.context is not None \
                    and descriptor not in self.context.descriptors:
                self.context.descriptors.append(descriptor)
        # Drain floors: positions restored from a checkpoint are already
        # past the floor; torn-fallback positions reset to 0 must come
        # back up to it, and indexes with no recorded position start
        # there rather than at 0.
        for name, floor in self._sidefile_starts.items():
            if drain_positions.get(name, 0) < floor:
                drain_positions[name] = floor
        self.system.metrics.incr("build.resumes.rebuild")
        return phase, scan_start, loaded, drained, mergers, drain_positions


def rebuild_pre_undo(system: "System", utility_state: dict
                     ) -> Optional[BuildContext]:
    """Reinstall the rebuild's context before recovery's undo pass.

    The rebuild never has a scan frontier: Current-RID is infinity from
    the flip onward, so every loser's maintenance classifies as
    "scanned" and compensates through the side-file (Figure 2).
    """
    if utility_state.get("builder") != REBUILD_MODE:
        return None
    if utility_state.get("phase") == "done":
        return None
    table = system.tables[utility_state["table"]]
    descriptors = [system.indexes[name]
                   for name in utility_state["indexes"]
                   if name in system.indexes]
    context = BuildContext(
        mode=REBUILD_MODE,
        descriptors=[d for d in descriptors
                     if d.state is IndexState.BUILDING],
        current_rid=INFINITY_RID,
        index_build=bool(utility_state.get("index_build", True)),
    )
    system.builds[table.name] = context
    return context
