"""Shared machinery for the index builders (IB).

Both algorithms share their first half (section 2.2.2 / 3.2.2): a
sequential scan of the data pages with sequential prefetch, latching each
page in share mode, extracting one key per record per index being built
(section 6.2: several indexes can share the scan), feeding a pipelined
restartable sort, and periodically checkpointing the sort against the WAL
so a crash does not force a full rescan (section 5).

Subclasses provide the second half: NSF inserts the sorted keys top-down
into a live tree; SF bulk-loads bottom-up and then drains the side-file;
Offline holds an X table lock for the whole build (the baseline the paper
wants to eliminate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.core.descriptor import IndexDescriptor, IndexState
from repro.core.maintenance import BuildContext, install_maintenance
from repro.core.throttle import TokenBucket
from repro.faultinject.sites import fault_point, fault_points_enabled
from repro.sim.kernel import Acquire, Delay
from repro.sim.latch import SHARE
from repro.sort import (
    CompressedRunFormation,
    KeyCodec,
    RunFormation,
    RunStore,
    final_merger,
)
from repro.storage.rid import RID
from repro.wal.manager import LogManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table
    from repro.system import System
    from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class IndexSpec:
    """What to build: one index's name, key columns, and uniqueness."""

    name: str
    key_columns: tuple[str, ...]
    unique: bool = False

    @classmethod
    def of(cls, name: str, key_columns: Sequence[str],
           unique: bool = False) -> "IndexSpec":
        return cls(name, tuple(key_columns), unique)


@dataclass
class BuildOptions:
    """Tunables for one build run (None -> take the system default)."""

    #: pages per prefetch I/O during the data scan (section 2.2.2)
    prefetch_pages: Optional[int] = None
    #: parallel reader processes for the data scan (section 2.2.2,
    #: [PMCLS90]: "the data pages may be read in parallel using multiple
    #: processes").  Only NSF and offline honour this: SF's Current-RID
    #: visibility rule requires a single ordered scan position.
    parallel_readers: int = 1
    #: scan-phase checkpoint interval, in data pages (None = no periodic
    #: scan checkpoints; a checkpoint is still taken at phase boundaries)
    checkpoint_every_pages: Optional[int] = None
    #: NSF: keys per multi-key index-manager call (section 2.2.3)
    ib_batch_keys: Optional[int] = None
    #: NSF: commit the IB transaction every this many inserted keys
    commit_every_keys: int = 512
    #: insert/load/drain-phase checkpoint interval, in keys or entries
    checkpoint_every_keys: Optional[int] = None
    #: sort workspace (tournament slots)
    sort_workspace: Optional[int] = None
    #: merge fan-in
    merge_fanin: Optional[int] = None
    #: free space left in each bulk-loaded leaf (section 2.2.3)
    fill_free_fraction: Optional[float] = None
    #: NSF: use the specialized IB split of section 2.3.1
    specialized_splits: bool = True
    #: SF: sort the first chunk of the side-file before applying it
    #: (section 3.2.5 performance note)
    sort_sidefile: bool = False
    #: SF/PSF: side-file entries fed to the tree per drain batch (one
    #: traversal + latch hold covers the batch); larger batches shorten
    #: the catch-up window at the cost of coarser checkpoint spacing
    #: (experiment E19)
    drain_batch: int = 64
    #: simulated time per key extracted during the scan
    key_extract_cost: float = 0.05
    #: PSF: number of range partitions / scan workers (None -> builder
    #: default; ignored by the serial builders)
    partitions: Optional[int] = None
    #: encode composite keys into fixed-width machine integers at scan
    #: time (compressed key sort); the tournament trees then compare one
    #: int per match instead of a composite tuple, and decode is deferred
    #: until the keys enter the tree (experiment E25)
    compressed_keys: bool = False
    #: simulated time per key-comparison *width unit* in the sort's
    #: tournament trees (0.0 = comparisons are free, the historical
    #: schedule).  A raw composite key costs ``len(key_columns) + 2``
    #: units per comparison (each column plus the rid pair), an encoded
    #: key exactly 1 -- this is what makes the codec speedup visible on
    #: the simulated clock.
    key_compare_cost: float = 0.0


class BuilderBase:
    """Common state and phases of one index-build utility run."""

    mode = "offline"

    def __init__(self, system: "System", table: "Table",
                 specs: Sequence[IndexSpec] | IndexSpec,
                 options: Optional[BuildOptions] = None) -> None:
        self.system = system
        self.table = table
        if isinstance(specs, IndexSpec):
            specs = [specs]
        if not specs:
            raise ValueError("at least one index spec required")
        self.specs = list(specs)
        self.options = options or BuildOptions()
        self.descriptors: list[IndexDescriptor] = []
        self.context: Optional[BuildContext] = None
        self.timings: dict[str, float] = {}
        self.error: Optional[BaseException] = None
        self._sorters: dict[str, RunFormation] = {}
        #: one shared key codec per index (compressed_keys only): PSF
        #: shard sorters and crash-resumed sorters must all agree on the
        #: column layout, so the codec instance is per-index, not
        #: per-sorter
        self._codecs: dict[str, KeyCodec] = {}
        #: codec fault-site bookkeeping (armed sweeps only)
        self._codec_bind_fired: set[str] = set()
        self._codec_spills_seen: dict[str, int] = {}
        #: sorter comparisons already charged to the simulated clock
        self._compare_charged: dict[str, int] = {}
        #: open trace spans by key (see :meth:`_trace_begin`)
        self._trace_spans: dict[str, int] = {}
        #: wal.bytes counter at span begin, for per-phase WAL volume
        self._trace_wal: dict[str, int] = {}
        #: IB admission control: the *system's* bucket, shared by every
        #: process of this build (coordinator, readers, PSF shards) AND
        #: by any concurrent builds -- ``build_rate_limit`` bounds the
        #: aggregate utility rate (K builds each with a private bucket
        #: would admit K times the limit).  None when unthrottled.
        limit = system.config.build_rate_limit
        self._rate_bucket: Optional[TokenBucket] = \
            system.build_bucket(limit) if limit else None
        #: per-build throttle metric names ("+"-joined index names), so
        #: two concurrent throttled builds' charges stay attributable;
        #: the unsuffixed totals remain for existing dashboards/benches
        label = "+".join(spec.name for spec in self.specs)
        self._throttle_charges_metric = f"build.throttle_charges.{label}"
        self._throttle_waits_metric = f"build.throttle_waits.{label}"
        #: live progress handle (see :mod:`repro.obs.progress`); None
        #: unless a tracker is installed as ``metrics.progress`` -- the
        #: same zero-cost-disabled contract as ``metrics.tracer``.
        tracker = system.metrics.progress
        self._progress = tracker.register(self) \
            if tracker is not None else None

    # -- option resolution -------------------------------------------------

    @property
    def prefetch_pages(self) -> int:
        return self.options.prefetch_pages \
            or self.system.config.prefetch_pages

    @property
    def sort_workspace(self) -> int:
        return self.options.sort_workspace \
            or self.system.config.sort_workspace

    @property
    def merge_fanin(self) -> int:
        return self.options.merge_fanin or self.system.config.merge_fanin

    @property
    def ib_batch_keys(self) -> int:
        return self.options.ib_batch_keys \
            or self.system.config.ib_batch_keys

    # -- catalog steps ----------------------------------------------------------

    def _create_descriptors(self) -> None:
        for spec in self.specs:
            descriptor = IndexDescriptor(
                self.system, self.table, spec.name, spec.key_columns,
                unique=spec.unique)
            descriptor.build_mode = self.mode
            descriptor.attach()
            self.descriptors.append(descriptor)
        install_maintenance(self.system, self.table)

    def _install_context(self, **kwargs) -> BuildContext:
        context = BuildContext(mode=self.mode,
                               descriptors=list(self.descriptors), **kwargs)
        self.system.builds[self.table.name] = context
        self.context = context
        return context

    def _remove_context(self) -> None:
        self.system.builds.pop(self.table.name, None)
        self.context = None

    def _mark_available(self) -> None:
        for descriptor in self.descriptors:
            descriptor.state = IndexState.AVAILABLE

    # -- sort plumbing -------------------------------------------------------------

    def _store_name(self, descriptor: IndexDescriptor) -> str:
        return f"sort:{descriptor.name}"

    def _store_for(self, descriptor: IndexDescriptor) -> RunStore:
        name = self._store_name(descriptor)
        store = self.system.run_stores.get(name)
        if store is None:
            store = RunStore(prefix=name)
            self.system.run_stores[name] = store
        return store

    def _codec_for(self, name: str) -> KeyCodec:
        """The per-index key codec (created on first use)."""
        codec = self._codecs.get(name)
        if codec is None:
            codec = KeyCodec()
            self._codecs[name] = codec
        return codec

    def _new_sorter(self, descriptor: IndexDescriptor,
                    workspace: Optional[int] = None,
                    store: Optional[RunStore] = None) -> RunFormation:
        """One run-formation sorter, compressed when the options say so."""
        if store is None:
            store = self._store_for(descriptor)
        size = workspace if workspace is not None else self.sort_workspace
        if self.options.compressed_keys:
            return CompressedRunFormation(
                store, size, self._codec_for(descriptor.name))
        return RunFormation(store, size)

    def _restore_sorter(self, descriptor: IndexDescriptor, manifest: dict,
                        workspace: Optional[int] = None,
                        store: Optional[RunStore] = None,
                        prune: bool = True):
        """Restore one sorter from its checkpoint manifest, threading the
        shared per-index codec through when the build is compressed."""
        if store is None:
            store = self._store_for(descriptor)
        size = workspace if workspace is not None else self.sort_workspace
        codec = self._codec_for(descriptor.name) \
            if self.options.compressed_keys else None
        return RunFormation.restore(store, manifest, size,
                                    prune=prune, codec=codec)

    def _make_sorters(self) -> None:
        for descriptor in self.descriptors:
            self._sorters[descriptor.name] = self._new_sorter(descriptor)

    # -- IB admission control ----------------------------------------------

    def _throttle(self, cost: float):
        """Generator: charge ``cost`` work items against the build's
        rate limit, delaying when the bucket runs dry.

        When unthrottled (the default) this returns before its first
        yield, so ``yield from self._throttle(n)`` adds *nothing* to the
        schedule -- existing golden traces, sweeps, and perf baselines
        are unchanged.  Builders call it at batch boundaries: one call
        per prefetch batch (pages), insert batch, load flush, or drain
        batch (keys / entries).
        """
        bucket = self._rate_bucket
        if bucket is None or cost <= 0:
            return
        self.system.metrics.incr("build.throttle_charges")
        self.system.metrics.incr(self._throttle_charges_metric)
        before = self.system.sim.now
        yield from bucket.acquire(cost)
        waited = self.system.sim.now - before
        if waited > 0:
            self.system.metrics.incr("build.throttle_waits")
            self.system.metrics.incr(self._throttle_waits_metric)
            self.system.metrics.observe("build.throttle_wait_time", waited)

    def _restore_throttle(self, utility_state: dict) -> None:
        """Re-arm the rate limit recorded in a utility checkpoint.

        Belt and braces for resume paths: :func:`repro.recovery.restart`
        reuses the crashed system's config (so the constructor already
        built the bucket), but a caller restarting with an explicit
        config lacking the knob still gets the checkpointed rate back.
        The bucket restarts full -- token levels are volatile state, and
        the simulated clock resets to 0 across restart anyway.
        """
        rate = utility_state.get("build_rate_limit")
        if rate and self._rate_bucket is None:
            self._rate_bucket = self.system.build_bucket(rate)

    def _restore_codec(self, utility_state: dict) -> None:
        """Re-arm compressed-key sorting from a utility checkpoint.

        ``resume()`` classmethods construct the builder with default
        options, so the codec flag (and each index's persisted column
        layout) must be restored before any sorter is rebuilt."""
        if not utility_state.get("codec"):
            return
        self.options.compressed_keys = True
        for name, manifest in (utility_state.get("sort_codecs")
                               or {}).items():
            self._codec_for(name).adopt(manifest)

    # -- the shared data scan (generator) ----------------------------------------------

    def _scan_and_sort(self, start_page: int = 0):
        """Scan the data pages, extract keys, feed the pipelined sort.

        Section 2.3.1: "The last page to be processed by the data page
        scan can be noted before starting IB's data scan so that if there
        are any extensions of the file after IB starts, IB does not have
        to process the new pages."
        """
        table = self.table
        noted_last_page = table.page_count
        checkpoint_every = self.options.checkpoint_every_pages
        page_no = start_page
        pages_since_checkpoint = 0
        metrics = self.system.metrics
        # Hoisted per-record work: the (key extractor, sorter push) pairs
        # never change during the scan, and the per-key fault-point call
        # is skipped wholesale when no injector is installed (the guard
        # equals fault_point's own disabled test, so sweep discovery and
        # armed runs see an unchanged hit schedule).
        extractors = [(d.key_of, self._sorters[d.name].push)
                      for d in self.descriptors]
        fp_enabled = fault_points_enabled(metrics)
        compare_cost = self.options.key_compare_cost
        pages_before = metrics.get("build.pages_scanned")
        self._trace_begin("scan", start_page=start_page)
        while True:
            last_page = self._scan_limit(noted_last_page)
            if page_no >= last_page:
                break
            upto = min(page_no + self.prefetch_pages, last_page)
            batch_ids = [table.page_id(p) for p in range(page_no, upto)]
            yield from self._throttle(len(batch_ids))
            pages = yield from self.system.buffer.fetch_sequential(batch_ids)
            for page in pages:
                yield Acquire(page.latch, SHARE)
                try:
                    records = page.live_records()
                    for rid, record in records:
                        raw = tuple(rid)
                        for key_of, push in extractors:
                            push((key_of(record), raw))
                        if fp_enabled:
                            fault_point(metrics, "build.sort_push")
                    if records:
                        yield Delay(len(records)
                                    * self.options.key_extract_cost)
                    if compare_cost:
                        yield from self._charge_compare_cost(compare_cost)
                    self._after_page_scanned(page)
                finally:
                    page.latch.release(self.system.sim.current)
                self.system.metrics.incr("build.pages_scanned")
                fault_point(self.system.metrics, "build.scan_page")
                if fp_enabled and self._codecs:
                    self._codec_fault_points(metrics)
            pages_since_checkpoint += len(batch_ids)
            page_no = upto
            self._progress_scan(len(batch_ids), last_page)
            if checkpoint_every is not None \
                    and pages_since_checkpoint >= checkpoint_every \
                    and page_no < last_page:
                self._checkpoint_scan(page_no)
                pages_since_checkpoint = 0
        self._trace_end("scan",
                        pages=metrics.get("build.pages_scanned")
                        - pages_before)
        for name, codec in self._codecs.items():
            self._trace_instant("sort.encode", index=name,
                                kinds=codec.kinds, spills=codec.spills,
                                active=codec.active)
        return last_page

    def _scan_and_sort_parallel(self, start_page: int = 0):
        """Parallel variant of the data scan (section 2.2.2, [PMCLS90]).

        The page range splits into contiguous stripes, one reader process
        per stripe; their I/O delays overlap on the simulated clock.
        Pushes into the shared sorters are atomic (simulator semantics),
        so no extra synchronisation is needed.  Periodic scan checkpoints
        are skipped in parallel mode (positions are per-stripe); the
        phase-transition checkpoint still bounds the loss.
        """
        table = self.table
        last_page = table.page_count
        readers = max(1, self.options.parallel_readers)
        stripe = max(1, (last_page - start_page + readers - 1) // readers)
        self._progress_scan(0, last_page)

        extractors = [(d.key_of, self._sorters[d.name].push)
                      for d in self.descriptors]

        def reader_body(first: int, limit: int):
            page_no = first
            while page_no < limit:
                upto = min(page_no + self.prefetch_pages, limit)
                batch_ids = [table.page_id(p)
                             for p in range(page_no, upto)]
                yield from self._throttle(len(batch_ids))
                pages = yield from self.system.buffer.fetch_sequential(
                    batch_ids)
                for page in pages:
                    yield Acquire(page.latch, SHARE)
                    try:
                        records = page.live_records()
                        for rid, record in records:
                            raw = tuple(rid)
                            for key_of, push in extractors:
                                push((key_of(record), raw))
                        if records:
                            yield Delay(len(records)
                                        * self.options.key_extract_cost)
                    finally:
                        page.latch.release(self.system.sim.current)
                    self.system.metrics.incr("build.pages_scanned")
                page_no = upto
                self._progress_scan(len(batch_ids), 0)

        from repro.sim.kernel import Join
        procs = []
        first = start_page
        while first < last_page:
            limit = min(first + stripe, last_page)
            procs.append(self.system.spawn(
                reader_body(first, limit),
                name=f"ib-reader-{len(procs)}"))
            first = limit
        self.system.metrics.incr("build.parallel_readers", len(procs))
        for proc in procs:
            yield Join(proc)
            if proc.error is not None:  # pragma: no cover - reader bug
                raise proc.error
        return last_page

    def _compare_units(self, descriptor: IndexDescriptor,
                       sorter: RunFormation) -> int:
        """Simulated width of one tournament comparison for this sorter:
        1 for codec-encoded ints, each key column plus the two rid fields
        for raw composite tuples."""
        if isinstance(sorter, CompressedRunFormation) and sorter.codec.active:
            return 1
        return len(descriptor.key_columns) + 2

    def _charge_compare_cost(self, cost: float):
        """Generator: charge simulated time for tournament comparisons
        performed since the last charge (``key_compare_cost`` only; the
        default 0.0 never reaches this, keeping historical schedules)."""
        charged = self._compare_charged
        delta = 0.0
        for descriptor in self.descriptors:
            sorter = self._sorters.get(descriptor.name)
            if sorter is None:
                continue
            name = descriptor.name
            done = sorter.comparisons
            delta += (done - charged.get(name, 0)) \
                * self._compare_units(descriptor, sorter)
            charged[name] = done
        if delta:
            yield Delay(delta * cost)

    def _codec_fault_points(self, metrics) -> None:
        """Fire the codec fault sites on state transitions (armed sweeps
        only -- the caller guards on ``fault_points_enabled``)."""
        for name, codec in self._codecs.items():
            if codec.bound and name not in self._codec_bind_fired:
                self._codec_bind_fired.add(name)
                fault_point(metrics, "sort.codec.bind")
            spills = codec.spills
            if spills > self._codec_spills_seen.get(name, 0):
                self._codec_spills_seen[name] = spills
                fault_point(metrics, "sort.codec.spill")

    def _scan_limit(self, noted_last_page: int) -> int:
        """How far the scan goes.

        Default (NSF, offline): the page count noted before the scan
        started -- "IB does not have to process the new pages.
        Transactions would insert directly into the index the keys of
        records belonging to those new pages" (section 2.3.1), which works
        because an NSF index is visible from descriptor creation.

        SF overrides this: its visibility rule means records ahead of
        Current-RID make no side-file entries, so the scan must chase the
        end of file; extensions after the scan ends are covered by
        Current-RID = infinity (section 3.2.2).
        """
        return noted_last_page

    def _after_page_scanned(self, page) -> None:
        """Hook: SF advances Current-RID here, under the page latch."""

    def _checkpoint_scan(self, next_page: int) -> None:
        fault_point(self.system.metrics, "build.scan_checkpoint")
        manifests = {name: sorter.checkpoint(scan_position=next_page)
                     for name, sorter in self._sorters.items()}
        self._write_utility_checkpoint({
            "phase": "scan",
            "next_page": next_page,
            "sort": manifests,
        })
        self.system.metrics.incr("build.scan_checkpoints")

    def _finish_sort(self) -> dict[str, list]:
        fault_point(self.system.metrics, "build.sort_finish")
        return {name: sorter.finish()
                for name, sorter in self._sorters.items()}

    def _final_merger(self, descriptor: IndexDescriptor, runs):
        return final_merger(self._store_for(descriptor), runs,
                            self.merge_fanin)

    # -- WAL checkpoint plumbing -----------------------------------------------------------

    def _write_utility_checkpoint(self, state: dict) -> None:
        # "This checkpointing to stable storage is done after all the
        # dirty pages of the index have been written to disk" (§3.2.4):
        # force each build tree so redo starts from this point.
        fault_point(self.system.metrics, "build.checkpoint.before")
        for descriptor in self.descriptors:
            descriptor.tree.force()
        # The trees' stable snapshots are now *ahead* of the surviving
        # checkpoint until the new one lands -- resume must cut the trees
        # back to the checkpointed high keys (section 3.2.4).
        fault_point(self.system.metrics, "build.checkpoint.mid")
        payload = {
            "builder": self.mode,
            "table": self.table.name,
            "indexes": [d.name for d in self.descriptors],
            "specs": [(s.name, list(s.key_columns), s.unique)
                      for s in self.specs],
        }
        # Persist the admission-control rate so resume re-throttles even
        # if recovery were handed a config without the knob (restart()
        # normally carries crashed.config across, which already has it).
        # Only added when throttled: unthrottled payloads stay unchanged.
        if self._rate_bucket is not None:
            payload["build_rate_limit"] = self._rate_bucket.rate
        # Progress state rides along only when tracking is enabled, the
        # same conditional-key discipline as the rate limit: untracked
        # checkpoint payloads stay byte-identical.
        if self._progress is not None:
            payload["progress"] = self._progress.checkpoint_state()
        # Compressed-key builds persist each index's codec layout so the
        # resumed sorters rebind identically (a resumed scan must not
        # re-derive a different column layout from a different first
        # key).  Conditional keys: codec-off payloads stay unchanged.
        if self.options.compressed_keys:
            payload["codec"] = True
            layouts = {name: codec.to_manifest()
                       for name, codec in self._codecs.items()
                       if codec.bound or codec.disabled}
            if layouts:
                payload["sort_codecs"] = layouts
        payload.update(state)
        if self.context is not None:
            payload["current_rid"] = tuple(self.context.current_rid)
            payload["index_build"] = self.context.index_build
            if self.context.frontier is not None:
                payload["frontier"] = self.context.frontier.to_manifest()
        # Concurrent-build registry: each build parks its latest payload
        # under its table name so one build's checkpoint cannot clobber
        # another's resume state.  The registry rides in the checkpoint
        # record only while *other* builds are live -- single-build
        # checkpoints stay byte-identical to the pre-registry format.
        registry = self.system.utility_states
        if payload.get("phase") == "done":
            registry.pop(self.table.name, None)
        else:
            registry[self.table.name] = payload
        others = any(name != self.table.name for name in registry)
        self.system.log.write_checkpoint(
            _txn_table_snapshot(self.system),
            dict(self.system.buffer.dirty),
            payload,
            utility_states={name: dict(state)
                            for name, state in registry.items()}
            if others else None,
        )
        self.system.metrics.incr("build.utility_checkpoints")
        fault_point(self.system.metrics, "build.checkpoint.after")

    # -- timing helpers -------------------------------------------------------------------------

    def _mark(self, label: str) -> None:
        self.timings[label] = self.system.sim.now

    # -- progress helpers (zero-cost when metrics.progress is None) ----------
    #
    # All of these are pure bookkeeping: no yields, no simulated time, no
    # counters -- enabling tracking cannot perturb the schedule, and the
    # disabled path costs one attribute test (the ``fault_point`` /
    # ``tracer`` contract).

    def _progress_scan(self, advanced: int, total: int) -> None:
        if self._progress is not None:
            self._progress.scan(advanced, total)

    def _progress_units(self, key: str, done: int, total: int) -> None:
        if self._progress is not None:
            self._progress.units(key, done, total)

    def _progress_drain(self, key: str, position: int, total: int) -> None:
        if self._progress is not None:
            self._progress.drain(key, position, total)

    def _progress_phase_done(self, key: str) -> None:
        if self._progress is not None:
            self._progress.phase_done(key)

    def _progress_finish(self) -> None:
        if self._progress is not None:
            self._progress.finish()

    def _restore_progress(self, utility_state: dict) -> None:
        """Adopt the checkpointed progress baseline on resume (companion
        to :meth:`_restore_throttle`): the resumed build reports the
        crashed build's completion floor, never 0%."""
        if self._progress is None:
            return
        state = utility_state.get("progress")
        if state:
            self._progress.restore(state)

    # -- trace helpers (zero-cost when metrics.tracer is None) ----------------------------------

    def _trace_begin(self, name: str, key: Optional[str] = None,
                     parent: Optional[int] = None, **attrs) -> None:
        """Open a phase span named ``name``.

        ``key`` disambiguates concurrent same-name spans (per-shard
        workers); it defaults to ``name``.  Unless ``parent`` is given,
        the span nests under the open ``build`` root span.  The current
        ``wal.bytes`` counter is snapshotted so :meth:`_trace_end` can
        attach the WAL volume appended while the span was open.
        """
        tracer = self.system.metrics.tracer
        if tracer is None:
            return
        key = key or name
        if parent is None and name != "build":
            parent = self._trace_spans.get("build")
        self._trace_wal[key] = self.system.metrics.get("wal.bytes")
        self._trace_spans[key] = tracer.begin_span(name, parent=parent,
                                                   **attrs)

    def _trace_end(self, key: str, **attrs) -> None:
        tracer = self.system.metrics.tracer
        if tracer is None:
            return
        span_id = self._trace_spans.pop(key, None)
        if span_id is None:
            return
        base = self._trace_wal.pop(key, None)
        if base is not None:
            attrs["wal_bytes"] = self.system.metrics.get("wal.bytes") - base
        tracer.end_span(span_id, **attrs)

    def _trace_instant(self, name: str, **attrs) -> None:
        tracer = self.system.metrics.tracer
        if tracer is not None:
            tracer.instant(name, **attrs)

    def _trace_gauge(self, name: str, value, **attrs) -> None:
        tracer = self.system.metrics.tracer
        if tracer is not None:
            tracer.gauge(name, value, **attrs)

    def _trace_span_id(self, key: str) -> Optional[int]:
        return self._trace_spans.get(key)


def _txn_table_snapshot(system: "System") -> dict:
    """The transaction table recorded in a fuzzy checkpoint."""
    table = {}
    for txn_id, txn in system.txns.active.items():
        table[txn_id] = {
            "first_lsn": txn.first_lsn,
            "last_lsn": txn.last_lsn,
            "committed": False,
        }
    return table
