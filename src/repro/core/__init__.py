"""The paper's contribution: online index build (NSF and SF).

Public entry points:

* :class:`NSFIndexBuilder` -- algorithm NSF (section 2);
* :class:`SFIndexBuilder` -- algorithm SF (section 3);
* :class:`OfflineIndexBuilder` -- the quiesced baseline;
* :class:`RebuildIndexBuilder` -- drop + rebuild an existing index from
  its sealed sorted runs without rescanning the table (via
  :meth:`repro.system.System.rebuild_index`);
* :func:`resume_build` -- restart an interrupted build after recovery;
* :func:`cleanup_pseudo_deleted` -- background GC (section 2.2.4);
* :func:`cancel_build` -- drop an in-progress build (section 2.3.2).
"""

from typing import Optional, TYPE_CHECKING

from repro.core.base import BuilderBase, BuildOptions, IndexSpec
from repro.core.cancel import cancel_build
from repro.core.cleanup import cleanup_pseudo_deleted
from repro.core.descriptor import IndexDescriptor, IndexState
from repro.core.maintenance import (
    BuildContext,
    IndexMaintenance,
    MULTI_MODE,
    NSF_MODE,
    OFFLINE_MODE,
    PSF_MODE,
    REBUILD_MODE,
    SF_LIKE_MODES,
    SF_MODE,
    install_maintenance,
)
from repro.core.nsf import NSFIndexBuilder, nsf_pre_undo
from repro.core.offline import OfflineIndexBuilder
from repro.core.sf import SFIndexBuilder, sf_pre_undo

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

BUILDERS = {
    "nsf": NSFIndexBuilder,
    "sf": SFIndexBuilder,
    "offline": OfflineIndexBuilder,
}

#: builders resumable from a utility checkpoint
RESUMABLE_MODES = ("nsf", "sf", "psf", "multi", "rebuild")


def get_builder(mode: str):
    """Builder class for ``mode``, including the lazily imported ones.

    ``repro.parallel`` / ``repro.multibuild`` import ``repro.core``;
    resolving "psf" and "multi" lazily here (instead of registering them
    in :data:`BUILDERS` at import time) keeps the dependency
    one-directional.
    """
    if mode == "psf":
        from repro.parallel import ParallelSFBuilder
        return ParallelSFBuilder
    if mode == "multi":
        from repro.multibuild import MultiIndexBuilder
        return MultiIndexBuilder
    if mode == "rebuild":
        from repro.core.rebuild import RebuildIndexBuilder
        return RebuildIndexBuilder
    return BUILDERS[mode]


def _dispatch_pre_undo(system: "System", utility_state: dict) -> None:
    builder = utility_state.get("builder")
    if builder == "sf":
        sf_pre_undo(system, utility_state)
    elif builder == "nsf":
        nsf_pre_undo(system, utility_state)
    elif builder == "psf":
        from repro.parallel import psf_pre_undo
        psf_pre_undo(system, utility_state)
    elif builder == "multi":
        from repro.multibuild import multi_pre_undo
        multi_pre_undo(system, utility_state)
    elif builder == "rebuild":
        from repro.core.rebuild import rebuild_pre_undo
        rebuild_pre_undo(system, utility_state)


def build_pre_undo(system: "System", utility_state: dict) -> None:
    """Recovery hook reinstalling build context before the undo pass.

    Pass this as ``pre_undo`` to :func:`repro.recovery.restart.restart`
    whenever an index build might have been interrupted.  When the
    surviving checkpoint recorded several concurrent builds
    (``system.utility_states``, one entry per table), every one of them
    gets its context back -- Figure 2's visibility classification must
    hold for losers touching any of the tables.
    """
    states = list(getattr(system, "utility_states", {}).values()) \
        or [utility_state]
    for state in states:
        _dispatch_pre_undo(system, state)


def resume_build(system: "System", utility_state: dict
                 ) -> Optional[BuilderBase]:
    """Reconstruct the interrupted builder from a utility checkpoint.

    Returns None when no build was in progress (or it had finished).
    Spawn the returned builder's ``run()`` to continue the build.
    """
    mode = utility_state.get("builder")
    if mode not in RESUMABLE_MODES:
        return None
    if utility_state.get("phase") == "done":
        return None
    builder_cls = get_builder(mode)
    return builder_cls.resume(system, utility_state)


def resume_builds(system: "System",
                  utility_state: Optional[dict] = None) -> list:
    """Resume every interrupted build the latest checkpoint recorded.

    Concurrent builds (one per table) each checkpoint their own payload;
    :func:`repro.recovery.restart.restart` collects the whole registry
    into ``system.utility_states``.  Returns the resumed builders in
    table-name order (spawn each one's ``run()``).  Falls back to the
    single ``utility_state`` for pre-registry checkpoints.
    """
    states = dict(getattr(system, "utility_states", {}) or {})
    if not states and utility_state:
        name = utility_state.get("table")
        if name:
            states[name] = utility_state
    builders = []
    for name in sorted(states):
        builder = resume_build(system, states[name])
        if builder is not None:
            builders.append(builder)
    return builders


__all__ = [
    "BUILDERS",
    "BuildContext",
    "BuildOptions",
    "BuilderBase",
    "IndexDescriptor",
    "IndexMaintenance",
    "IndexSpec",
    "IndexState",
    "MULTI_MODE",
    "NSFIndexBuilder",
    "NSF_MODE",
    "OFFLINE_MODE",
    "OfflineIndexBuilder",
    "PSF_MODE",
    "REBUILD_MODE",
    "RESUMABLE_MODES",
    "SFIndexBuilder",
    "SF_LIKE_MODES",
    "SF_MODE",
    "build_pre_undo",
    "get_builder",
    "cancel_build",
    "cleanup_pseudo_deleted",
    "install_maintenance",
    "resume_build",
    "resume_builds",
]
