"""Transaction-side index maintenance during online index builds.

This module is the transliteration of the paper's Figure 1 (index updates
by transactions during forward processing in SF) and Figure 2 (during
rollback), generalised to also cover NSF and completed indexes:

* a **completed** index (state AVAILABLE) is always visible and is updated
  directly with normal-processing semantics (next-key locking on physical
  deletes, etc.);
* an index being built by **NSF** is visible from descriptor creation
  onward; transactions insert and delete its keys directly in the tree
  with the tombstone/duplicate rules of section 2.2.3
  (``during_build=True``);
* an index being built by **SF** is visible to an operation iff
  ``Target-RID < Current-RID`` (the builder's scan position); visible
  operations append ``<operation, key>`` to the side-file, invisible ones
  ignore the index completely (Figure 1);
* on **rollback**, the count of visible indexes recorded in the data-page
  log record is compared with the current count; for indexes that became
  visible in between, the undo appends a compensating side-file entry
  (build still running) or performs a logical tree undo (build finished)
  -- Figure 2, including the "difference greater than one" scenario of
  section 3.2.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, TYPE_CHECKING

from repro.sidefile import DELETE, INSERT, SideFile
from repro.storage.rid import INFINITY_RID, RID
from repro.wal.records import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.descriptor import IndexDescriptor
    from repro.storage.page import Record
    from repro.storage.table import Table
    from repro.system import System
    from repro.txn.transaction import Transaction

NSF_MODE = "nsf"
SF_MODE = "sf"
PSF_MODE = "psf"
MULTI_MODE = "multi"
OFFLINE_MODE = "offline"
REBUILD_MODE = "rebuild"

#: Modes that route maintenance through a side-file.  PSF (the partitioned
#: parallel build, :mod:`repro.parallel`) is SF with a frontier *vector*
#: instead of a single Current-RID; MULTI (:mod:`repro.multibuild`) is SF
#: building K indexes from the one scan (section 6.2), each with its own
#: side-file and flag flip; the Figure 1 / Figure 2 logic is otherwise
#: identical.  REBUILD (:mod:`repro.core.rebuild`) reconstructs a dropped
#: tree from sealed sorted runs without rescanning the table; while the
#: new tree loads, concurrent maintenance routes through a side-file
#: exactly as in SF with Current-RID at infinity (every record counts as
#: "scanned" -- the sealed runs already cover the whole table).
SF_LIKE_MODES = (SF_MODE, PSF_MODE, MULTI_MODE, REBUILD_MODE)


@dataclass
class OpSnapshot:
    """One record operation's visibility decision, taken under the latch.

    ``count`` is logged in the data-page log record (section 3.1);
    ``direct`` lists the tree updates to apply once the latch is dropped;
    ``sf_routed`` names the indexes whose maintenance went to a side-file
    (also logged -- rollback needs it to choose between a reverse
    side-file entry and a logical tree undo; the paper's Figure 2 leaves
    this bookkeeping implicit in "the record management component has to
    be aware whether IB is active").  Side-file appends already happened,
    atomically with the decision.
    """

    count: int
    direct: list = field(default_factory=list)
    sf_routed: list = field(default_factory=list)


@dataclass
class BuildContext:
    """State of one in-progress build shared with the maintenance hook.

    One context covers all indexes being built in a single data scan
    (section 6.2 allows several); they share the scan position.
    """

    mode: str
    descriptors: list = field(default_factory=list)
    #: SF's Current-RID: records with RID strictly below it have been
    #: scanned.  Starts at RID(0, 0) ("nothing scanned"), goes to
    #: INFINITY_RID when the scan finishes (section 3.2.2).
    current_rid: RID = RID(0, 0)
    #: SF's Index_Build flag (section 3.2.1)
    index_build: bool = True
    #: PSF's per-partition frontier vector (one Current-RID per shard,
    #: :class:`repro.sidefile.ScanFrontier`).  ``None`` for serial builds.
    frontier: Optional[object] = None

    def covers(self, descriptor: "IndexDescriptor") -> bool:
        return descriptor in self.descriptors

    def scanned(self, rid: RID) -> bool:
        """Generalized ``Target-RID < Current-RID`` test (section 3.1).

        With a frontier vector installed, the record is scanned iff it is
        behind the frontier of the shard owning its page; otherwise the
        paper's single-scan comparison applies.
        """
        if self.frontier is not None:
            return self.frontier.scanned(rid)
        return rid < self.current_rid


class IndexMaintenance:
    """Per-table hook invoked by the record manager (Figure 1 / Figure 2)."""

    def __init__(self, system: "System", table: "Table") -> None:
        self.system = system
        self.table = table

    # -- visibility (Figure 1's IF ladder) ---------------------------------

    def _context(self) -> Optional[BuildContext]:
        return self.system.builds.get(self.table.name)

    def _is_visible(self, descriptor: "IndexDescriptor", rid: RID,
                    context: Optional[BuildContext]) -> bool:
        from repro.core.descriptor import IndexState
        if descriptor.state is IndexState.AVAILABLE:
            return True
        if descriptor.state is IndexState.CANCELLED:
            return False
        if context is not None and context.covers(descriptor):
            if context.mode == NSF_MODE:
                return True  # visible since descriptor creation (§2.2.1)
            if context.mode in SF_LIKE_MODES:
                return context.scanned(rid)  # §3.1, frontier-generalized
            return False  # offline: never maintained by transactions
        # BUILDING descriptor with no live context (builder crashed, not
        # yet resumed).  NSF indexes stay visible -- their maintenance
        # needs no builder.  SF indexes are handled by the resumed
        # context; without one, treat as invisible (the resume hook
        # reinstalls the context before any transaction runs).
        return getattr(descriptor, "build_mode", None) == NSF_MODE

    def visible_count(self, txn: "Transaction", rid: RID) -> int:
        """The count logged with every data-page record (section 3.1)."""
        context = self._context()
        return sum(1 for d in self.table.indexes
                   if self._is_visible(d, rid, context))

    def _visible_descriptors(self, rid: RID):
        context = self._context()
        return [d for d in self.table.indexes
                if self._is_visible(d, rid, context)], context

    # -- forward processing (Figure 1) ------------------------------------------
    #
    # The record manager calls ``prepare_*`` while still holding the data
    # page's X latch: the visibility decision, the logged count, and any
    # side-file appends happen in one atomic step -- so IB's drain-
    # completion test ("position == end of side-file", section 3.2.5)
    # can never race with an append whose visibility decision predated
    # the flip.  Direct tree updates (which latch index pages) are
    # returned as work items and applied after the data latch is dropped,
    # matching the paper's latch-ordering rule (section 1.2).

    def prepare_insert(self, txn: "Transaction", rid: RID,
                       record: "Record") -> "OpSnapshot":
        return self._prepare(txn, rid, [(INSERT, record)])

    def prepare_delete(self, txn: "Transaction", rid: RID,
                       record: "Record") -> "OpSnapshot":
        return self._prepare(txn, rid, [(DELETE, record)])

    def prepare_update(self, txn: "Transaction", rid: RID,
                       old_record: "Record",
                       new_record: "Record") -> "OpSnapshot":
        return self._prepare(txn, rid, [(DELETE, old_record),
                                        (INSERT, new_record)],
                             is_update=True)

    def _prepare(self, txn: "Transaction", rid: RID,
                 changes: list, is_update: bool = False) -> "OpSnapshot":
        from repro.core.descriptor import IndexState
        visible, context = self._visible_descriptors(rid)
        snapshot = OpSnapshot(count=len(visible))
        for descriptor in visible:
            keyed = [(op, descriptor.key_of(record))
                     for op, record in changes]
            if is_update and keyed[0][1] == keyed[1][1]:
                continue  # key columns unchanged; index untouched
            in_sf_build = (descriptor.state is not IndexState.AVAILABLE
                           and context is not None
                           and context.covers(descriptor)
                           and context.mode in SF_LIKE_MODES)
            if in_sf_build:
                snapshot.sf_routed.append(descriptor.name)
            for operation, key in keyed:
                if in_sf_build:
                    sidefile = self.system.sidefiles[descriptor.name]
                    sidefile.append_sync(txn, operation, key, rid)
                    self._count_shard_append(context, rid)
                else:
                    snapshot.direct.append(
                        (descriptor, operation, key, rid))
        return snapshot

    def _count_shard_append(self, context: "BuildContext",
                            rid: RID) -> None:
        """Attribute a side-file append to the shard owning its page."""
        if context.frontier is not None:
            shard = context.frontier.shard_of(rid.page_no)
            self.system.metrics.incr(f"psf.sidefile_appends.{shard}")

    def apply_direct(self, txn: "Transaction", snapshot: "OpSnapshot"):
        """Generator: perform the deferred direct tree updates."""
        from repro.core.descriptor import IndexState
        for descriptor, operation, key, rid in snapshot.direct:
            during_build = descriptor.state is not IndexState.AVAILABLE
            if operation == INSERT:
                yield from descriptor.tree.txn_insert_key(
                    txn, key, rid, during_build=during_build)
            else:
                yield from descriptor.tree.txn_delete_key(
                    txn, key, rid, during_build=during_build)

    # -- rollback (Figure 2) -------------------------------------------------------

    def on_undo(self, txn: "Transaction", log_record: LogRecord,
                action: str, rid: RID,
                old_record: Optional["Record"],
                new_record: Optional["Record"]):
        """Compensate index effects for indexes that became visible
        between forward processing and rollback.

        ``old_record``/``new_record`` are the record states before/after
        the undo.  Indexes visible at forward-processing time logged
        their own key operations and are handled by the normal undo
        chain; only the *newly visible* suffix of the index list needs
        action here (visibility only grows, footnote 6).
        """
        logged_count = log_record.info.get("visible_count", 0)
        sf_routed = set(log_record.info.get("sf_routed", ()))
        context = self._context()
        current_visible = [d for d in self.table.indexes
                           if self._is_visible(d, rid, context)]
        for position, descriptor in enumerate(current_visible):
            if descriptor.name in sf_routed:
                # Forward processing covered this index via the side-file
                # (redo-only appends); the undo chain has nothing for it,
                # so compensate here: a reverse side-file entry while the
                # build runs, a logical tree undo once it completed.
                pass
            elif position < logged_count:
                # Covered directly at forward time: the transaction's own
                # key-operation log records handle the undo.
                continue
            # Newly visible (Figure 2's count comparison) or side-file
            # routed: compensate now.
            yield from self._compensate(txn, descriptor, context, action,
                                        rid, old_record, new_record)
            self.system.metrics.incr("maintenance.figure2_compensations")

    def _compensate(self, txn: "Transaction",
                    descriptor: "IndexDescriptor",
                    context: Optional[BuildContext], action: str,
                    rid: RID, old_record, new_record):
        """One index's compensation: side-file entry while the build is
        incomplete, logical tree undo once it finished (Figure 2)."""
        changes: list[tuple[str, tuple]] = []
        if action == "insert":          # undone insert: key must leave
            changes.append((DELETE, descriptor.key_of(old_record)))
        elif action == "delete":        # undone delete: key must return
            changes.append((INSERT, descriptor.key_of(new_record)))
        else:                           # undone update
            before_key = descriptor.key_of(old_record)
            after_key = descriptor.key_of(new_record)
            if before_key != after_key:
                changes.append((DELETE, before_key))
                changes.append((INSERT, after_key))
        from repro.core.descriptor import IndexState
        in_sf_build = (descriptor.state is not IndexState.AVAILABLE
                       and context is not None
                       and context.covers(descriptor)
                       and context.mode in SF_LIKE_MODES)
        for operation, key in changes:
            if in_sf_build:
                sidefile = self.system.sidefiles[descriptor.name]
                sidefile.append_during_undo(txn, operation, key, rid)
                self._count_shard_append(context, rid)
            else:
                # Completed build: logical undo by traversing the tree.
                tree = descriptor.tree
                tree_action = ("pseudo_delete" if operation == DELETE
                               else "insert")
                tree.apply_logical(tree_action, key, rid)
                self.system.log.append(
                    txn.txn_id, RecordKind.COMPENSATION,
                    redo=("index.apply", {"index": descriptor.name,
                                          "action": tree_action,
                                          "key_value": key,
                                          "rid": tuple(rid)}),
                    info={"index": descriptor.name,
                          "reason": "figure2-logical-undo"},
                )
                self.system.metrics.incr("maintenance.logical_tree_undos")
        return
        yield  # pragma: no cover - generator shape


def install_maintenance(system: "System", table: "Table") -> IndexMaintenance:
    """Ensure the table's maintenance hook is the real one."""
    if not isinstance(table.maintenance, IndexMaintenance):
        table.maintenance = IndexMaintenance(system, table)
    return table.maintenance
