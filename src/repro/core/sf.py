"""Algorithm SF: bottom-up index build with a side-file (section 3).

Timeline (section 3.2):

1. **Descriptor creation without any quiesce** -- the descriptor is
   appended to the table's index list while updaters run; IB sets the
   ``Index_Build`` flag (section 3.2.1).
2. **Scan and pipelined restartable sort**; IB maintains ``Current-RID``
   as it finishes each page (under the page latch, which is why
   Current-RID and Target-RID can never be equal, section 3.1).
   Transactions touching records *behind* the scan append
   ``<operation, key>`` entries to the side-file; ahead of the scan they
   ignore the new index entirely (Figure 1).  When the scan finishes,
   Current-RID becomes infinity so later file extensions also reach the
   side-file (section 3.2.2).
3. **Bottom-up bulk load**, unlogged, pipelined from the final merge pass;
   checkpoints force the tree's dirty pages and record the merge counters
   plus the highest key (section 3.2.4).
4. **Side-file drain**: IB applies the entries in order, writing undo-redo
   log records and checkpointing its position; transactions may still be
   appending.  After the last entry, IB atomically resets the flag and the
   index becomes directly maintained (section 3.2.5).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.btree.loader import BulkLoader
from repro.core.base import BuilderBase, IndexSpec
from repro.core.descriptor import IndexState
from repro.core.drain import SideFileDrainer
from repro.core.maintenance import BuildContext, SF_MODE, install_maintenance
from repro.faultinject.sites import fault_point
from repro.sidefile import SideFile, register_sidefile_operations
from repro.sim.kernel import Delay
from repro.sort import (
    RestartableMerger,
    RunFormation,
    RunStore,
    run_sequence,
)
from repro.storage.rid import INFINITY_RID, RID

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


class SFIndexBuilder(SideFileDrainer, BuilderBase):
    """Side-File online index builder."""

    mode = SF_MODE

    def __init__(self, system, table, specs, options=None):
        super().__init__(system, table, specs, options)
        self._resume_state: Optional[dict] = None
        #: loaders prepared by resume for trees cut back to a checkpoint
        self._resume_loaders: dict[str, BulkLoader] = {}
        #: descriptors recovering from a torn stable snapshot (section 6)
        self._torn_recover: set[str] = set()

    # -- main process ------------------------------------------------------

    def run(self):
        """Generator process body: build all requested indexes online."""
        self._mark("start")
        self._trace_begin("build", mode=self.mode, table=self.table.name,
                          indexes=[s.name for s in self.specs],
                          resumed=self._resume_state is not None)
        if self._resume_state is None:
            self._descriptor_phase()
            self._make_sorters()
            phase = "scan"
            scan_start = 0
            loaded: list[str] = []
            drained: list[str] = []
            mergers: dict[str, RestartableMerger] = {}
            drain_positions: dict[str, int] = {}
        else:
            (phase, scan_start, loaded, drained, mergers,
             drain_positions) = self._prepare_resume()

        if phase == "scan":
            yield from self._scan_and_sort(start_page=scan_start)
            # Section 3.2.2: Current-RID := infinity when the scan is done,
            # so subsequent file extensions still reach the side-file.
            self.context.current_rid = INFINITY_RID
            runs_by_index = self._finish_sort()
            self._mark("scan_done")
            self._progress_phase_done("scan")
            fault_point(self.system.metrics, "sf.scan_done")
            # Transition checkpoint: a crash from here resumes by
            # rebuilding the merge from the forced, closed runs.
            self._write_utility_checkpoint({
                "phase": "load-start", "loaded_indexes": []})
            mergers = {
                d.name: self._final_merger(d, runs_by_index[d.name])
                for d in self.descriptors}
            phase = "load"

        yield from self._load_and_drain(phase, loaded, drained, mergers,
                                        drain_positions)

        self._remove_context()
        self._write_utility_checkpoint({"phase": "done"})
        self._mark("done")
        self._progress_finish()
        self._trace_end("build")
        return self.descriptors

    def _load_and_drain(self, phase, loaded, drained, mergers,
                        drain_positions):
        """Phases 3 and 4 (shared with the parallel builder): bottom-up
        bulk load per index, then the logged side-file drain + flip."""
        if phase in ("load", "load-start"):
            for descriptor in self.descriptors:
                if descriptor.name in loaded:
                    continue
                yield from self._load_phase(
                    descriptor, mergers.get(descriptor.name), loaded,
                    loader=self._resume_loaders.pop(descriptor.name, None))
                if descriptor.name in self._torn_recover:
                    self._torn_recover.discard(descriptor.name)
                    self._replay_index_log(descriptor)
                loaded.append(descriptor.name)
                self._write_utility_checkpoint({
                    "phase": "load-start",
                    "loaded_indexes": list(loaded)})
                # Seal only after the checkpoint above: it is the first
                # one that no longer references the merge, so moving the
                # merger's output run out of the sort store can no
                # longer strand a mid-load merge manifest (a crash
                # before the seal simply skips it -- the previous sealed
                # generation, if any, stays valid).
                self._seal_sorted_runs(
                    descriptor, mergers.get(descriptor.name))
            self._mark("load_done")

        for descriptor in self.descriptors:
            if descriptor.name in drained:
                continue
            start = drain_positions.get(descriptor.name, 0)
            self.system.sidefiles[descriptor.name].force()
            self._write_utility_checkpoint({
                "phase": "drain", "index": descriptor.name,
                "position": start,
                "loaded_indexes": [d.name for d in self.descriptors],
                "drained_indexes": list(drained)})
            fault_point(self.system.metrics, "sf.drain_start")
            yield from self._drain_phase(descriptor, start, loaded, drained)
            drained.append(descriptor.name)

    # -- phase 1: descriptor without quiesce --------------------------------------

    def _descriptor_phase(self) -> None:
        """No lock, no waiting: SF's headline availability property
        (section 3.2.1: "without quiescing (update) transactions")."""
        self._create_descriptors()
        register_sidefile_operations(self.system)
        for descriptor in self.descriptors:
            sidefile = SideFile(self.system, descriptor.name)
            self.system.sidefiles[descriptor.name] = sidefile
        self._install_context(current_rid=RID(0, 0), index_build=True)
        self.system.metrics.observe("build.quiesce_wait", 0.0)
        self.system.metrics.observe("build.quiesce_hold", 0.0)
        # Initial checkpoint: a crash before the first periodic scan
        # checkpoint resumes from page zero instead of orphaning the
        # descriptor.
        self._write_utility_checkpoint({
            "phase": "scan", "next_page": 0, "sort": {}})
        self._mark("descriptor_done")
        fault_point(self.system.metrics, "sf.descriptor_done")

    # -- phase 2 hooks: scan limit and Current-RID maintenance ---------------------------

    def _scan_limit(self, noted_last_page: int) -> int:
        """SF chases the end of file: records inserted ahead of
        Current-RID made no side-file entries and must be scanned."""
        return self.table.page_count

    def _after_page_scanned(self, page) -> None:
        """Advance Current-RID past this page, still under its latch.

        Page granularity keeps Target-RID != Current-RID guaranteed by the
        latch protocol (section 3.1)."""
        if self.context is not None:
            self.context.current_rid = RID(page.page_id.page_no + 1, 0)

    # -- phase 3: bottom-up bulk load ------------------------------------------------------

    def _load_phase(self, descriptor, merger: Optional[RestartableMerger],
                    loaded: list, loader: Optional[BulkLoader] = None):
        tree = descriptor.tree
        self._trace_begin("load", key=f"load:{descriptor.name}",
                          index=descriptor.name)
        keys_loaded = 0
        # Keys awaiting load = what the (post-merge-pass) run store holds;
        # resumed loads see only the remaining runs, which is still the
        # right denominator for *this* phase's completion fraction.
        keys_total = self._store_for(descriptor).total_keys() \
            if self._progress is not None else 0
        if loader is None:
            # resume() degrades to a fresh loader on an empty tree, and
            # continues after the checkpointed right-most path otherwise
            # (section 3.2.4).
            loader = BulkLoader.resume(
                tree, fill_free_fraction=self.options.fill_free_fraction)
        checkpoint_every = self.options.checkpoint_every_keys
        since_checkpoint = 0
        since_yield = 0
        codec = self._codecs.get(descriptor.name)
        decode = codec.decode if codec is not None and codec.active else None
        compare_cost = self.options.key_compare_cost
        compare_units = 1 if decode is not None \
            else len(descriptor.key_columns) + 2
        merge_charged = 0
        append = loader.append
        key_cost = self.system.config.bulk_load_key_cost
        # The merged keys are pulled in batches (pop_many inlines the
        # tournament's fixup) but the yield and checkpoint cadence is
        # key-exact: each batch is capped at the earlier of the next
        # 64-key yield boundary and the next checkpoint boundary, so the
        # simulated schedule is identical to the historical per-key loop.
        while merger is not None:
            take = 64 - since_yield
            if checkpoint_every:
                slack = checkpoint_every - since_checkpoint
                if 0 < slack < take:
                    take = slack
            batch = merger.pop_many(take)
            if not batch:
                break
            if decode is not None:
                for encoded in batch:
                    key_value, raw = decode(encoded)
                    append(key_value, RID(*raw))
            else:
                for key in batch:
                    append(key[0], RID(*key[1]))
            produced = len(batch)
            keys_loaded += produced
            since_checkpoint += produced
            since_yield += produced
            if since_yield >= 64:
                yield from self._throttle(since_yield)
                yield Delay(since_yield * key_cost)
                if compare_cost:
                    done = merger._tree.comparisons
                    charge = (done - merge_charged) * compare_units
                    merge_charged = done
                    if charge:
                        yield Delay(charge * compare_cost)
                since_yield = 0
                self._progress_units(f"load:{descriptor.name}",
                                     keys_loaded, keys_total)
                fault_point(self.system.metrics, "sf.load_batch")
            if checkpoint_every and since_checkpoint >= checkpoint_every:
                # Atomic trio: force tree, checkpoint merge counters,
                # write the WAL checkpoint (section 3.2.4).
                manifest = merger.checkpoint()
                self._write_utility_checkpoint({
                    "phase": "load",
                    "index": descriptor.name,
                    "merge": manifest,
                    "highest_key": loader.highest_key,
                    "loaded_indexes": list(loaded),
                })
                since_checkpoint = 0
                self.system.metrics.incr("build.load_checkpoints")
        if since_yield:
            yield from self._throttle(since_yield)
            yield Delay(since_yield * self.system.config.bulk_load_key_cost)
            if compare_cost and merger is not None:
                done = merger._tree.comparisons
                charge = (done - merge_charged) * compare_units
                merge_charged = done
                if charge:
                    yield Delay(charge * compare_cost)
        loader.finish()
        tree.force()
        self._progress_phase_done(f"load:{descriptor.name}")
        self._trace_end(f"load:{descriptor.name}", keys=keys_loaded)
        self._mark(f"load_done:{descriptor.name}")
        fault_point(self.system.metrics, "sf.load_done")

    def _seal_sorted_runs(self, descriptor, merger) -> None:
        """Seal the final merge output for fast index reconstruction.

        The fully merged, forced run holds every key the bulk load just
        consumed, in order -- exactly what a drop+rebuild would otherwise
        re-derive by scanning and re-sorting the whole table.  Park it in
        the per-index ``sealed:`` store and record a manifest so
        :meth:`repro.system.System.rebuild_index` can reuse it with zero
        table-page reads (experiment E25).
        """
        system = self.system
        sealed_name = f"sealed:{descriptor.name}"
        sealed = system.run_stores.get(sealed_name)
        if sealed is None:
            sealed = RunStore(prefix=sealed_name)
            system.run_stores[sealed_name] = sealed
        runs: list[str] = []
        lengths: dict[str, int] = {}
        if merger is not None:
            output = merger.output
            output.closed = True
            output.force()
            # MOVE the output out of the build's run store: left closed
            # there, the torn-snapshot fallback (which re-merges every
            # closed run in the store) would merge the output *and* its
            # inputs, doubling every key.
            self._store_for(descriptor).discard(output.name)
            sealed.runs[output.name] = output
            runs = [output.name]
            lengths[output.name] = len(output)
        # Drop any previously sealed generation (and, for a rebuild, the
        # inputs it just consumed): one sealed run per index.
        sealed.keep_only(runs)
        codec = self._codecs.get(descriptor.name)
        system.sealed_runs[descriptor.name] = {
            "index": descriptor.name,
            "table": self.table.name,
            "key_columns": list(descriptor.key_columns),
            "unique": descriptor.unique,
            "runs": runs,
            "lengths": lengths,
            "codec": codec.to_manifest() if codec is not None else None,
        }
        system.metrics.incr("rebuild.runs_sealed", len(runs))
        self._trace_instant("rebuild.seal", index=descriptor.name,
                            runs=list(runs))
        fault_point(system.metrics, "rebuild.sealed")

    # -- phase 4: side-file drain --------------------------------------------
    #
    # ``_drain_phase`` / ``_drain_sorted_chunk`` live in the shared
    # :class:`repro.core.drain.SideFileDrainer` mixin so the parallel
    # builder reuses the identical drain + atomic flag flip.

    # -- restart (section 3.2.4 / 3.2.5) ------------------------------------------------------

    @classmethod
    def resume(cls, system: "System", utility_state: dict
               ) -> "SFIndexBuilder":
        table = system.tables[utility_state["table"]]
        specs = [IndexSpec(name, tuple(cols), unique)
                 for name, cols, unique in utility_state["specs"]]
        builder = cls(system, table, specs)
        builder.descriptors = [system.indexes[name]
                               for name in utility_state["indexes"]]
        register_sidefile_operations(system)
        install_maintenance(system, table)
        context = system.builds.get(table.name)
        if context is None:
            context = sf_pre_undo(system, utility_state) \
                or BuildContext(mode=SF_MODE,
                                descriptors=list(builder.descriptors))
            system.builds[table.name] = context
        builder.context = context
        builder._resume_state = utility_state
        builder._restore_throttle(utility_state)
        builder._restore_progress(utility_state)
        builder._restore_codec(utility_state)
        return builder

    def _prepare_resume(self):
        state = self._resume_state
        phase = state.get("phase", "scan")
        loaded = list(state.get("loaded_indexes", []))
        drained = list(state.get("drained_indexes", []))
        mergers: dict[str, RestartableMerger] = {}
        drain_positions: dict[str, int] = {}
        if phase == "scan":
            # A torn snapshot during the scan phase lost only an empty
            # tree image; normalize the shell so the load starts clean.
            for descriptor in self.descriptors:
                if descriptor.tree.media_damaged:
                    self._reset_tree(descriptor.tree)
            scan_start = state.get("next_page", 0)
            manifests = state.get("sort", {})
            for descriptor in self.descriptors:
                manifest = manifests.get(descriptor.name)
                if manifest is not None:
                    sorter, _pos = self._restore_sorter(descriptor, manifest)
                else:
                    sorter = self._new_sorter(descriptor)
                self._sorters[descriptor.name] = sorter
            self.system.metrics.incr("build.resumes.scan")
            return phase, scan_start, loaded, drained, mergers, \
                drain_positions
        self.context.current_rid = INFINITY_RID
        if phase == "done":
            return "done", 0, [d.name for d in self.descriptors], \
                [d.name for d in self.descriptors], mergers, drain_positions

        checkpoint_name = state.get("index") if phase == "load" else None
        if phase == "drain":
            loaded = [d.name for d in self.descriptors]
            drain_positions[state["index"]] = state.get("position", 0)

        # Section 6 fallback: a torn stable snapshot means nothing of the
        # tree survived, and an SF build cannot be redone from the log
        # (the bulk load is unlogged).  Pull the descriptor back into the
        # load phase: rebuild from the forced, closed sort runs, replay
        # the logged maintenance, then re-drain the side-file.
        for descriptor in self.descriptors:
            if not descriptor.tree.media_damaged:
                continue
            name = descriptor.name
            # If the Index_Build flag had already been reset, the
            # side-file was fully drained and later changes went straight
            # to the index (they exist only as log records); skip
            # re-draining that frozen prefix or it would clobber the
            # replayed direct maintenance.
            flipped = descriptor.state is IndexState.AVAILABLE
            sidefile = self.system.sidefiles.get(name)
            drain_positions[name] = (len(sidefile.entries)
                                     if flipped and sidefile is not None
                                     else 0)
            self._reset_tree(descriptor.tree)
            descriptor.state = IndexState.BUILDING
            if self.context is not None \
                    and descriptor not in self.context.descriptors:
                self.context.descriptors.append(descriptor)
            if name in loaded:
                loaded.remove(name)
            if name in drained:
                drained.remove(name)
            if name == checkpoint_name:
                checkpoint_name = None
            self._torn_recover.add(name)
            self.system.metrics.incr("build.resumes.torn_fallback")

        if checkpoint_name is not None:
            store = self._store_for(self.system.indexes[checkpoint_name])
            mergers[checkpoint_name] = RestartableMerger.restore(
                store, state["merge"])
            # The tree may hold keys above the checkpoint (its snapshot
            # was forced before the checkpoint record that never landed);
            # "the index pages can be reset in such a way that the keys
            # higher than the checkpointed key disappear" (section 3.2.4).
            self._align_tree_with_checkpoint(
                self.system.indexes[checkpoint_name],
                state.get("highest_key"))
        for descriptor in self.descriptors:
            if descriptor.name in loaded \
                    or descriptor.name == checkpoint_name:
                continue
            dstore = self._store_for(descriptor)
            # Creation order, not name order: lexicographic names put
            # run-10 before run-2 once a build makes ten or more runs.
            runs = sorted((run for run in dstore.runs.values()
                           if run.closed),
                          key=lambda run: run_sequence(run.name))
            mergers[descriptor.name] = self._final_merger(
                descriptor, runs)
            if descriptor.name not in self._resume_loaders \
                    and descriptor.tree.root is not None \
                    and descriptor.tree.key_count(
                        include_pseudo_deleted=True):
                # No merge checkpoint for this tree: the whole load
                # restarts, so any surviving content must go.
                self._reset_tree(descriptor.tree)

        if len(loaded) == len(self.descriptors):
            self.system.metrics.incr("build.resumes.drain")
            return "drain", 0, loaded, drained, mergers, drain_positions
        self.system.metrics.incr("build.resumes.load")
        return "load", 0, loaded, drained, mergers, drain_positions

    # -- resume helpers -----------------------------------------------------

    def _reset_tree(self, tree) -> None:
        """Return ``tree`` to the empty state for a from-scratch rebuild."""
        tree.pages.clear()
        tree.root = None
        tree._next_page_no = 0
        tree.structure_version += 1
        tree.durable_lsn = 0
        tree.media_damaged = False

    def _align_tree_with_checkpoint(self, descriptor, highest_key) -> None:
        """Cut the restored tree back to the checkpointed highest key.

        The checkpoint trio forces the tree *before* writing the WAL
        checkpoint record, so after a crash in that window the stable
        tree image can be ahead of the surviving checkpoint; resuming the
        checkpointed merger against it would re-emit keys the loader
        already holds.  Rebuild the tree from the entries at or below the
        checkpointed key and hand the resulting loader to the load phase.
        """
        tree = descriptor.tree
        entries = list(tree.all_entries(include_pseudo_deleted=True))
        if highest_key is None:
            if not entries:
                return
            keep = []
        else:
            bound = (highest_key[0], RID(*highest_key[1]))
            if all(entry.composite <= bound for entry in entries):
                return
            keep = [entry for entry in entries if entry.composite <= bound]
        self._reset_tree(tree)
        loader = BulkLoader(
            tree, fill_free_fraction=self.options.fill_free_fraction)
        for entry in keep:
            loader.append(entry.key_value, entry.rid)
        self._resume_loaders[descriptor.name] = loader
        self.system.metrics.incr("build.resumes.tree_truncated")

    def _replay_index_log(self, descriptor) -> None:
        """Re-apply every logged maintenance op for ``descriptor``.

        After a torn snapshot the tree is rebuilt from the closed sort
        runs, which reflect only the scanned records.  Every change since
        -- side-file drain applications, direct maintenance after the
        Index_Build flag flip, and recovery's compensations -- was logged
        as ``index.apply``; replaying them in LSN order on top of the
        reloaded tree repeats that history exactly (section 6).
        """
        tree = descriptor.tree
        replayed = 0
        for record in self.system.log.scan():
            if record.redo is None:
                continue
            op_name, args = record.redo
            if op_name != "index.apply" \
                    or args.get("index") != descriptor.name:
                continue
            action = args["action"]
            if action in ("insert_many", "remove_many"):
                tree.apply_logical(action, None, (0, 0), extra=args)
            else:
                tree.apply_logical(action, args["key_value"],
                                   args["rid"], extra=args)
            replayed += 1
        if replayed:
            self.system.metrics.incr("build.torn_replayed_ops", replayed)


def sf_pre_undo(system: "System", utility_state: dict
                ) -> Optional[BuildContext]:
    """Reinstall the SF build context before recovery's undo pass.

    Figure 2's count comparison needs the checkpointed Current-RID and
    Index_Build flag to classify visibility during loser rollback.
    """
    if utility_state.get("builder") != SF_MODE:
        return None
    if utility_state.get("phase") == "done":
        return None
    table = system.tables[utility_state["table"]]
    descriptors = [system.indexes[name]
                   for name in utility_state["indexes"]
                   if name in system.indexes]
    raw_rid = utility_state.get("current_rid")
    current_rid = RID(*raw_rid) if raw_rid is not None else RID(0, 0)
    if utility_state.get("phase") in ("load", "drain"):
        current_rid = INFINITY_RID
    context = BuildContext(
        mode=SF_MODE,
        descriptors=descriptors,
        current_rid=current_rid,
        index_build=bool(utility_state.get("index_build", True)),
    )
    system.builds[table.name] = context
    return context
