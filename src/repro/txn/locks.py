"""Lock manager: S/X locks, conditional and instant requests, deadlocks.

The paper assumes *data-only locking* as in ARIES/IM (section 6.2): lock
names for keys are the same as the lock names for the records they derive
from, so one record lock covers both the record and its index entries.
Lock names here are arbitrary hashables -- ``("rec", table, rid)`` for
records, ``("table", name)`` for the table-level locks used by NSF's
descriptor-create quiesce (section 2.2.1) and by drop-index.

Supported request flavours, all used by the algorithms:

* unconditional -- wait until granted (deadlock detection applies);
* conditional -- return False instead of waiting (section 2.2.4: "request a
  conditional instant share lock on it");
* instant duration -- granted and released immediately; only the *wait* has
  an effect (commit-check idiom).

Deadlock detection builds the waits-for graph on each blocking request and
aborts the youngest transaction in any cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Optional, TYPE_CHECKING

import networkx as nx

from repro.errors import DeadlockVictim, TransactionError
from repro.metrics import MetricsRegistry
from repro.sim.kernel import SimEvent, Simulator, Wait

if TYPE_CHECKING:  # pragma: no cover
    from repro.txn.transaction import Transaction

SHARE = "S"
EXCLUSIVE = "X"
INTENT_SHARE = "IS"
INTENT_EXCLUSIVE = "IX"

#: (held, requested) -> compatible?  Standard hierarchical-locking matrix;
#: intent modes let NSF's table-level quiesce (an S lock on the table,
#: section 2.2.1) wait out the IX locks every updating transaction holds.
_COMPATIBLE = {
    ("IS", "IS"): True, ("IS", "IX"): True,
    ("IS", "S"): True, ("IS", "X"): False,
    ("IX", "IS"): True, ("IX", "IX"): True,
    ("IX", "S"): False, ("IX", "X"): False,
    ("S", "IS"): True, ("S", "IX"): False,
    ("S", "S"): True, ("S", "X"): False,
    ("X", "IS"): False, ("X", "IX"): False,
    ("X", "S"): False, ("X", "X"): False,
}

_STRENGTH = {"IS": 1, "IX": 2, "S": 2, "X": 3}

_VICTIM_MARK = object()


class _LockHead:
    """State for one lock name: holders and FIFO wait queue."""

    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: dict["Transaction", str] = {}
        self.queue: deque[tuple["Transaction", str, SimEvent, bool]] = deque()

    def grantable(self, txn: "Transaction", mode: str) -> bool:
        for holder, held_mode in self.holders.items():
            if holder is txn:
                continue
            if not _COMPATIBLE[(held_mode, mode)]:
                return False
        return True

    def grant(self, txn: "Transaction", mode: str) -> None:
        # Conversions go through _union; note its SIX caveat -- a holder
        # combining IX with S records X, not SIX, so later compatibility
        # checks are stricter than a real SIX implementation (safe, but
        # it can deny an IS/IX request a true SIX would admit).
        self.holders[txn] = _union(self.holders.get(txn), mode)


def _union(held: Optional[str], requested: str) -> str:
    """The combined mode after a conversion grant.

    The incomparable pair IX + S would be SIX in a full hierarchical
    implementation; this lock manager has no SIX mode and approximates
    the union as X.  That is strictly *more* restrictive than SIX
    (X conflicts with everything SIX conflicts with, plus IS), so the
    approximation can only reduce concurrency, never admit an illegal
    schedule.  Call sites that perform IX->S or S->IX conversions pay
    this cost; see the note at :meth:`_LockHead.grant`.
    """
    if held is None or held == requested:
        return requested
    if _STRENGTH[held] > _STRENGTH[requested]:
        return held
    if _STRENGTH[requested] > _STRENGTH[held]:
        return requested
    # Incomparable pair (IX + S = SIX); approximate as exclusive.
    return EXCLUSIVE


class LockManager:
    """All lock state for one simulated system."""

    def __init__(self, sim: Simulator,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.metrics = metrics or MetricsRegistry()
        self._heads: dict[Hashable, _LockHead] = {}

    # -- requests (generators; drive from a process) -----------------------

    def lock(self, txn: "Transaction", name: Hashable, mode: str, *,
             conditional: bool = False, instant: bool = False):
        """Request ``name`` in ``mode`` for ``txn``.

        Generator.  Returns True when granted.  A conditional request
        returns False instead of waiting.  Raises
        :class:`~repro.errors.DeadlockVictim` if this transaction is chosen
        as a deadlock victim while waiting.

        A request in a mode the transaction already covers (same mode, or
        anything while holding X) is granted on a fast path; *instant*
        fast-path grants still count toward ``lock.instant_grants``.  A
        conversion (e.g. held S, requested IX) records the :func:`_union`
        of the two modes -- note that the IX+S union is approximated as X
        rather than SIX (see :func:`_union`).
        """
        self.metrics.incr("lock.requests")
        head = self._heads.setdefault(name, _LockHead())
        already = head.holders.get(txn)
        if already == EXCLUSIVE or already == mode:
            # Re-request of a held mode (or anything under a held X):
            # granted without touching lock state.  An instant-duration
            # re-request is still an instant grant and must be counted
            # as one -- the grantable path below increments the same
            # counter, and skipping it here made instant accounting
            # depend on what the transaction already held.
            if instant:
                self.metrics.incr("lock.instant_grants")
            return True

        if head.grantable(txn, mode) and not self._blocked_behind(head, txn):
            if instant:
                self.metrics.incr("lock.instant_grants")
            else:
                head.grant(txn, mode)
                txn.held_locks.add(name)
                if head.queue:
                    # A conversion jumps the queue (see _blocked_behind),
                    # so this grant can complete a waits-for cycle for
                    # the entries still queued here without any of them
                    # issuing a new request; re-check from the head.
                    self._detect_deadlock(head.queue[0][0], name)
            return True

        if conditional:
            self.metrics.incr("lock.conditional_denials")
            return False

        # Must wait.
        self.metrics.incr("lock.waits")
        event = self.sim.event()
        head.queue.append((txn, mode, event, instant))
        txn.waiting_on = name
        self._detect_deadlock(txn, name)
        queued_at = self.sim.now
        outcome = yield Wait(event)
        txn.waiting_on = None
        self.metrics.observe("lock.wait_time", self.sim.now - queued_at)
        if outcome is _VICTIM_MARK:
            raise DeadlockVictim(
                f"transaction {txn.txn_id} chosen as deadlock victim "
                f"waiting for {name!r}")
        return True

    def unlock(self, txn: "Transaction", name: Hashable) -> None:
        """Release one lock early (used for short-duration latching idioms)."""
        head = self._heads.get(name)
        if head is None or txn not in head.holders:
            raise TransactionError(
                f"transaction {txn.txn_id} does not hold {name!r}")
        del head.holders[txn]
        txn.held_locks.discard(name)
        self._drain(name, head)

    def release_all(self, txn: "Transaction") -> None:
        """Release every lock at commit/abort end (strict 2PL)."""
        for name in list(txn.held_locks):
            head = self._heads.get(name)
            if head is not None and txn in head.holders:
                del head.holders[txn]
                self._drain(name, head)
        txn.held_locks.clear()

    # -- queue mechanics ------------------------------------------------------

    def _blocked_behind(self, head: _LockHead, txn: "Transaction") -> bool:
        """FIFO fairness: a new request may not overtake queued waiters.

        A conversion by an existing holder is exempt (it must jump the
        queue or it would deadlock with itself).
        """
        if txn in head.holders:
            return False
        return bool(head.queue)

    def _drain(self, name: Hashable, head: _LockHead) -> None:
        granted = False
        while head.queue:
            txn, mode, event, instant = head.queue[0]
            if not head.grantable(txn, mode):
                break
            head.queue.popleft()
            if not instant:
                head.grant(txn, mode)
                txn.held_locks.add(name)
                granted = True
            event.set(True)
        if not head.holders and not head.queue:
            self._heads.pop(name, None)
        elif granted and head.queue:
            # Granting adds waits-for edges: every entry still queued
            # here now waits on the new holder(s).  No new *request* is
            # made at a grant, so enqueue-time detection never examines
            # a cycle completed this way -- and in a fully convoyed
            # system no future request will, either.  Re-check from the
            # blocked head before letting it go back to sleep.
            self._detect_deadlock(head.queue[0][0], name)

    # -- deadlock detection ------------------------------------------------------

    def _detect_deadlock(self, requester: "Transaction",
                         name: Hashable) -> None:
        # Clear EVERY cycle, not just one reachable from the requester:
        # several can coexist (heavy convoys under a throttled build),
        # and a cycle left standing is never re-examined -- the waiters
        # in it make no further requests, so nothing triggers detection
        # again and the system quietly wedges.
        while True:
            graph = self._waits_for_graph()
            try:
                cycle = nx.find_cycle(graph)
            except nx.NetworkXNoCycle:
                return
            members = {edge[0] for edge in cycle} \
                | {edge[1] for edge in cycle}
            victim_id = max(members)  # youngest transaction dies
            self.metrics.incr("lock.deadlocks")
            self._abort_waiter(victim_id)

    def _waits_for_graph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        for head in self._heads.values():
            earlier: list[tuple["Transaction", str]] = []
            for waiter, mode, _event, _instant in head.queue:
                for holder, held_mode in head.holders.items():
                    if holder is not waiter \
                            and not _COMPATIBLE[(held_mode, mode)]:
                        graph.add_edge(waiter.txn_id, holder.txn_id)
                # FIFO: a waiter waits behind EVERY earlier request in
                # the same queue, compatible or not -- _drain stops at
                # the first non-grantable entry, so a compatible request
                # queued behind a blocked one is just as blocked.
                for ahead, ahead_mode in earlier:
                    if ahead is not waiter:
                        graph.add_edge(waiter.txn_id, ahead.txn_id)
                earlier.append((waiter, mode))
        return graph

    def _abort_waiter(self, victim_id: int) -> None:
        for name, head in self._heads.items():
            for entry in list(head.queue):
                txn, _mode, event, _instant = entry
                if txn.txn_id == victim_id:
                    head.queue.remove(entry)
                    event.set(_VICTIM_MARK)
                    # The victim's request may have been the only thing
                    # blocking the entries queued behind it (an X request
                    # ahead of compatible S requests, head-of-line).  They
                    # are only examined on a release, so without a drain
                    # here they sleep until some unrelated holder of this
                    # head releases -- and when every such holder is
                    # itself queued elsewhere, that is never: the whole
                    # system convoys to a halt with no waits-for cycle.
                    self._drain(name, head)
                    return
        raise TransactionError(  # pragma: no cover - cycle implies a waiter
            f"deadlock victim {victim_id} not found waiting")

    # -- introspection ----------------------------------------------------------

    def holders(self, name: Hashable) -> dict[int, str]:
        head = self._heads.get(name)
        if head is None:
            return {}
        return {txn.txn_id: mode for txn, mode in head.holders.items()}

    def is_locked(self, name: Hashable) -> bool:
        return bool(self._heads.get(name) and self._heads[name].holders)
