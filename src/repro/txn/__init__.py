"""Transactions, locking, and Commit_LSN."""

from repro.txn.locks import EXCLUSIVE, SHARE, LockManager
from repro.txn.transaction import Transaction, TransactionManager, TxnState

__all__ = [
    "EXCLUSIVE",
    "SHARE",
    "LockManager",
    "Transaction",
    "TransactionManager",
    "TxnState",
]
