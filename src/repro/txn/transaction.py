"""Transactions: forward processing, commit, and WAL-driven rollback.

Transactions follow ARIES conventions:

* every change writes a log record chained through ``prev_lsn``;
* commit forces the log up to the commit record;
* rollback walks the chain backwards, invokes each record's undo handler,
  and writes a redo-only *compensation log record* (CLR) whose
  ``undo_next_lsn`` points past the undone record, so rollback never
  re-undoes work after a crash (section 2.2.3 footnote 4: "for a rollback
  action, it would be a compensation (redo-only) log record").

Undo handlers are generators registered in the WAL's operation registry
with signature ``undo(system, txn, record)``; they perform the physical
undo (latching and dirtying pages as needed) and return
``(clr_redo_payload, page)`` so the transaction can write the CLR and stamp
the page with its LSN.
"""

from __future__ import annotations

import enum
from typing import Any, Hashable, Optional, TYPE_CHECKING

from repro.errors import TransactionError
from repro.sim.kernel import Delay
from repro.wal.manager import LogManager
from repro.wal.records import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class OrderedSet:
    """Insertion-ordered set (dict-backed) for lock names.

    ``release_all`` iterates :attr:`Transaction.held_locks`, and its
    drain order decides which waiter wakes first on each freed lock.  A
    plain ``set`` of string-bearing tuples iterates in hash-randomized
    order, which varies across interpreter invocations -- fine for a
    single deterministic run, but it makes a recorded schedule from
    :mod:`repro.schedsweep` non-replayable in a fresh process.
    Insertion order (acquisition order) is stable everywhere.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: dict[Hashable, None] = {}

    def add(self, item: Hashable) -> None:
        self._items[item] = None

    def discard(self, item: Hashable) -> None:
        self._items.pop(item, None)

    def clear(self) -> None:
        self._items.clear()

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OrderedSet({list(self._items)!r})"


class Transaction:
    """One transaction's identity, log chain, and lock set."""

    def __init__(self, system: "System", txn_id: int,
                 name: str = "") -> None:
        self.system = system
        self.txn_id = txn_id
        self.name = name or f"T{txn_id}"
        self.state = TxnState.ACTIVE
        self.first_lsn: Optional[int] = None
        self.last_lsn: Optional[int] = None
        self.held_locks: OrderedSet = OrderedSet()
        self.waiting_on: Optional[Hashable] = None

    # -- logging ------------------------------------------------------------

    def log(self, kind: RecordKind, *, page_id: Any = None,
            redo: Optional[tuple[str, dict]] = None,
            undo: Optional[tuple[str, dict]] = None,
            undo_next_lsn: Optional[int] = None,
            info: Optional[dict] = None,
            writer: str = "txn") -> LogRecord:
        """Append a chained log record for this transaction."""
        record = self.system.log.append(
            self.txn_id, kind,
            prev_lsn=self.last_lsn,
            page_id=page_id,
            redo=redo, undo=undo,
            undo_next_lsn=undo_next_lsn,
            info=info,
            writer=writer,
        )
        if self.first_lsn is None:
            self.first_lsn = record.lsn
        self.last_lsn = record.lsn
        return record

    # -- locking shorthands ----------------------------------------------------

    def lock(self, name: Hashable, mode: str, *, conditional: bool = False,
             instant: bool = False):
        """Generator: request a lock through the system's lock manager."""
        granted = yield from self.system.locks.lock(
            self, name, mode, conditional=conditional, instant=instant)
        return granted

    # -- completion ----------------------------------------------------------

    def commit(self):
        """Generator: commit this transaction (force log, release locks)."""
        self._require_active()
        commit_record = self.log(RecordKind.COMMIT)
        self.system.log.flush(commit_record.lsn)
        yield Delay(LogManager.FLUSH_COST)
        self.state = TxnState.COMMITTED
        self.system.locks.release_all(self)
        self.log(RecordKind.END)
        self.system.txns.finished(self)
        self.system.metrics.incr("txn.commits")

    def rollback(self):
        """Generator: undo every logged change, then release locks."""
        self._require_active()
        self.log(RecordKind.ABORT)
        yield from self._undo_chain()
        self.state = TxnState.ABORTED
        self.system.locks.release_all(self)
        self.log(RecordKind.END)
        self.system.txns.finished(self)
        self.system.metrics.incr("txn.rollbacks")

    def _undo_chain(self):
        registry = self.system.log.operations
        lsn = self.last_lsn
        while lsn is not None:
            record = self.system.log.get(lsn)
            if record.kind is RecordKind.COMPENSATION:
                lsn = record.undo_next_lsn
                continue
            if record.kind is not RecordKind.UPDATE or record.undo is None:
                lsn = record.prev_lsn
                continue
            op_name, _args = record.undo
            handler = registry.undo(op_name)
            clr_redo, page = yield from handler(self.system, self, record)
            clr = self.log(
                RecordKind.COMPENSATION,
                page_id=page.page_id if page is not None else None,
                redo=clr_redo,
                undo_next_lsn=record.prev_lsn,
            )
            if page is not None:
                self.system.buffer.mark_dirty(page, clr.lsn)
            lsn = record.prev_lsn

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Txn {self.txn_id} {self.name} {self.state.value}>"


class TransactionManager:
    """Begins transactions and tracks the active set and Commit_LSN."""

    def __init__(self, system: "System") -> None:
        self.system = system
        self._next_id = 0
        self.active: dict[int, Transaction] = {}

    def begin(self, name: str = "") -> Transaction:
        self._next_id += 1
        txn = Transaction(self.system, self._next_id, name=name)
        self.active[txn.txn_id] = txn
        self.system.metrics.incr("txn.begins")
        return txn

    def finished(self, txn: Transaction) -> None:
        self.active.pop(txn.txn_id, None)

    def is_active(self, txn_id: int) -> bool:
        return txn_id in self.active

    def commit_lsn(self) -> int:
        """Mohan's Commit_LSN [Moha90b]: all log records with LSN below
        this belong to terminated transactions, so any page whose Page-LSN
        is below it holds only committed data -- a lock-free commit test
        used by pseudo-delete cleanup (section 2.2.4) and unique-violation
        checks (section 2.2.3).
        """
        first_lsns = [txn.first_lsn for txn in self.active.values()
                      if txn.first_lsn is not None]
        if first_lsns:
            return min(first_lsns)
        return self.system.log.last_lsn + 1
