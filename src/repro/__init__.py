"""repro -- online index build without quiescing updates.

A production-style Python reproduction of C. Mohan & Inderpal Narang,
"Algorithms for Creating Indexes for Very Large Tables Without Quiescing
Updates", ACM SIGMOD 1992: the NSF and SF online index-build algorithms,
the restartable external sort, and the full DBMS substrate they assume
(WAL, ARIES-lite recovery, buffer pool, lock/latch managers, B+-trees
with pseudo-deleted keys), all running on a deterministic discrete-event
simulator.

Quick tour::

    from repro import (System, SystemConfig, IndexSpec, SFIndexBuilder,
                       WorkloadDriver, WorkloadSpec, audit_index)

    system = System(SystemConfig(), seed=42)
    table = system.create_table("orders", ["order_id", "payload"])
    ...                       # preload rows, start update workers
    builder = SFIndexBuilder(system, table,
                             IndexSpec.of("idx", ["order_id"]))
    system.spawn(builder.run(), name="builder")
    system.run()
    audit_index(system, system.indexes["idx"])

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper-claim
reproduction results.
"""

from repro.btree import BTree, BulkLoader, audit_tree
from repro.core import (
    BuildOptions,
    IndexSpec,
    IndexState,
    NSFIndexBuilder,
    OfflineIndexBuilder,
    SFIndexBuilder,
    build_pre_undo,
    cancel_build,
    cleanup_pseudo_deleted,
    resume_build,
)
from repro.core.iot import IOTable, SFIotBuilder, audit_iot_index
from repro.parallel import ParallelSFBuilder
from repro.errors import (
    DeadlockVictim,
    IndexBuildError,
    ReproError,
    TransactionAborted,
    UniqueViolationError,
)
from repro.recovery import crash_process, restart, run_until_crash
from repro.sort import RestartableMerger, RunFormation, RunStore
from repro.storage import RID, Record
from repro.system import System, SystemConfig
from repro.verify import ConsistencyError, audit_all, audit_index
from repro.workloads import WorkloadDriver, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "BTree",
    "BuildOptions",
    "BulkLoader",
    "ConsistencyError",
    "DeadlockVictim",
    "IOTable",
    "IndexBuildError",
    "IndexSpec",
    "IndexState",
    "NSFIndexBuilder",
    "OfflineIndexBuilder",
    "ParallelSFBuilder",
    "RID",
    "Record",
    "ReproError",
    "RestartableMerger",
    "RunFormation",
    "RunStore",
    "SFIndexBuilder",
    "SFIotBuilder",
    "System",
    "SystemConfig",
    "TransactionAborted",
    "UniqueViolationError",
    "WorkloadDriver",
    "WorkloadSpec",
    "audit_all",
    "audit_index",
    "audit_iot_index",
    "audit_tree",
    "build_pre_undo",
    "cancel_build",
    "cleanup_pseudo_deleted",
    "crash_process",
    "restart",
    "resume_build",
    "run_until_crash",
]
