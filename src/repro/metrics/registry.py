"""Counter and statistic registry.

Every subsystem (buffer pool, WAL, latches, B+-tree, builders) reports into
one :class:`MetricsRegistry` owned by the enclosing :class:`repro.system.System`.
The registry is intentionally simple: named monotonic counters plus named
value-series summaries (count / sum / min / max).  Benchmarks read a
snapshot before and after a run and print deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SeriesStat:
    """Summary of an observed value series (no raw samples retained)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class MetricsRegistry:
    """Named counters and series statistics for one simulated system."""

    counters: dict[str, int] = field(default_factory=dict)
    series: dict[str, SeriesStat] = field(default_factory=dict)

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the value series ``name``."""
        stat = self.series.get(name)
        if stat is None:
            stat = self.series[name] = SeriesStat()
        stat.observe(value)

    def stat(self, name: str) -> SeriesStat:
        """Summary for series ``name`` (empty summary if never observed)."""
        return self.series.get(name, SeriesStat())

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters, e.g. for before/after deltas."""
        return dict(self.counters)

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter increases since ``before`` (a prior :meth:`snapshot`)."""
        result = {}
        for name, value in self.counters.items():
            change = value - before.get(name, 0)
            if change:
                result[name] = change
        return result

    def reset(self) -> None:
        self.counters.clear()
        self.series.clear()
