"""Counter and statistic registry.

Every subsystem (buffer pool, WAL, latches, B+-tree, builders) reports into
one :class:`MetricsRegistry` owned by the enclosing :class:`repro.system.System`.
The registry is intentionally simple: named monotonic counters plus named
value-series summaries (count / sum / min / max).  Benchmarks read a
snapshot before and after a run and print deltas.

The registry is also the attachment point for fault injection
(:mod:`repro.faultinject`): instrumented code reports fault-site hits as
``faultsite.<name>`` counters, and an armed
:class:`~repro.faultinject.injector.FaultInjector` hangs off
:attr:`MetricsRegistry.fault_injector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class SeriesStat:
    """Summary of an observed value series (no raw samples retained)."""

    count: int = 0
    total: float = 0.0
    _min: float = field(default=float("inf"), repr=False)
    _max: float = field(default=float("-inf"), repr=False)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        """Smallest observed value, or 0.0 with zero observations."""
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        """Largest observed value, or 0.0 with zero observations."""
        return self._max if self.count else 0.0

    def merge(self, other: "SeriesStat") -> "SeriesStat":
        """Fold ``other`` into self (count-weighted); returns self.

        Needed for cross-node aggregation: a dashboard summing one
        series over N replicas wants the population summary, not an
        average of averages.
        """
        self.count += other.count
        self.total += other.total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        return self

    def snapshot(self) -> dict[str, float]:
        """Serialisable summary.

        An empty series reports an explicit ``{"count": 0}`` record
        instead of zero-filled min/max -- callers branch on emptiness
        rather than trusting 0.0 extremes that were never observed.
        """
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    def delta(self, before: "SeriesStat") -> "SeriesStat":
        """Observations added since ``before`` (an earlier copy of self).

        Min/max cannot be recovered for the difference window alone, so the
        delta carries the current window extremes -- still 0.0-safe when
        nothing was observed at all.
        """
        result = SeriesStat(count=self.count - before.count,
                            total=self.total - before.total)
        if result.count:
            result._min = self._min
            result._max = self._max
        return result


@dataclass
class MetricsRegistry:
    """Named counters and series statistics for one simulated system."""

    counters: dict[str, int] = field(default_factory=dict)
    series: dict[str, SeriesStat] = field(default_factory=dict)
    #: Named streaming histograms (see :mod:`repro.metrics.hist`);
    #: populated lazily by :meth:`observe_hist`.
    histograms: dict[str, Any] = field(default_factory=dict)
    #: Installed fault injector, if any (see :mod:`repro.faultinject`).
    fault_injector: Optional[Any] = field(default=None, repr=False,
                                          compare=False)
    #: Installed trace recorder, if any (see :mod:`repro.obs`).
    #: Instrumented code tests this attribute and skips all trace work
    #: when it is None -- the same zero-cost-disabled contract as
    #: :attr:`fault_injector`.
    tracer: Optional[Any] = field(default=None, repr=False, compare=False)
    #: Installed build-progress tracker, if any (see
    #: :mod:`repro.obs.progress`).  Builders test this attribute and do
    #: no progress bookkeeping when it is None -- the same
    #: zero-cost-disabled contract as :attr:`tracer`.
    progress: Optional[Any] = field(default=None, repr=False, compare=False)

    def incr(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (creating it at 0).

        The existing-key path is the hot one (inner build loops bump the
        same few counters millions of times), so it avoids the ``get``
        call with a default.
        """
        counters = self.counters
        try:
            counters[name] += amount
        except KeyError:
            counters[name] = amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self.counters.get(name, 0)

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the value series ``name``."""
        stat = self.series.get(name)
        if stat is None:
            stat = self.series[name] = SeriesStat()
        stat.observe(value)

    def stat(self, name: str) -> SeriesStat:
        """Summary for series ``name`` (empty summary if never observed)."""
        return self.series.get(name, SeriesStat())

    def observe_hist(self, name: str, value: float) -> None:
        """Record one sample into streaming histogram ``name``.

        Histograms use the default log2-spaced bounds; pre-register a
        :class:`~repro.metrics.hist.StreamingHistogram` in
        :attr:`histograms` first to use custom bounds.
        """
        hist = self.histograms.get(name)
        if hist is None:
            from repro.metrics.hist import StreamingHistogram
            hist = self.histograms[name] = StreamingHistogram()
        hist.observe(value)

    def hist(self, name: str):
        """Histogram ``name`` (an empty default-bounds one if absent)."""
        hist = self.histograms.get(name)
        if hist is None:
            from repro.metrics.hist import StreamingHistogram
            hist = StreamingHistogram()
        return hist

    def snapshot(self) -> dict[str, int]:
        """Copy of all counters, e.g. for before/after deltas."""
        return dict(self.counters)

    def snapshot_hists(self) -> dict[str, dict]:
        """Serialisable summaries of every histogram, sorted by name."""
        return {name: self.histograms[name].snapshot()
                for name in sorted(self.histograms)}

    def snapshot_stats(self) -> dict[str, dict[str, float]]:
        """Serialisable summaries of every value series, sorted by name.

        :meth:`snapshot` covers counters only; series (quiesce times,
        side-file lengths, per-shard scan times, ...) silently vanished
        from reports built on it.  Benchmarks embed this alongside the
        counter snapshot.
        """
        return {name: self.series[name].snapshot()
                for name in sorted(self.series)}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter increases since ``before`` (a prior :meth:`snapshot`)."""
        result = {}
        for name, value in self.counters.items():
            change = value - before.get(name, 0)
            if change:
                result[name] = change
        return result

    def reset(self) -> None:
        self.counters.clear()
        self.series.clear()
        self.histograms.clear()
