"""Fixed-bucket streaming latency histograms.

``repro.slo.analyzer`` computes exact nearest-rank percentiles, but only
*after the fact*, by post-processing a trace.  A live system needs
p50/p95/p99 *online*, without retaining raw samples.
:class:`StreamingHistogram` is the classic answer: a fixed set of
log2-spaced bucket bounds, one counter per bucket, O(1) ``observe`` and
O(buckets) ``quantile``.

Accuracy contract: :meth:`quantile` returns the upper bound of the
bucket holding the nearest-rank sample (clamped to the observed
min/max), so the estimate is always within **one bucket width** of the
exact nearest-rank value on the same population -- with power-of-two
bounds that is a <= 2x relative error, plenty for threshold alerting and
AIMD steering.  Tests cross-check this against
:func:`repro.slo.analyzer.percentile`.

Histograms are mergeable (cross-node dashboard aggregation) and support
the same snapshot/delta discipline as
:class:`repro.metrics.registry.SeriesStat`, so a sampler can compute
*windowed* quantiles from the difference of two cumulative snapshots.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: default bounds: 2^-10 .. 2^30 in log2 steps (41 finite bounds).
#: Simulated latencies live in roughly [0.5, 10^4]; the wide tails keep
#: one default usable for byte counts and backlogs too.
DEFAULT_MIN_EXP = -10
DEFAULT_MAX_EXP = 30


def log2_bounds(min_exp: int = DEFAULT_MIN_EXP,
                max_exp: int = DEFAULT_MAX_EXP) -> tuple[float, ...]:
    """Finite bucket upper bounds ``2**min_exp .. 2**max_exp``."""
    if max_exp <= min_exp:
        raise ValueError("max_exp must exceed min_exp")
    return tuple(float(2.0 ** e) for e in range(min_exp, max_exp + 1))


class StreamingHistogram:
    """Counts of observations per fixed log2-spaced bucket.

    Bucket ``i`` counts values in ``(bounds[i-1], bounds[i]]``; bucket 0
    is the underflow bucket (everything ``<= bounds[0]``, including
    zeros and negatives) and one extra overflow bucket counts values
    above the last finite bound.
    """

    __slots__ = ("bounds", "counts", "count", "total", "_min", "_max")

    def __init__(self, bounds: Optional[Iterable[float]] = None) -> None:
        self.bounds: tuple[float, ...] = (tuple(bounds) if bounds is not None
                                          else log2_bounds())
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording -----------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``value`` falls into (overflow = last)."""
        bounds = self.bounds
        if value <= bounds[0]:
            return 0
        if value > bounds[-1]:
            return len(bounds)
        # log2-spaced bounds admit O(1) indexing; fall back to bisection
        # for custom bounds.
        lo, hi = 0, len(bounds) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        """Record one sample (O(log buckets))."""
        self.counts[self.bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # -- reading -------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank ``q``-th percentile estimate (``0 < q <= 100``).

        Returns the upper bound of the bucket containing the
        nearest-rank sample, clamped into ``[minimum, maximum]`` -- so
        the result differs from the exact nearest-rank value by at most
        one bucket width.  Raises :class:`ValueError` on an empty
        histogram, matching :func:`repro.slo.analyzer.percentile`.
        """
        if not 0 < q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if self.count == 0:
            raise ValueError("quantile of an empty histogram")
        rank = math.ceil(q / 100.0 * self.count)  # 1-based nearest rank
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                upper = (self.bounds[i] if i < len(self.bounds)
                         else self._max)
                return min(max(upper, self._min), self._max)
        return self._max  # unreachable: counts sum to count

    def percentiles(self, qs: Iterable[float] = (50.0, 95.0, 99.0)
                    ) -> dict[str, float]:
        """Estimates for several quantiles, keyed ``p50`` style."""
        return {f"p{q:g}": self.quantile(q) for q in qs}

    def bucket_width(self, value: float) -> float:
        """Width of the bucket ``value`` falls into (accuracy bound).

        The overflow bucket is unbounded; its width reads as the
        distance from the last finite bound to the observed maximum.
        """
        i = self.bucket_index(value)
        if i == 0:
            return self.bounds[0] - min(self.minimum, 0.0)
        if i == len(self.bounds):
            return max(self.maximum - self.bounds[-1], 0.0)
        return self.bounds[i] - self.bounds[i - 1]

    # -- merge / snapshot / delta -------------------------------------------

    def copy(self) -> "StreamingHistogram":
        out = StreamingHistogram(self.bounds)
        out.counts = list(self.counts)
        out.count = self.count
        out.total = self.total
        out._min = self._min
        out._max = self._max
        return out

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other`` into self (count-weighted); returns self.

        Requires identical bucket bounds -- cross-node aggregation only
        makes sense over one bucketing scheme.
        """
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def snapshot(self) -> dict:
        """Serialisable summary (sparse buckets, sorted keys).

        An empty histogram reports just ``{"count": 0}`` -- the same
        explicit-emptiness contract as :meth:`SeriesStat.snapshot`.
        """
        if self.count == 0:
            return {"count": 0}
        out = {
            "buckets": {str(i): n for i, n in enumerate(self.counts) if n},
            "count": self.count,
            "maximum": self._max,
            "mean": self.mean,
            "minimum": self._min,
            "total": self.total,
            **self.percentiles(),
        }
        return dict(sorted(out.items()))

    def delta(self, before: "StreamingHistogram") -> "StreamingHistogram":
        """Observations added since ``before`` (an earlier copy of self).

        Like :meth:`SeriesStat.delta`, exact min/max of the window alone
        are unrecoverable, so the delta carries the cumulative extremes
        when anything landed in the window.
        """
        if before.bounds != self.bounds:
            raise ValueError("cannot diff histograms with different bounds")
        out = StreamingHistogram(self.bounds)
        out.counts = [a - b for a, b in zip(self.counts, before.counts)]
        out.count = self.count - before.count
        out.total = self.total - before.total
        if out.count:
            out._min = self._min
            out._max = self._max
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"StreamingHistogram(count={self.count}, "
                f"mean={self.mean:.3g})")
