"""Per-partition metric aggregation for the parallel build.

The PSF builder publishes one counter/series per shard using the naming
convention ``<prefix>.<shard>`` (``psf.pages_scanned.0``,
``psf.shard_scan_time.3``, ...).  These helpers gather such families back
into vectors and summarize their *skew* -- the max/mean ratio that tells
how unevenly the range partitioning split the work (1.0 = perfectly
balanced; the slowest shard gates the barrier, so simulated phase time
tracks the max).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.registry import MetricsRegistry


def partition_values(metrics: "MetricsRegistry", prefix: str,
                     shards: int) -> list[float]:
    """The ``<prefix>.<shard>`` family as a dense vector.

    Each slot takes the counter value if one exists, else the series sum
    (a shard that never reported contributes 0.0).
    """
    values = []
    for shard in range(shards):
        name = f"{prefix}.{shard}"
        if name in metrics.counters:
            values.append(float(metrics.counters[name]))
        else:
            values.append(metrics.stat(name).total)
    return values


def skew_summary(values: list[float]) -> dict:
    """Balance summary of one per-shard vector.

    ``skew`` is max/mean (1.0 = balanced); 0.0 when the vector is empty
    or all-zero so callers can emit it unconditionally.
    """
    if not values:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "skew": 0.0}
    mean = sum(values) / len(values)
    summary = {"min": min(values), "max": max(values), "mean": mean}
    summary["skew"] = (max(values) / mean) if mean > 0 else 0.0
    return summary


def partition_skew(metrics: "MetricsRegistry", prefix: str,
                   shards: int) -> dict:
    """Skew summary of the ``<prefix>.<shard>`` family, with the vector."""
    values = partition_values(metrics, prefix, shards)
    summary = skew_summary(values)
    summary["per_shard"] = values
    return summary
