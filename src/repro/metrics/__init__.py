"""Metrics collection for the simulated DBMS."""

from repro.metrics.hist import StreamingHistogram, log2_bounds
from repro.metrics.partition import (
    partition_skew,
    partition_values,
    skew_summary,
)
from repro.metrics.registry import MetricsRegistry, SeriesStat

__all__ = [
    "MetricsRegistry",
    "SeriesStat",
    "StreamingHistogram",
    "log2_bounds",
    "partition_skew",
    "partition_values",
    "skew_summary",
]
