"""Metrics collection for the simulated DBMS."""

from repro.metrics.registry import MetricsRegistry, SeriesStat

__all__ = ["MetricsRegistry", "SeriesStat"]
