"""Multi-index single-scan builds (section 6.2).

"Creation of multiple indexes on the same table could be going on
concurrently with a single scan being shared" -- the paper's section 6.2
extension.  :class:`MultiIndexBuilder` drives ONE data scan (the SF
discipline: Current-RID visibility, side-file routed maintenance) that
feeds K per-index replacement-selection sort pipelines, then brings each
index online *independently*: bulk-load index 1, drain its side-file,
flip it AVAILABLE, move to index 2 -- so queries on early indexes speed
up while later indexes are still loading (the p99 staircase measured by
``examples/advisor_build.py``).

This differs from :class:`repro.core.sf.SFIndexBuilder` handed K specs,
which loads *all* trees before draining *any* side-file: the serial
order keeps every index offline until the very end.  The shared pieces
-- scan/sort (:meth:`BuilderBase._scan_and_sort` already extracts one
key per index per record), bulk load, drain + atomic flag flip
(:class:`SideFileDrainer`) -- are reused verbatim; what is new is the
per-index **manifest** in the utility checkpoint::

    {"phase": "index",
     "multi": {"idx_a": {"status": "done"},
               "idx_b": {"status": "draining", "position": 128},
               "idx_c": {"status": "pending"}}}

so a crash resumes only unfinished indexes and never rescans (or
reloads, or re-drains) finished ones.  The NSF discipline needs no new
builder: :class:`repro.core.nsf.NSFIndexBuilder` already accepts K
specs against the shared scan and its indexes are visible from
descriptor creation; :func:`multi_build` dispatches between them.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.base import BuilderBase, BuildOptions, IndexSpec
from repro.core.descriptor import IndexState
from repro.core.maintenance import (
    BuildContext,
    MULTI_MODE,
    install_maintenance,
)
from repro.core.sf import SFIndexBuilder
from repro.faultinject.sites import fault_point
from repro.sidefile import register_sidefile_operations
from repro.sort import RestartableMerger, RunFormation, run_sequence
from repro.storage.rid import INFINITY_RID, RID

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


class MultiIndexBuilder(SFIndexBuilder):
    """K indexes, one scan, per-index load->drain->flip pipeline."""

    mode = MULTI_MODE

    def __init__(self, system, table, specs, options=None):
        super().__init__(system, table, specs, options)
        #: per-index build manifest checkpointed under the ``multi`` key:
        #: index name -> {"status": pending|loading|draining|done,
        #: "position": drain start, "merge"/"highest_key": load progress}
        self._manifest: dict[str, dict] = {}

    # -- main process ------------------------------------------------------

    def run(self):
        """Generator process body: one scan, K independent flips."""
        self._mark("start")
        self._trace_begin("build", mode=self.mode, table=self.table.name,
                          indexes=[s.name for s in self.specs],
                          resumed=self._resume_state is not None)
        mergers: dict[str, RestartableMerger] = {}
        if self._resume_state is None:
            self._descriptor_phase()
            self._make_sorters()
            phase = "scan"
            scan_start = 0
        else:
            phase, scan_start, mergers = self._prepare_multi_resume()

        if phase == "scan":
            yield from self._scan_and_sort(start_page=scan_start)
            # Section 3.2.2: later file extensions reach the side-files.
            self.context.current_rid = INFINITY_RID
            runs_by_index = self._finish_sort()
            self._mark("scan_done")
            self._progress_phase_done("scan")
            fault_point(self.system.metrics, "multibuild.scan_done")
            for descriptor in self.descriptors:
                self._manifest[descriptor.name] = {"status": "pending"}
            # Transition checkpoint: from here each index resumes from
            # its own manifest entry against the forced, closed runs.
            self._write_utility_checkpoint({"phase": "index"})
            mergers = {
                d.name: self._final_merger(d, runs_by_index[d.name])
                for d in self.descriptors}
            phase = "index"

        if phase == "index":
            yield from self._index_pipeline(mergers)

        self._remove_context()
        self._write_utility_checkpoint({"phase": "done"})
        self._mark("done")
        self._progress_finish()
        self._trace_end("build")
        return self.descriptors

    def _index_pipeline(self, mergers):
        """Load, drain, and flip each index in turn.

        Index i becomes AVAILABLE before index i+1's load begins -- the
        earliest each can come online under one scan's worth of I/O.
        Side-files of the not-yet-drained indexes keep growing behind
        Current-RID = infinity while earlier indexes drain.
        """
        metrics = self.system.metrics
        for descriptor in self.descriptors:
            name = descriptor.name
            entry = self._manifest.get(name) or {"status": "pending"}
            status = entry.get("status", "pending")
            if status == "done":
                continue
            if status != "draining":
                yield from self._load_phase(
                    descriptor, mergers.get(name), [],
                    loader=self._resume_loaders.pop(name, None))
                if name in self._torn_recover:
                    self._torn_recover.discard(name)
                    self._replay_index_log(descriptor)
                fault_point(metrics, "multibuild.index_loaded")
            start = int(entry.get("position", 0))
            self.system.sidefiles[name].force()
            self._write_utility_checkpoint({
                "phase": "drain", "index": name, "position": start})
            fault_point(metrics, "sf.drain_start")
            yield from self._drain_phase(descriptor, start, [], [])
            self._manifest[name] = {"status": "done"}
            metrics.incr("multibuild.indexes_flipped")
            self._write_utility_checkpoint({"phase": "index"})
            fault_point(metrics, "multibuild.index_done")

    # -- manifest maintenance ----------------------------------------------

    def _write_utility_checkpoint(self, state: dict) -> None:
        """Fold the inherited load/drain checkpoint payloads into the
        per-index manifest, then checkpoint the whole manifest.

        ``_load_phase`` and ``_drain_phase`` (shared with SF) emit
        single-index payloads (``{"phase": "load", "index": ...,
        "merge": ...}``); translating them here -- instead of forking
        those phases -- keeps one copy of the load/drain logic while the
        checkpoint record always carries every index's progress.
        """
        state = dict(state)
        phase = state.get("phase")
        if phase == "load":
            name = state.pop("index")
            previous = self._manifest.get(name) or {}
            self._manifest[name] = {
                "status": "loading",
                "merge": state.pop("merge"),
                "highest_key": state.pop("highest_key"),
                # a torn-recovery drain offset survives the reload
                "position": int(previous.get("position", 0)),
            }
            state.pop("loaded_indexes", None)
            state["phase"] = "index"
        elif phase == "drain":
            name = state.pop("index")
            self._manifest[name] = {
                "status": "draining",
                "position": int(state.pop("position", 0)),
            }
            state.pop("loaded_indexes", None)
            state.pop("drained_indexes", None)
            state["phase"] = "index"
        if state.get("phase") != "done":
            state["multi"] = {name: dict(entry)
                             for name, entry in self._manifest.items()}
        super()._write_utility_checkpoint(state)

    # -- restart -----------------------------------------------------------

    @classmethod
    def resume(cls, system: "System", utility_state: dict
               ) -> "MultiIndexBuilder":
        table = system.tables[utility_state["table"]]
        specs = [IndexSpec(name, tuple(cols), unique)
                 for name, cols, unique in utility_state["specs"]]
        builder = cls(system, table, specs)
        builder.descriptors = [system.indexes[name]
                               for name in utility_state["indexes"]]
        register_sidefile_operations(system)
        install_maintenance(system, table)
        context = system.builds.get(table.name)
        if context is None:
            context = multi_pre_undo(system, utility_state) \
                or BuildContext(mode=MULTI_MODE,
                                descriptors=list(builder.descriptors))
            system.builds[table.name] = context
        builder.context = context
        builder._resume_state = utility_state
        builder._restore_throttle(utility_state)
        builder._restore_progress(utility_state)
        builder._restore_codec(utility_state)
        return builder

    def _prepare_multi_resume(self):
        """Rebuild in-flight state from the checkpointed manifest.

        Finished indexes ("done") are skipped outright -- no rescan, no
        reload, no re-drain; an index mid-load resumes its checkpointed
        merge; an index mid-drain resumes from its drain position; a
        pending index rebuilds from the forced, closed sort runs.
        """
        state = self._resume_state
        metrics = self.system.metrics
        self._manifest = {name: dict(entry)
                          for name, entry in state.get("multi", {}).items()}
        phase = state.get("phase", "scan")
        mergers: dict[str, RestartableMerger] = {}
        if phase == "scan":
            # Same as SF's scan resume: a torn snapshot during the scan
            # lost only an empty tree image.
            for descriptor in self.descriptors:
                if descriptor.tree.media_damaged:
                    self._reset_tree(descriptor.tree)
            scan_start = state.get("next_page", 0)
            manifests = state.get("sort", {})
            for descriptor in self.descriptors:
                manifest = manifests.get(descriptor.name)
                if manifest is not None:
                    sorter, _pos = self._restore_sorter(descriptor, manifest)
                else:
                    sorter = self._new_sorter(descriptor)
                self._sorters[descriptor.name] = sorter
            metrics.incr("build.resumes.scan")
            return "scan", scan_start, mergers
        self.context.current_rid = INFINITY_RID
        if phase == "done":
            return "done", 0, mergers

        # Section 6 fallback, per index: a torn stable snapshot cannot
        # be redone from the log (the bulk load is unlogged) -- pull that
        # index alone back to pending and rebuild it from its closed
        # runs; the other indexes keep their manifest progress.
        for descriptor in self.descriptors:
            if not descriptor.tree.media_damaged:
                continue
            name = descriptor.name
            entry = self._manifest.get(name) or {}
            flipped = (descriptor.state is IndexState.AVAILABLE
                       or entry.get("status") == "done")
            sidefile = self.system.sidefiles.get(name)
            # Once flipped, later changes went straight to the index
            # (log records only): skip re-draining that frozen prefix or
            # it would clobber the replayed direct maintenance.
            position = (len(sidefile.entries)
                        if flipped and sidefile is not None else 0)
            self._reset_tree(descriptor.tree)
            descriptor.state = IndexState.BUILDING
            if self.context is not None \
                    and descriptor not in self.context.descriptors:
                self.context.descriptors.append(descriptor)
            self._manifest[name] = {"status": "pending",
                                    "position": position}
            self._torn_recover.add(name)
            metrics.incr("build.resumes.torn_fallback")

        skipped = 0
        for descriptor in self.descriptors:
            name = descriptor.name
            entry = self._manifest.setdefault(name, {"status": "pending"})
            status = entry.get("status", "pending")
            if status == "done":
                # Never rescanned, never reloaded: the flip was
                # checkpointed, so the catalog carried AVAILABLE across.
                descriptor.state = IndexState.AVAILABLE
                if self.context is not None \
                        and descriptor in self.context.descriptors:
                    self.context.descriptors.remove(descriptor)
                skipped += 1
                continue
            if status == "draining":
                continue  # no merger needed; drain resumes from position
            if status == "loading":
                store = self._store_for(descriptor)
                mergers[name] = RestartableMerger.restore(
                    store, entry["merge"])
                self._align_tree_with_checkpoint(descriptor,
                                                 entry.get("highest_key"))
                continue
            # pending: rebuild the final merge from the closed runs, in
            # creation order (run-10 sorts before run-2 lexicographically)
            store = self._store_for(descriptor)
            runs = sorted((run for run in store.runs.values()
                           if run.closed),
                          key=lambda run: run_sequence(run.name))
            mergers[name] = self._final_merger(descriptor, runs)
            if name not in self._resume_loaders \
                    and descriptor.tree.root is not None \
                    and descriptor.tree.key_count(
                        include_pseudo_deleted=True):
                # The checkpoint trio forces *every* build tree, so a
                # pending index's tree may hold a partial load forced by
                # another index's checkpoint; the whole load restarts.
                self._reset_tree(descriptor.tree)
        if skipped:
            metrics.incr("multibuild.resume_skipped_indexes", skipped)
        metrics.incr("build.resumes.multi")
        return "index", 0, mergers


def multi_build(system: "System", table, specs,
                options: Optional[BuildOptions] = None,
                discipline: str = "sf") -> BuilderBase:
    """One shared-scan builder for K indexes, by update discipline.

    ``"sf"`` returns a :class:`MultiIndexBuilder` (side-files, per-index
    flag flips, each index online as soon as its own drain completes).
    ``"nsf"`` returns an :class:`~repro.core.nsf.NSFIndexBuilder` over
    the same K specs -- NSF indexes are maintained directly from
    descriptor creation, so the shared scan needs no new machinery there
    (section 6.2 note in :class:`BuildContext`).
    """
    if discipline == "sf":
        return MultiIndexBuilder(system, table, specs, options)
    if discipline == "nsf":
        from repro.core.nsf import NSFIndexBuilder
        return NSFIndexBuilder(system, table, specs, options)
    raise ValueError(f"unknown multibuild discipline {discipline!r}")


def multi_pre_undo(system: "System", utility_state: dict
                   ) -> Optional[BuildContext]:
    """Reinstall the multibuild context before recovery's undo pass.

    Exactly :func:`repro.core.sf.sf_pre_undo` with the multi manifest's
    phase names: Figure 2's count comparison needs Current-RID and the
    Index_Build flag to classify visibility during loser rollback.
    AVAILABLE (done) indexes short-circuit visibility on state alone,
    so the context may simply carry every recorded descriptor.
    """
    if utility_state.get("builder") != MULTI_MODE:
        return None
    if utility_state.get("phase") == "done":
        return None
    table = system.tables[utility_state["table"]]
    descriptors = [system.indexes[name]
                   for name in utility_state["indexes"]
                   if name in system.indexes]
    raw_rid = utility_state.get("current_rid")
    current_rid = RID(*raw_rid) if raw_rid is not None else RID(0, 0)
    if utility_state.get("phase") == "index":
        current_rid = INFINITY_RID
    context = BuildContext(
        mode=MULTI_MODE,
        descriptors=descriptors,
        current_rid=current_rid,
        index_build=bool(utility_state.get("index_build", True)),
    )
    system.builds[table.name] = context
    return context
