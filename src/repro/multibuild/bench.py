"""Multi-index build bench (``python -m repro.multibuild.bench``).

Measures what section 6.2's shared scan buys: for K in a small sweep,
the suite builds the same K indexes twice under identical open-loop
traffic --

* ``multibuild/k{K}`` -- one :class:`~repro.multibuild.MultiIndexBuilder`
  run: ONE table scan feeding K sort pipelines, then the per-index
  load/drain/flip pipeline;
* ``sequential/k{K}`` -- K separate SF builds run back to back, each
  with its own full table scan;

plus an ``advisor`` scenario that derives the index set from the traffic
spec itself (:func:`repro.advisor.templates_from_spec` ->
:func:`repro.advisor.recommend`) and builds the picks as one multibuild.

Self-gates (no reference needed):

* for K >= 2 the multibuild must finish strictly faster than the
  sequential baseline AND scan strictly fewer pages (the whole point);
* for K = 1 the two must scan the same number of pages (the shared-scan
  machinery adds no I/O when there is nothing to share);
* the advisor's picks must be non-empty, within budget, improve the
  estimated workload cost, and every pick must reach AVAILABLE.

All headline numbers are on the simulated clock; CI gates drift against
the committed ``BENCH_PR7.json`` exactly like the other bench suites
(``--check-against``), comparing rows by name wherever both payloads ran
them, so the smoke subset checks against the full baseline.

Usage::

    python -m repro.multibuild.bench --out BENCH_PR7.json
    python -m repro.multibuild.bench --smoke --out /tmp/now.json \\
        --check-against BENCH_PR7.json --max-regression 0.30
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Optional

from repro.advisor import AdvisorConfig, recommend, templates_from_spec
from repro.advisor.model import TableStats
from repro.core import BuildOptions, IndexSpec
from repro.core.sf import SFIndexBuilder
from repro.multibuild.builder import MultiIndexBuilder
from repro.obs import enable_tracing
from repro.slo.analyzer import latency_report
from repro.system import System, SystemConfig
from repro.workloads import OpenLoopDriver, OpenLoopSpec

SCHEMA_VERSION = 1
SUITE_NAME = "repro.multibuild.bench"

#: index counts swept (smoke keeps the endpoints)
FULL_KS: tuple[int, ...] = (1, 2, 3)
SMOKE_KS: tuple[int, ...] = (1, 3)

#: one fixed traffic/system shape for every scenario
PARAMS = {
    "seed": 11,
    "rows": 320,
    "operations": 100,
    "arrival_rate": 0.05,
    "key_space": 2000,
    "buffer_frames": 32,
    "disk_channels": 1,
    "advisor_budget_pages": 400,
}

#: the K-sweep's index specs, widest sweep first K are used
SWEEP_SPECS = (
    IndexSpec.of("idx_k", ["k"]),
    IndexSpec.of("idx_a", ["a"]),
    IndexSpec.of("idx_b", ["b"]),
)

#: range-read mix for the advisor scenario: three candidate columns
#: with distinct weights, so the advisor has a real choice to make
RANGE_COLUMNS = (("k", 2.0), ("a", 1.0), ("b", 1.0))

COUNTERS = (
    "build.pages_scanned",
    "build.sidefile_drained",
    "multibuild.indexes_flipped",
    "sidefile.appends",
)


def _row_factory(key: int, tag: str) -> tuple:
    """Four-column rows; extra columns are deterministic in the key so
    serial-equivalence replays stay exact."""
    return (key, tag, (key * 7) % PARAMS["key_space"],
            (key * 13) % PARAMS["key_space"])


def _make_system(rate: Optional[float] = None):
    config = SystemConfig(
        page_capacity=8, leaf_capacity=8, branch_capacity=8,
        buffer_frames=PARAMS["buffer_frames"],
        sort_workspace=32, merge_fanin=4,
        disk_channels=PARAMS["disk_channels"],
        build_rate_limit=rate)
    system = System(config, seed=PARAMS["seed"])
    recorder = enable_tracing(system)
    table = system.create_table("t", ["k", "p", "a", "b"])
    return system, table, recorder


def _make_traffic(system, table,
                  range_columns: tuple = ()) -> OpenLoopDriver:
    spec = OpenLoopSpec(operations=PARAMS["operations"],
                        rate=PARAMS["arrival_rate"],
                        range_weight=1.0 if range_columns else 0.0,
                        range_span=100,
                        range_columns=range_columns,
                        key_space=PARAMS["key_space"])
    driver = OpenLoopDriver(system, table, spec, seed=PARAMS["seed"])
    driver.row_factory = _row_factory
    system.spawn(driver.preload(PARAMS["rows"]), name="preload")
    system.run()
    return driver


def _finish(system, driver, done, recorder, specs) -> dict:
    dispatcher = driver.spawn()
    system.run()
    if dispatcher.error is not None:
        raise dispatcher.error
    if "build_time" not in done:
        raise AssertionError("build did not finish")
    window = (done["start"], done["start"] + done["build_time"])
    from repro.core.descriptor import IndexState
    for spec in specs:
        state = system.indexes[spec.name].state
        if state is not IndexState.AVAILABLE:
            raise AssertionError(f"{spec.name} ended {state!r}")
    scenario: dict[str, Any] = {
        "build_time": done["build_time"],
        "window": list(window),
        "latency": latency_report(recorder.events, window=window),
        "counters": {key: system.metrics.get(key) for key in COUNTERS
                     if system.metrics.get(key)},
    }
    return scenario


def _run_multibuild(k: int) -> dict:
    specs = list(SWEEP_SPECS[:k])
    system, table, recorder = _make_system()
    driver = _make_traffic(system, table)
    build = MultiIndexBuilder(system, table, specs,
                              BuildOptions(checkpoint_every_keys=200,
                                           commit_every_keys=128,
                                           prefetch_pages=2))
    done: dict[str, float] = {}

    def timed():
        done["start"] = system.sim.now
        yield from build.run()
        done["build_time"] = system.sim.now - done["start"]

    system.spawn(timed(), name="builder")
    scenario = _finish(system, driver, done, recorder, specs)
    scenario["params"] = dict(PARAMS, k=k, shape="multibuild")
    scenario["flips"] = {
        name.split(":", 1)[1]: at - done["start"]
        for name, at in build.timings.items()
        if name.startswith("drain_done:")}
    return scenario


def _run_sequential(k: int) -> dict:
    specs = list(SWEEP_SPECS[:k])
    system, table, recorder = _make_system()
    driver = _make_traffic(system, table)
    done: dict[str, float] = {}
    flips: dict[str, float] = {}

    def timed():
        done["start"] = system.sim.now
        for spec in specs:
            build = SFIndexBuilder(
                system, table, spec,
                BuildOptions(checkpoint_every_keys=200,
                             commit_every_keys=128, prefetch_pages=2))
            yield from build.run()
            flips[spec.name] = system.sim.now - done["start"]
        done["build_time"] = system.sim.now - done["start"]

    system.spawn(timed(), name="builder")
    scenario = _finish(system, driver, done, recorder, specs)
    scenario["params"] = dict(PARAMS, k=k, shape="sequential")
    scenario["flips"] = flips
    return scenario


def _run_advisor() -> dict:
    system, table, recorder = _make_system()
    driver = _make_traffic(system, table, range_columns=RANGE_COLUMNS)
    templates = templates_from_spec(driver.olspec)
    stats = TableStats.from_table(system, table)
    report = recommend(templates, stats, AdvisorConfig(
        storage_budget_pages=PARAMS["advisor_budget_pages"],
        max_index_width=2))
    specs = report.specs()
    if not specs:
        raise AssertionError("advisor picked nothing")
    build = MultiIndexBuilder(system, table, specs,
                              BuildOptions(checkpoint_every_keys=200,
                                           commit_every_keys=128,
                                           prefetch_pages=2))
    done: dict[str, float] = {}

    def timed():
        done["start"] = system.sim.now
        yield from build.run()
        done["build_time"] = system.sim.now - done["start"]

    system.spawn(timed(), name="builder")
    scenario = _finish(system, driver, done, recorder, specs)
    scenario["params"] = dict(PARAMS, shape="advisor")
    scenario["advisor"] = {
        "picks": [list(pick.key_columns) for pick in report.picks],
        "initial_cost": report.initial_cost,
        "final_cost": report.final_cost,
        "storage_used": report.storage_used,
    }
    scenario["counters"]["openloop.range_via_index"] = \
        system.metrics.get("openloop.range_via_index")
    return scenario


def _scenarios(mode: str) -> list[tuple[str, Callable[[], dict]]]:
    ks = SMOKE_KS if mode == "smoke" else FULL_KS
    entries: list[tuple[str, Callable[[], dict]]] = []
    for k in ks:
        entries.append((f"multibuild/k{k}",
                        lambda kk=k: _run_multibuild(kk)))
        entries.append((f"sequential/k{k}",
                        lambda kk=k: _run_sequential(kk)))
    entries.append(("advisor", _run_advisor))
    return entries


# ---------------------------------------------------------------------------
# suite driver, gates, CLI (the shape shared by the other bench suites)
# ---------------------------------------------------------------------------


def run_suite(mode: str = "full", *, only: Optional[str] = None,
              echo: Callable[[str], None] = lambda line: None) -> dict:
    scenarios: list[dict] = []
    for name, thunk in _scenarios(mode):
        if only is not None and not name.startswith(only):
            continue
        scenario: dict[str, Any] = {"name": name, "ok": True}
        try:
            scenario.update(thunk())
        except Exception as exc:  # noqa: BLE001 - recorded, gated later
            scenario["ok"] = False
            scenario["error"] = f"{type(exc).__name__}: {exc}"
            echo(f"  FAIL {name}: {scenario['error']}")
        else:
            echo(f"  ok   {name:18s} build={scenario['build_time']:9.1f}  "
                 f"pages={scenario['counters'].get('build.pages_scanned', 0)}")
        scenarios.append(scenario)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "mode": mode,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }
    if only is not None:
        payload["only"] = only
    return payload


def find_scenario(payload: dict, name: str) -> Optional[dict]:
    for scenario in payload.get("scenarios", []):
        if scenario.get("name") == name:
            return scenario
    return None


def validate_payload(payload: dict) -> list[str]:
    problems: list[str] = []
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    if payload.get("suite") != SUITE_NAME:
        problems.append("suite name mismatch")
    if payload.get("mode") not in ("full", "smoke"):
        problems.append("mode must be 'full' or 'smoke'")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        return problems + ["scenarios must be a non-empty list"]
    names = set()
    for scenario in scenarios:
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            problems.append("scenario without a name")
            continue
        if name in names:
            problems.append(f"duplicate scenario {name}")
        names.add(name)
        if not isinstance(scenario.get("ok"), bool):
            problems.append(f"{name}: ok must be a bool")
        if scenario.get("ok") and not isinstance(
                scenario.get("build_time"), (int, float)):
            problems.append(f"{name}: missing build_time")
    if payload.get("only") is None:
        ks = SMOKE_KS if payload.get("mode") == "smoke" else FULL_KS
        for k in ks:
            for shape in ("multibuild", "sequential"):
                expected = f"{shape}/k{k}"
                if expected not in names:
                    problems.append(f"{expected} scenario missing")
        if "advisor" not in names:
            problems.append("advisor scenario missing")
    return problems


def _bench_gates(payload: dict) -> list[str]:
    """The suite's own acceptance gates (no reference needed)."""
    problems: list[str] = []
    ks = SMOKE_KS if payload.get("mode") == "smoke" else FULL_KS
    for k in ks:
        multi = find_scenario(payload, f"multibuild/k{k}")
        seq = find_scenario(payload, f"sequential/k{k}")
        if multi is None or seq is None \
                or not multi.get("ok") or not seq.get("ok"):
            continue
        m_pages = multi["counters"].get("build.pages_scanned", 0)
        s_pages = seq["counters"].get("build.pages_scanned", 0)
        if k == 1 and m_pages != s_pages:
            problems.append(
                f"k=1: multibuild scanned {m_pages} pages, sequential "
                f"{s_pages} -- the shared scan should cost nothing extra")
        if k >= 2:
            if not multi["build_time"] < seq["build_time"]:
                problems.append(
                    f"k={k}: multibuild build_time "
                    f"{multi['build_time']:.1f} not below sequential "
                    f"{seq['build_time']:.1f} -- the shared scan is "
                    f"not paying for itself")
            if not m_pages < s_pages:
                problems.append(
                    f"k={k}: multibuild scanned {m_pages} pages, "
                    f"sequential {s_pages} -- expected one scan vs {k}")
    advisor = find_scenario(payload, "advisor")
    if advisor is not None and advisor.get("ok"):
        adv = advisor.get("advisor", {})
        if not adv.get("picks"):
            problems.append("advisor: no picks recorded")
        if not adv.get("final_cost", 0) < adv.get("initial_cost", 0):
            problems.append(
                f"advisor: estimated cost did not improve "
                f"({adv.get('initial_cost')} -> {adv.get('final_cost')})")
        budget = PARAMS["advisor_budget_pages"]
        if adv.get("storage_used", 0) > budget:
            problems.append(
                f"advisor: storage {adv.get('storage_used')} exceeds "
                f"budget {budget}")
    return problems


def _compare_scenario(name: str, scenario: dict, reference: dict,
                      max_regression: float) -> list[str]:
    problems = []
    fields = [("build_time", scenario.get("build_time"),
               reference.get("build_time")),
              ("latency.p99", (scenario.get("latency") or {}).get("p99"),
               (reference.get("latency") or {}).get("p99"))]
    for field, new, ref in fields:
        if not isinstance(new, (int, float)) \
                or not isinstance(ref, (int, float)) or ref == 0:
            continue
        drift = abs(new - ref) / ref
        if drift > max_regression:
            problems.append(
                f"{name}: {field} {new:.2f} drifted {drift:.0%} from "
                f"reference {ref:.2f} (tolerance {max_regression:.0%})")
    return problems


def check_payload(payload: dict, reference: Optional[dict] = None, *,
                  max_regression: float = 0.30) -> list[str]:
    """Full gate: schema + scenario failures + bench gates + drift."""
    problems = validate_payload(payload)
    for scenario in payload.get("scenarios", []):
        if not scenario.get("ok"):
            problems.append(
                f"scenario {scenario.get('name')} failed: "
                f"{scenario.get('error', 'unknown error')}")
    problems.extend(_bench_gates(payload))
    if reference is not None:
        for scenario in payload.get("scenarios", []):
            if not scenario.get("ok"):
                continue
            ref = find_scenario(reference, scenario["name"])
            if ref is None or not ref.get("ok"):
                continue
            problems.extend(_compare_scenario(
                scenario["name"], scenario, ref, max_regression))
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.multibuild.bench",
        description="shared-scan multi-index build vs K sequential "
                    "builds, plus the advisor pipeline")
    parser.add_argument("--out", required=True,
                        help="write the results JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="K endpoints only (CI)")
    parser.add_argument("--only", metavar="PREFIX", default=None,
                        help="run only scenarios whose name starts with "
                             "PREFIX (skips completeness validation)")
    parser.add_argument("--check-against", metavar="REF",
                        help="reference JSON to gate drift against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed relative drift vs the reference "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    suffix = f", only={args.only}" if args.only else ""
    print(f"multibuild bench suite ({mode}{suffix})")
    payload = run_suite(mode, only=args.only, echo=print)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.only:
        problems = [] if payload["scenarios"] else \
            [f"--only {args.only} matched no scenarios"]
        for scenario in payload["scenarios"]:
            if not scenario.get("ok"):
                problems.append(
                    f"scenario {scenario.get('name')} failed: "
                    f"{scenario.get('error', 'unknown error')}")
    else:
        reference = None
        if args.check_against:
            with open(args.check_against, "r", encoding="utf-8") as handle:
                reference = json.load(handle)
        problems = check_payload(payload, reference,
                                 max_regression=args.max_regression)
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(f"ok: {len(payload['scenarios'])} scenario(s)")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
