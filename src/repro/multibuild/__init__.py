"""Multi-index single-scan online builds (the paper's section 6.2).

* :class:`MultiIndexBuilder` -- K indexes from one scan, SF discipline,
  each index flipping AVAILABLE as soon as its own drain completes;
* :func:`multi_build` -- discipline dispatch (SF pipeline or NSF's
  directly-maintained K-spec build) for one shared scan;
* :func:`multi_pre_undo` -- recovery hook (Figure 2 context reinstall);
* ``python -m repro.multibuild.bench`` -- the K-sweep showing one shared
  scan beating K sequential builds (committed as ``BENCH_PR7.json``).
"""

from repro.multibuild.builder import (
    MultiIndexBuilder,
    multi_build,
    multi_pre_undo,
)

__all__ = [
    "MultiIndexBuilder",
    "multi_build",
    "multi_pre_undo",
]
