"""Read access paths: table scans, index lookups, index range scans.

The paper's availability argument is about *readers*: an index under
construction "is still not available to the transactions to use it as an
access path for retrievals.  Such usage has to be delayed until the
entire index is built" (section 2.2.1).  This module provides the access
paths that become legal at that point, with the locking the paper
assumes:

* data-only locking (section 6.2): the lock protecting a key is the lock
  on the record it came from, which is why IB "can make available the new
  index for reads by transactions without the danger of exposing those
  transactions performing index-only read accesses to uncommitted keys";
* next-key locking on the first key past a range, for serializable range
  scans (phantom protection, [Moha90a]);
* pseudo-deleted keys are invisible to readers but a reader still locks
  them when they bound a range (their deletion may be uncommitted).

Footnote 3 of section 2.2.1 is also implemented as an opt-in: "if we are
ambitious, then we could make the index gradually available for a range
of key values starting from the smallest possible key value ... as the
index is being continuously modified by IB to include higher and higher
key values" -- see :func:`set_gradual_availability` and the
``read_watermark`` checks.
"""

from __future__ import annotations

from typing import Iterator, Optional, TYPE_CHECKING

from repro.core.descriptor import IndexDescriptor, IndexState
from repro.errors import ReproError
from repro.sim.kernel import Acquire, Delay
from repro.sim.latch import SHARE
from repro.storage.rid import RID

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table
    from repro.system import System
    from repro.txn.transaction import Transaction


class IndexNotAvailableError(ReproError):
    """The index is still being built and cannot serve this read."""


def set_gradual_availability(descriptor: IndexDescriptor,
                             enabled: bool = True) -> None:
    """Enable footnote 3: reads below IB's high-water key during an NSF
    build.  The NSF builder maintains ``descriptor.read_watermark`` (the
    highest key whose insertion has been committed)."""
    descriptor.gradual_reads = enabled


def _check_readable(descriptor: IndexDescriptor, high_key) -> None:
    if descriptor.state is IndexState.AVAILABLE:
        return
    if getattr(descriptor, "gradual_reads", False):
        watermark = getattr(descriptor, "read_watermark", None)
        if watermark is not None and high_key is not None \
                and high_key <= watermark[0]:
            return  # range lies entirely below IB's committed frontier
        raise IndexNotAvailableError(
            f"index {descriptor.name} is built only up to key "
            f"{watermark[0] if watermark else None!r}; "
            f"requested up to {high_key!r}")
    raise IndexNotAvailableError(
        f"index {descriptor.name} is still being built "
        f"({descriptor.state.value})")


def index_lookup(txn: "Transaction", descriptor: IndexDescriptor,
                 key_value):
    """Generator: all committed records with this key value.

    Returns a list of ``(rid, record)``.  S-locks each qualifying record
    (data-only locking) before reading it.
    """
    _check_readable(descriptor, key_value)
    system = descriptor.system
    table = descriptor.table
    results = []
    for entry in _entries_in_range(descriptor, key_value, key_value,
                                   inclusive_high=True):
        yield from txn.lock(table.lock_name(RID(*entry.rid)), "S")
        if entry.pseudo_deleted:
            continue  # committed-deleted; lock settled it
        record = yield from table.read_latched(RID(*entry.rid))
        if record is not None and descriptor.key_of(record) == key_value:
            results.append((RID(*entry.rid), record))
    yield Delay(system.config.tree_visit_cost)
    system.metrics.incr("query.index_lookups")
    return results


def index_range_scan(txn: "Transaction", descriptor: IndexDescriptor,
                     low_key, high_key, *,
                     serializable: bool = True):
    """Generator: committed records with ``low_key <= key < high_key``.

    With ``serializable=True`` the scan takes a next-key lock on the
    first key at/past ``high_key`` so no phantom can commit into the
    range before this transaction ends ([Moha90a]).
    Returns ``[(key_value, rid, record), ...]`` in key order.
    """
    _check_readable(descriptor,
                    high_key if high_key is not None else None)
    system = descriptor.system
    table = descriptor.table
    results = []
    last_rid_beyond: Optional[RID] = None
    for entry in _entries_in_range(descriptor, low_key, high_key,
                                   inclusive_high=False,
                                   capture_next=True):
        if entry is _RANGE_END:
            break
        if high_key is not None and entry.key_value >= high_key:
            last_rid_beyond = RID(*entry.rid)
            break
        yield from txn.lock(table.lock_name(RID(*entry.rid)), "S")
        if entry.pseudo_deleted:
            continue
        record = yield from table.read_latched(RID(*entry.rid))
        if record is not None:
            results.append((entry.key_value, RID(*entry.rid), record))
    if serializable:
        if last_rid_beyond is not None:
            lock_name = table.lock_name(last_rid_beyond)
        else:
            lock_name = ("index-eof", descriptor.name)
        yield from txn.lock(lock_name, "S")
        system.metrics.incr("query.range_next_key_locks")
    yield Delay(system.config.tree_visit_cost
                * max(1, len(results) // 8))
    system.metrics.incr("query.range_scans")
    return results


_RANGE_END = object()


def _entries_in_range(descriptor: IndexDescriptor, low_key, high_key, *,
                      inclusive_high: bool, capture_next: bool = False):
    """Entries with key in [low_key, high_key] / [low_key, high_key),
    plus (optionally) the first entry beyond, in key order.

    Snapshot-per-leaf iteration: safe against concurrent structure
    changes because each step re-validates via the leaf chain (all code
    between simulator yields is atomic; callers lock records before
    trusting what they saw).
    """
    tree = descriptor.tree
    if tree.root is None:
        return
    from repro.btree.tree import MIN_RID
    leaf, _path = tree._traverse((low_key, MIN_RID), count=False)
    while leaf is not None:
        for entry in list(leaf.entries):
            if entry.key_value < low_key:
                continue
            if high_key is not None:
                beyond = (entry.key_value > high_key if inclusive_high
                          else entry.key_value >= high_key)
                if beyond:
                    yield entry
                    return
            yield entry
        leaf = (tree.pages.get(leaf.next_leaf)
                if leaf.next_leaf is not None else None)
    if capture_next:
        yield _RANGE_END


def table_scan(txn: "Transaction", table: "Table", predicate=None):
    """Generator: full-scan fallback (what the new index exists to avoid).

    S-locks and returns every matching committed record; charges the full
    sequential-scan I/O cost through the buffer pool.
    """
    system = table.system
    results = []
    page_no = 0
    while page_no < table.page_count:
        upto = min(page_no + system.config.prefetch_pages,
                   table.page_count)
        page_ids = [table.page_id(p) for p in range(page_no, upto)]
        pages = yield from system.buffer.fetch_sequential(page_ids)
        for page in pages:
            yield Acquire(page.latch, SHARE)
            try:
                live = page.live_records()
            finally:
                page.latch.release(system.sim.current)
            for rid, record in live:
                yield from txn.lock(table.lock_name(rid), "S")
                current = yield from table.read_latched(rid)
                if current is None:
                    continue
                if predicate is None or predicate(current):
                    results.append((rid, current))
        page_no = upto
    system.metrics.incr("query.table_scans")
    return results
