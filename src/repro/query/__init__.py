"""Read access paths over tables and (finished) indexes."""

from repro.query.access import (
    IndexNotAvailableError,
    index_lookup,
    index_range_scan,
    set_gradual_availability,
    table_scan,
)

__all__ = [
    "IndexNotAvailableError",
    "index_lookup",
    "index_range_scan",
    "set_gradual_availability",
    "table_scan",
]
