"""Open-loop traffic against a cluster: routed reads, primary writes.

:class:`ClusterOpenLoopDriver` keeps the base driver's arrival
schedule, operation mix, key skew, and write-transaction machinery, and
changes *where* each operation runs:

* writes always target the current primary (single-master);
* point reads go wherever :meth:`Router.route_point` says;
* range reads draw their filter column first, then ask
  :meth:`Router.route_range` for a fresh replica serving that column
  from an AVAILABLE index -- this is the end-to-end payoff of divergent
  per-replica builds.

Every operation *adopts* into the node it touches, so a node crash
unwinds exactly the in-flight operations on that node -- they complete
with outcome ``node_down`` rather than hanging or corrupting the
latency record (their latency is excluded like any non-committed op).
During a failover window new operations hold at issue time until the
new primary is installed; the held time counts against their latency,
which is exactly what an SLO should see from a failover.

Replica reads run with ``serializable=False`` (no next-key locking):
a replica read is already a snapshot-stale read bounded by the router's
staleness check, so phantom protection against the apply stream would
add deadlocks for no additional guarantee.
"""

from __future__ import annotations

import random
from typing import Optional, TYPE_CHECKING

from repro.errors import NodeDown, RecordNotFoundError, TransactionAborted
from repro.query.access import (
    IndexNotAvailableError,
    index_range_scan,
    table_scan,
)
from repro.sim.kernel import Delay
from repro.workloads.openloop import OpenLoopDriver, OpenLoopSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import ClusterNode


class ClusterOpenLoopDriver(OpenLoopDriver):
    """Open-loop traffic whose reads are routed across the cluster."""

    def __init__(self, cluster: "Cluster", table_name: str,
                 spec: Optional[OpenLoopSpec] = None, seed: int = 0,
                 index_name: Optional[str] = None) -> None:
        self.cluster = cluster
        self.table_name = table_name
        super().__init__(cluster.primary.system,
                         cluster.primary.system.tables[table_name],
                         spec, seed, index_name=index_name)
        self.dispatcher_proc = None
        cluster.driver = self

    # -- dispatch ----------------------------------------------------------

    def spawn(self):
        """Spawn the dispatcher as a *cluster-resident* process: arrivals
        keep firing through node deaths and failovers."""
        self.started_at = self.cluster.sim.now
        self.dispatcher_proc = self.cluster.spawn(self.dispatcher(),
                                                  name="openloop")
        return self.dispatcher_proc

    def issuance_done(self) -> bool:
        return self.dispatcher_proc is not None \
            and self.dispatcher_proc.finished

    def _op_body(self, op_id: int, op: str, rng):
        tracer = self.cluster.tracer
        span = tracer.begin_span("op", op=op, id=op_id)
        outcome = "error"
        try:
            try:
                if op in ("read", "range"):
                    outcome = yield from self._read_op(op, rng)
                else:
                    yield from self._await_stable()
                    self.cluster.primary.adopt(self.cluster.sim.current)
                    yield from self._one_transaction(rng, 0, op)
                    outcome = self.op_timeline[-1].outcome
            except NodeDown:
                # The node serving this operation died under it; the
                # write (if any) is rolled back by that node's restart.
                outcome = "node_down"
                self._record(op, 0, "node_down")
                self.cluster.metrics.incr("cluster.ops_node_down")
        finally:
            self.inflight -= 1
            self._gauge_inflight()
            tracer.end_span(span, outcome=outcome)

    def _await_stable(self):
        """Generator: hold the operation while the write master is in
        flux.  The wait lands in the op's latency -- failover is not
        free and the SLO report should show it."""
        cluster = self.cluster
        while cluster.failing_over or cluster.primary.down \
                or cluster.primary.recovering:
            yield Delay(1.0)

    # -- routed reads ------------------------------------------------------

    def _read_op(self, op: str, rng):
        issued = self.cluster.sim.now
        yield from self._await_stable()
        router = self.cluster.router
        low = 0
        column: Optional[str] = None
        if op == "range":
            # Draw the filter column *before* routing so the router can
            # match it against each replica's divergent index set.
            low = self._draw_key(rng)
            if self._range_columns:
                column = rng.choices(
                    [name for name, _weight in self._range_columns],
                    weights=[weight for _name, weight
                             in self._range_columns])[0]
                node = router.route_range(self.table_name, column)
            else:
                node = router.route_point()
        else:
            node = router.route_point()
        node.adopt(self.cluster.sim.current)
        system = node.system
        table = system.tables[self.table_name]
        serializable = node.role == "primary"
        txn = system.txns.begin(f"ol-{op}")
        try:
            if op == "read":
                rid = self._sample_rid(rng)
                if rid is not None:
                    try:
                        yield from table.read(txn, rid)
                    except RecordNotFoundError:
                        # Concurrent delete won the race -- or a lagging
                        # replica has not applied this RID yet.  Either
                        # way: an empty (stale) result, not an error.
                        pass
                else:
                    op = "noop"
            else:
                yield from self._routed_range_read(
                    txn, system, table, low, column,
                    serializable=serializable)
            yield from txn.commit()
            self._record(op, 0, "committed", issued=issued)
            self.cluster.metrics.incr(f"cluster.reads.{node.name}")
            return "committed"
        except TransactionAborted:
            yield from txn.rollback()
            self._record(op, 0, "aborted", issued=issued)
            return "aborted"

    def _routed_range_read(self, txn, system, table, low: int,
                           column: Optional[str], *, serializable: bool):
        high = low + self.olspec.range_span
        position = 0
        descriptor = None
        if column is not None:
            position = table.columns.index(column)
            for candidate in table.indexes:
                key_columns = getattr(candidate, "key_columns", ())
                if key_columns and key_columns[0] == column:
                    descriptor = candidate
                    break
        elif self.index_name is not None:
            descriptor = system.indexes.get(self.index_name)
        if descriptor is not None:
            try:
                results = yield from index_range_scan(
                    txn, descriptor, (low,), (high,),
                    serializable=serializable)
                system.metrics.incr("openloop.range_via_index")
                self.cluster.metrics.incr("cluster.range_via_index")
                if column is not None:
                    system.metrics.incr(
                        f"openloop.range_via_index.{column}")
                    self.cluster.metrics.incr(
                        f"cluster.range_via_index.{column}")
                return results
            except IndexNotAvailableError:
                pass
        results = yield from table_scan(
            txn, table,
            predicate=lambda record: low <= record.values[position] < high)
        system.metrics.incr("openloop.range_via_scan")
        self.cluster.metrics.incr("cluster.range_via_scan")
        if column is not None:
            system.metrics.incr(f"openloop.range_via_scan.{column}")
        return results

    # -- failover ----------------------------------------------------------

    def rebind(self, node: "ClusterNode") -> None:
        """Re-point writes at the newly promoted primary.

        The RID pool is pruned to rows that survived the failover:
        committed-but-unshipped primary writes are lost (async
        replication, RPO > 0), and the pool must not keep handing out
        their RIDs as update/delete victims.
        """
        self.system = node.system
        self.table = node.system.tables[self.table_name]
        live = {rid for rid, _record in self.table.audit_records()}
        self.pool = {rid: key for rid, key in self.pool.items()
                     if rid in live}
        self.cluster.metrics.incr("cluster.driver_rebinds")
        self.cluster.tracer.instant("cluster.driver_rebound",
                                    primary=node.name)


def cluster_latency_report(driver: ClusterOpenLoopDriver,
                           window: Optional[tuple] = None) -> dict:
    """Latency percentiles per op class from the driver's own timeline.

    A trace-independent cross-check of the ``repro.slo`` span analyzer:
    uses :class:`OpRecord` issue stamps, optionally windowed on
    completion time.
    """
    from repro.slo.analyzer import percentile
    by_op: dict[str, list[float]] = {}
    for record in driver.op_timeline:
        if record.outcome != "committed" or record.issued < 0:
            continue
        if window is not None \
                and not (window[0] <= record.time <= window[1]):
            continue
        by_op.setdefault(record.op, []).append(record.latency)
    out: dict = {"by_op": {}}
    everything: list[float] = []
    for op, values in sorted(by_op.items()):
        everything.extend(values)
        out["by_op"][op] = {
            "count": len(values),
            "p50": percentile(values, 50.0),
            "p99": percentile(values, 99.0),
        }
    out["count"] = len(everything)
    out["p50"] = percentile(everything, 50.0) if everything else None
    out["p99"] = percentile(everything, 99.0) if everything else None
    return out
