"""Read routing: send each query to the best node that may serve it.

Writes always go to the primary (single-master replication).  Reads are
routed by two criteria, in order:

1. **Staleness** -- a replica is only eligible while its apply lag (in
   log records) is within ``staleness_bound``.  Eviction is hysteretic:
   once evicted, a replica is readmitted only after its lag falls below
   ``resume_fraction`` of the bound, so a replica hovering at the
   boundary does not flap in and out of the routing set.
2. **Index availability** -- a range query on column ``c`` prefers a
   fresh replica whose index leading on ``c`` has flipped AVAILABLE
   (ties broken by lag, then name).  This is where divergent tuning
   pays off: each replica serves the slice of the query mix its own
   index set covers.

Point reads spread across all fresh replicas (least-picked first) to
offload the primary.  When no replica qualifies -- none attached, all
lagging, mid-failover -- everything falls back to the primary, which is
always correct, just slower.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.descriptor import IndexState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import ClusterNode


class Router:
    """Staleness- and index-aware read routing over a cluster."""

    def __init__(self, cluster: "Cluster", *,
                 staleness_bound: float = 150.0,
                 resume_fraction: float = 0.5) -> None:
        if staleness_bound <= 0:
            raise ValueError("staleness_bound must be positive")
        if not 0.0 < resume_fraction <= 1.0:
            raise ValueError("resume_fraction must be in (0, 1]")
        self.cluster = cluster
        self.staleness_bound = staleness_bound
        self.resume_fraction = resume_fraction
        #: node names currently evicted for lagging
        self.evicted: set[str] = set()
        self._picks: dict[str, int] = {}

    # -- eligibility -------------------------------------------------------

    def fresh_replicas(self) -> list[tuple[int, "ClusterNode"]]:
        """Routable replicas as ``(lag, node)``, hysteresis applied."""
        out = []
        metrics = self.cluster.metrics
        for node in self.cluster.replicas():
            sub = node.subscription
            if node.down or node.recovering or sub is None \
                    or sub.stopped or sub.proc is None:
                continue
            lag = sub.lag()
            if node.name in self.evicted:
                if lag <= self.staleness_bound * self.resume_fraction:
                    self.evicted.discard(node.name)
                    metrics.incr("cluster.router.readmits")
                else:
                    continue
            elif lag > self.staleness_bound:
                self.evicted.add(node.name)
                metrics.incr("cluster.router.evictions")
                continue
            out.append((lag, node))
        return out

    # -- routing -----------------------------------------------------------

    def route_point(self) -> "ClusterNode":
        """Best node for a point read: least-picked fresh replica."""
        fresh = self.fresh_replicas()
        if not fresh:
            return self._to_primary()
        _lag, node = min(
            fresh, key=lambda pair: (self._picks.get(pair[1].name, 0),
                                     pair[1].name))
        return self._to_replica(node)

    def route_range(self, table_name: str, column: str) -> "ClusterNode":
        """Best node for a range read on ``column``: the freshest
        replica serving it from an AVAILABLE index, else the primary."""
        indexed = []
        for lag, node in self.fresh_replicas():
            if self._available_index(node, table_name, column) is not None:
                indexed.append((lag, node.name, node))
        if indexed:
            indexed.sort(key=lambda entry: (entry[0], entry[1]))
            return self._to_replica(indexed[0][2])
        return self._to_primary()

    @staticmethod
    def _available_index(node: "ClusterNode", table_name: str,
                         column: str) -> Optional[object]:
        table = node.system.tables.get(table_name)
        if table is None:
            return None
        for descriptor in table.indexes:
            key_columns = getattr(descriptor, "key_columns", ())
            if key_columns and key_columns[0] == column \
                    and descriptor.state is IndexState.AVAILABLE:
                return descriptor
        return None

    # -- accounting --------------------------------------------------------

    def _to_primary(self) -> "ClusterNode":
        self.cluster.metrics.incr("cluster.router.to_primary")
        return self.cluster.primary

    def _to_replica(self, node: "ClusterNode") -> "ClusterNode":
        self._picks[node.name] = self._picks.get(node.name, 0) + 1
        metrics = self.cluster.metrics
        metrics.incr("cluster.router.to_replica")
        metrics.incr(f"cluster.router.pick.{node.name}")
        return node
