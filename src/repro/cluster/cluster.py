"""The simulated replication cluster: primary, replicas, failover.

A :class:`Cluster` owns one shared :class:`~repro.sim.kernel.Simulator`
that every member :class:`~repro.system.System` runs on -- one clock,
one schedule, many nodes -- plus its own metrics registry (the fault
injector's install target for the ``cluster.*`` sites) and one
:class:`~repro.obs.recorder.TraceRecorder` shared by every node, so a
single trace tells the whole ship/apply/build/failover story.

Division of labour:

* :mod:`repro.cluster.ship` runs replication (one subscription process
  per replica) and *detects* faults;
* this module *repairs* them, always from cluster-resident processes
  (a node-resident process cannot orchestrate its own node's death):

  - :meth:`recover_replica` -- crash the replica, run ARIES-lite
    restart **on the shared clock** (:func:`restart_on`), resume or
    reissue its interrupted index builds, resubscribe from its durable
    floor;
  - :meth:`trigger_failover` -- kill the primary, stop survivors'
    subscriptions, promote the most-caught-up replica (ranked by its
    committed origin floor for the dead primary's records), re-point
    everyone -- including the traffic driver -- at the winner.  The
    ``cluster.promote`` fault site lives inside the promotion loop:
    a candidate that dies mid-promotion is recovered and retried.

Divergent index tuning rides on top: :meth:`start_build` runs any of
the paper's online builders against one replica while that replica
keeps applying the log, and :func:`plan_divergent_indexes` feeds the
advisor a per-replica slice of the query mix to choose each replica's
set.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.cluster.apply import committed_origin_floors
from repro.cluster.node import ClusterNode, NetworkLink
from repro.cluster.router import Router
from repro.cluster.ship import Subscription
from repro.core import build_pre_undo, get_builder, resume_builds
from repro.faultinject.injector import InjectedCrash
from repro.faultinject.sites import fault_point
from repro.metrics import MetricsRegistry
from repro.obs.recorder import TraceRecorder
from repro.recovery.restart import restart_on
from repro.sim.kernel import Delay, Simulator
from repro.system import System, SystemConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import BuildOptions, IndexSpec


class Cluster:
    """A primary and N replicas on one simulated clock."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 seed: int = 0, *,
                 staleness_bound: float = 150.0,
                 resume_fraction: float = 0.5,
                 link_latency: float = 1.0,
                 link_bandwidth: Optional[float] = None,
                 batch_records: int = 24,
                 poll_interval: float = 2.0) -> None:
        self.sim = Simulator()
        self.metrics = MetricsRegistry()
        self.tracer = TraceRecorder()
        self.tracer.bind(self.sim)
        self.metrics.tracer = self.tracer
        self.config = config or SystemConfig()
        self.seed = seed
        self.link_latency = link_latency
        self.link_bandwidth = link_bandwidth
        self.batch_records = batch_records
        self.poll_interval = poll_interval
        self.nodes: dict[str, ClusterNode] = {}
        self.failing_over = False
        self.settled = False
        self.driver = None  # set by ClusterOpenLoopDriver
        primary_system = System(self.config, seed, sim=self.sim)
        primary_system.metrics.tracer = self.tracer
        self.primary = ClusterNode(self, "node0", primary_system, "primary")
        self.nodes["node0"] = self.primary
        self.router = Router(self, staleness_bound=staleness_bound,
                             resume_fraction=resume_fraction)

    # -- membership --------------------------------------------------------

    def replicas(self) -> list[ClusterNode]:
        return [node for node in self.nodes.values()
                if node.role == "replica"]

    def add_replica(self, name: Optional[str] = None, *,
                    latency: Optional[float] = None,
                    bandwidth: Optional[float] = None) -> ClusterNode:
        """Attach a fresh replica and start shipping to it.

        The new system joins the shared simulator with a copy of the
        primary's catalog (tables only -- indexes are each replica's
        own business) and bootstraps its data entirely through the
        subscription: the primary's whole durable log replays through
        the ordinary apply path.
        """
        name = name or f"node{len(self.nodes)}"
        if name in self.nodes:
            raise ValueError(f"node name {name!r} already in use")
        system = System(self.config, self.seed + len(self.nodes),
                        sim=self.sim)
        system.metrics.tracer = self.tracer
        link = NetworkLink(
            latency=self.link_latency if latency is None else latency,
            bandwidth=self.link_bandwidth if bandwidth is None
            else bandwidth)
        node = ClusterNode(self, name, system, "replica", link=link)
        for table in self.primary.system.tables.values():
            if hasattr(table, "page_capacity"):
                system.create_table(table.name, table.columns,
                                    page_capacity=table.page_capacity)
        self.nodes[name] = node
        self._subscribe(node, self.primary)
        self.metrics.incr("cluster.replicas_added")
        self.tracer.instant("cluster.replica_added", node=name)
        return node

    def rejoin_as_replica(self, old_name: str,
                          new_name: Optional[str] = None) -> ClusterNode:
        """Bring a failed ex-primary back into the fleet -- as a *new*
        replica with a full resync.

        Its old durable state may contain committed writes the rest of
        the cluster never saw (shipped log is async: RPO > 0); rather
        than reconcile divergent histories, the rejoining node discards
        them and bootstraps from the current primary like any fresh
        replica.  A fresh node name keeps its new native LSN space
        distinct from its previous incarnation's.
        """
        old = self.nodes.get(old_name)
        if old is None or old.role != "failed":
            raise ValueError(f"{old_name!r} is not a failed node")
        name = new_name or f"{old_name}r{len(self.nodes)}"
        node = self.add_replica(name)
        old.role = "retired"  # one rejoin per incarnation
        self.metrics.incr("cluster.rejoins")
        return node

    def _subscribe(self, node: ClusterNode,
                   upstream: ClusterNode) -> Subscription:
        sub = Subscription(self, node, upstream, node.link,
                           batch_records=self.batch_records,
                           poll_interval=self.poll_interval)
        node.subscription = sub
        sub.start()
        return sub

    # -- kernel ------------------------------------------------------------

    def spawn(self, body, name: str = "proc"):
        """Spawn a cluster-resident process (survives any node death)."""
        return self.sim.spawn(body, name=f"cluster.{name}")

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    # -- index builds ------------------------------------------------------

    def start_build(self, node: ClusterNode, mode: str, specs, *,
                    options: Optional["BuildOptions"] = None,
                    table_name: Optional[str] = None):
        """Run an online index build on ``node`` while it keeps applying
        (or, on the primary, serving) the write stream."""
        table_name = table_name or next(iter(node.system.tables))
        builder = get_builder(mode)(
            node.system, node.system.tables[table_name], list(specs),
            options)
        node.planned_builds.append(
            (mode, table_name, list(builder.specs), options))
        proc = node.spawn(builder.run(), name=f"build-{mode}")
        node.build_procs.append(proc)
        self.metrics.incr("cluster.builds_started")
        self.tracer.instant("cluster.build_started", node=node.name,
                            mode=mode,
                            indexes=[spec.name for spec in builder.specs])
        return builder, proc

    # -- replica crash recovery --------------------------------------------

    def recover_replica(self, node: ClusterNode):
        """Crash ``node`` and recover it in the background (idempotent)."""
        if node.recovering:
            return None
        node.recovering = True
        return self.spawn(self._recover_replica_body(node),
                          name=f"recover-{node.name}")

    def _recover_replica_body(self, node: ClusterNode):
        try:
            node.kill()
            yield from self._restart_node(node)
            while self.failing_over:
                yield Delay(0.5)
            if node.role == "replica" and self.primary is not node \
                    and not self.primary.down:
                self._subscribe(node, self.primary)
        finally:
            node.recovering = False

    def _restart_node(self, node: ClusterNode):
        """Generator: ARIES-lite restart of one node on the shared clock,
        then resume (or reissue) its interrupted index builds."""
        span = self.tracer.begin_span("cluster.recover", node=node.name)
        node.subscription = None
        node.build_procs = []
        system, utility_state = yield from restart_on(
            node.system, self.sim, pre_undo=build_pre_undo)
        system.metrics.tracer = self.tracer
        node.system = system
        node.down = False
        for builder in resume_builds(system, utility_state):
            proc = node.spawn(builder.run(), name="resume-build")
            node.build_procs.append(proc)
        # A crash before a build's first checkpoint leaves nothing to
        # resume (the orphan descriptor was discarded); reissue it.
        for mode, table_name, specs, options in node.planned_builds:
            missing = [spec for spec in specs
                       if spec.name not in system.indexes]
            if missing:
                builder = get_builder(mode)(
                    system, system.tables[table_name], missing, options)
                proc = node.spawn(builder.run(), name="reissue-build")
                node.build_procs.append(proc)
                self.metrics.incr("cluster.builds_reissued")
        self.metrics.incr("cluster.node_recoveries")
        self.tracer.end_span(span, outcome="recovered")
        return system

    # -- failover ----------------------------------------------------------

    def trigger_failover(self):
        """Start primary failover in the background (idempotent)."""
        if self.failing_over:
            return None
        self.failing_over = True
        return self.spawn(self._failover_body(), name="failover")

    def _failover_body(self):
        old = self.primary
        span = self.tracer.begin_span("cluster.failover", old=old.name)
        try:
            old.kill()
            old.role = "failed"
            # Quiesce survivors' subscriptions: they point at the dead
            # node and will be re-pointed at the winner.
            subs = [node.subscription for node in self.replicas()
                    if node.subscription is not None]
            for sub in subs:
                sub.stop_requested = True
            while any(not sub.stopped for sub in subs):
                yield Delay(0.5)

            winner = yield from self._promote(old)
            if winner is None:
                # No replica left to promote: recover the old primary
                # itself (a restart, not a failover -- there is nobody
                # to fail over *to*).
                yield from self._restart_node(old)
                old.role = "primary"
                self.primary = old
                self.tracer.end_span(span, outcome="restarted-primary")
                return old

            winner.role = "primary"
            winner.subscription = None
            self.primary = winner
            for node in self.replicas():
                if node.down or node.recovering:
                    continue  # its recovery body resubscribes later
                self._subscribe(node, winner)
            if self.driver is not None:
                self.driver.rebind(winner)
            self.metrics.incr("cluster.failovers")
            self.tracer.end_span(span, outcome="promoted",
                                 winner=winner.name)
            return winner
        finally:
            self.failing_over = False

    def _promote(self, old: ClusterNode):
        """Generator: promote the most-caught-up live replica.

        Candidates are ranked by their committed origin floor for the
        dead primary's native records (then total floors, then name).
        A candidate that crashes at the ``cluster.promote`` fault site
        is recovered in place and retried: its durable floor is intact,
        so it is still the right choice.
        """
        def rank(node: ClusterNode):
            floors = committed_origin_floors(node.system)
            return (-floors.get(old.name, 0), -sum(floors.values()),
                    node.name)

        candidates = sorted(
            (node for node in self.replicas()
             if not node.down and not node.recovering), key=rank)
        for node in candidates:
            while True:
                try:
                    fault_point(self.metrics, "cluster.promote")
                except InjectedCrash:
                    node.kill()
                    yield from self._restart_node(node)
                    continue
                self.metrics.incr("cluster.promotions")
                self.tracer.instant("cluster.promoted", node=node.name)
                return node
        return None

    # -- quiescing ---------------------------------------------------------

    def settle(self, driver=None, *, poll: float = 2.0):
        """Spawn the controller that winds the cluster down once traffic
        is done, builds are finished, and every replica has caught up --
        at which point it stops the subscriptions so the simulator can
        drain.  Without it, the poll-driven ship loops run forever."""
        return self.spawn(self._settle_body(driver, poll), name="settle")

    def _settle_body(self, driver, poll: float):
        while True:
            yield Delay(poll)
            if self.failing_over:
                continue
            nodes = [node for node in self.nodes.values()
                     if node.role in ("primary", "replica")]
            if any(node.down or node.recovering for node in nodes):
                continue
            if driver is not None and not driver.issuance_done():
                continue
            if driver is not None and driver.inflight > 0:
                continue
            if not all(node.builds_done() for node in nodes):
                continue
            if any(node.subscription is None for node in self.replicas()):
                continue
            # Roll the primary's unflushed tail (rollback records never
            # force) so "caught up" means the entire history.
            self.primary.system.log.flush()
            subs = [node.subscription for node in self.replicas()]
            if any(not sub.stopped and sub.lag() > 0 for sub in subs):
                continue
            break
        subs = [node.subscription for node in self.replicas()
                if node.subscription is not None]
        for sub in subs:
            sub.stop_requested = True
        while any(not sub.stopped for sub in subs):
            yield Delay(1.0)
        self.settled = True
        self.tracer.instant("cluster.settled")


def plan_divergent_indexes(cluster: Cluster, table_name: str,
                           slices: dict, budget_pages: int, *,
                           max_width: int = 2) -> dict:
    """Per-replica advisor runs over per-replica slices of the query mix.

    ``slices`` maps node name -> :class:`OpenLoopSpec` describing the
    share of the fleet's query mix that replica should specialize for
    (typically a subset of ``range_columns``).  Statistics come from
    the primary -- the authoritative copy of the data the replicas
    mirror.  Returns ``{node_name: (AdvisorReport, [IndexSpec, ...])}``.
    """
    from repro.advisor import (
        AdvisorConfig,
        TableStats,
        recommend,
        templates_from_spec,
    )
    stats = TableStats.from_table(cluster.primary.system,
                                  cluster.primary.system.tables[table_name])
    config = AdvisorConfig(storage_budget_pages=budget_pages,
                           max_index_width=max_width)
    plans = {}
    for name, olspec in slices.items():
        report = recommend(templates_from_spec(olspec), stats, config)
        plans[name] = (report, report.specs())
    return plans
