"""Replication-cluster bench (``python -m repro.cluster.bench``).

The end-to-end demo of the PR: under one fixed open-loop traffic mix,

* ``baseline/no_replicas`` -- a bare primary, no replicas, no indexes:
  every range read is a primary table scan (the mix's worst case);
* ``cluster/divergent`` -- two replicas apply the shipped WAL while the
  advisor (:func:`repro.cluster.cluster.plan_divergent_indexes`) gives
  each a *different* slice of the range-column mix to specialize for;
  each replica builds its picks online without quiescing apply, and the
  router starts sending each range query to the replica whose index
  serves it.  The headline number: routed range p99 *after* every
  replica's indexes flip AVAILABLE, vs the baseline's range p99;
* ``cluster/failover`` -- the same fleet with a scripted mid-run
  primary failure: the most-caught-up replica is promoted, traffic
  rebinds, and commits keep flowing after the failover instant.

Every scenario must also pass the cross-replica consistency oracle --
the bench publishes no number the oracle has not stood behind.

All numbers are on the simulated clock, so reruns are byte-identical;
CI gates drift against the committed ``BENCH_PR8.json`` with
``--check-against`` exactly like the other bench suites.

Usage::

    python -m repro.cluster.bench --out BENCH_PR8.json
    python -m repro.cluster.bench --smoke --out /tmp/now.json \\
        --check-against BENCH_PR8.json --max-regression 0.30
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Callable, Optional

from repro.cluster.cluster import plan_divergent_indexes
from repro.cluster.oracle import check_cluster
from repro.cluster.scenario import (
    BUILD_OPTIONS,
    TABLE,
    build_scenario,
    run_scenario,
    scenario_spec,
)
from repro.sim.kernel import Delay
from repro.slo.analyzer import latency_report

SCHEMA_VERSION = 1
SUITE_NAME = "repro.cluster.bench"

#: one fixed traffic/cluster shape for every scenario.  The table is
#: deliberately larger than the buffer pool and each node's disk serves
#: one I/O at a time, so an unindexed range read is a genuinely
#: expensive scan -- the regime the paper's indexes exist for.
PARAMS = {
    "seed": 11,
    "records": 400,
    "operations": 240,
    "rate": 0.05,
    "replicas": 2,
    "failover_at": 300.0,
    "buffer_frames": 24,
    "disk_channels": 1,
    "advisor_budget_pages": 300,
    "min_post_flip_ranges": 5,
}

#: per-replica slices of the range mix the advisor specializes for
SLICES = {
    "node1": (("k", 2.0),),
    "node2": (("a", 1.5), ("b", 1.0)),
}

COUNTERS = (
    "cluster.batches_shipped",
    "cluster.router.to_primary",
    "cluster.router.to_replica",
    "cluster.range_via_index",
    "cluster.range_via_scan",
    "cluster.failovers",
    "cluster.node_recoveries",
    "cluster.driver_rebinds",
    "cluster.builds_started",
)

#: smoke runs the IDENTICAL traffic -- the whole suite takes seconds on
#: the simulated clock, and identical params are what make CI's drift
#: gate against the committed full baseline compare like with like
SMOKE_PARAMS: dict = {}


def _params(mode: str) -> dict:
    params = dict(PARAMS)
    if mode == "smoke":
        params.update(SMOKE_PARAMS)
    return params


def _scenario_kwargs(params: dict) -> dict:
    import dataclasses as _dc

    from repro.cluster.scenario import SCENARIO_CONFIG
    config = _dc.replace(SCENARIO_CONFIG,
                         buffer_frames=params["buffer_frames"],
                         disk_channels=params["disk_channels"])
    return dict(records=params["records"],
                operations=params["operations"],
                rate=params["rate"], seed=params["seed"],
                config=config)


def _counters(cluster) -> dict:
    return {key: cluster.metrics.get(key) for key in COUNTERS
            if cluster.metrics.get(key)}


def _base_row(cluster, driver, summary, params: dict) -> dict:
    return {
        "params": dict(params),
        "latency": latency_report(cluster.tracer.events),
        "counters": _counters(cluster),
        "oracle": summary,
        "end_time": cluster.sim.now,
    }


def _run_baseline(params: dict) -> dict:
    cluster, driver, summary, _ = run_scenario(
        replicas=0, builds=False, **_scenario_kwargs(params))
    row = _base_row(cluster, driver, summary, params)
    row["params"]["shape"] = "baseline"
    return row


def _run_divergent(params: dict) -> dict:
    cluster, driver = build_scenario(
        replicas=params["replicas"], **_scenario_kwargs(params))
    base_spec = scenario_spec(params["operations"], params["rate"])
    slices = {name: dataclasses.replace(base_spec, range_columns=cols)
              for name, cols in SLICES.items()}
    plans = plan_divergent_indexes(cluster, TABLE, slices,
                                   params["advisor_budget_pages"])
    advisor_row: dict[str, Any] = {}
    for name, (report, specs) in sorted(plans.items()):
        if not specs:
            raise AssertionError(f"advisor picked nothing for {name}")
        mode = "multi" if len(specs) > 1 else "sf"
        cluster.start_build(cluster.nodes[name], mode, specs,
                            options=BUILD_OPTIONS, table_name=TABLE)
        advisor_row[name] = {
            "picks": [list(pick.key_columns) for pick in report.picks],
            "initial_cost": report.initial_cost,
            "final_cost": report.final_cost,
            "storage_used": report.storage_used,
        }
    driver.spawn()

    available_at: dict[str, float] = {}

    def flip_monitor():
        waiting = set(SLICES)
        while waiting:
            for name in sorted(waiting):
                if cluster.nodes[name].builds_done():
                    available_at[name] = cluster.sim.now
            waiting -= set(available_at)
            yield Delay(2.0)

    cluster.spawn(flip_monitor(), name="flip-monitor")
    cluster.settle(driver)
    cluster.run(until=20_000.0)
    assert cluster.settled, "divergent scenario did not settle"
    cluster.run()
    summary = check_cluster(cluster, driver)

    row = _base_row(cluster, driver, summary, params)
    row["params"]["shape"] = "divergent"
    row["advisor"] = advisor_row
    row["available_at"] = dict(sorted(available_at.items()))
    flip_done = max(available_at.values())
    post = latency_report(cluster.tracer.events,
                          window=(flip_done, cluster.sim.now))
    ranges = post["by_op"].get("range", {})
    row["post_flip"] = {
        "window": [flip_done, cluster.sim.now],
        "range_ops": ranges.get("ops", 0),
        "range_p99": ranges.get("p99"),
        "p99": post["p99"],
    }
    return row


def _run_failover(params: dict) -> dict:
    cluster, driver, summary, _ = run_scenario(
        replicas=params["replicas"], failover_at=params["failover_at"],
        **_scenario_kwargs(params))
    row = _base_row(cluster, driver, summary, params)
    row["params"]["shape"] = "failover"
    cut = params["failover_at"]
    row["failover"] = {
        "at": cut,
        "new_primary": cluster.primary.name,
        "committed_after": sum(
            1 for record in driver.op_timeline
            if record.outcome == "committed" and record.time > cut),
        "ops_node_down": cluster.metrics.get("cluster.ops_node_down"),
    }
    return row


def _scenarios(params: dict) -> list[tuple[str, Callable[[], dict]]]:
    return [
        ("baseline/no_replicas", lambda: _run_baseline(params)),
        ("cluster/divergent", lambda: _run_divergent(params)),
        ("cluster/failover", lambda: _run_failover(params)),
    ]


# ---------------------------------------------------------------------------
# suite driver, gates, CLI (the shape shared by the other bench suites)
# ---------------------------------------------------------------------------


def run_suite(mode: str = "full", *, only: Optional[str] = None,
              echo: Callable[[str], None] = lambda line: None) -> dict:
    params = _params(mode)
    scenarios: list[dict] = []
    for name, thunk in _scenarios(params):
        if only is not None and not name.startswith(only):
            continue
        scenario: dict[str, Any] = {"name": name, "ok": True}
        try:
            scenario.update(thunk())
        except Exception as exc:  # noqa: BLE001 - recorded, gated later
            scenario["ok"] = False
            scenario["error"] = f"{type(exc).__name__}: {exc}"
            echo(f"  FAIL {name}: {scenario['error']}")
        else:
            echo(f"  ok   {name:22s} "
                 f"p99={scenario['latency']['p99']:7.1f}  "
                 f"range_p99="
                 f"{scenario['latency']['by_op']['range']['p99']:7.1f}")
        scenarios.append(scenario)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "mode": mode,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }
    if only is not None:
        payload["only"] = only
    return payload


def find_scenario(payload: dict, name: str) -> Optional[dict]:
    for scenario in payload.get("scenarios", []):
        if scenario.get("name") == name:
            return scenario
    return None


def validate_payload(payload: dict) -> list[str]:
    problems: list[str] = []
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    if payload.get("suite") != SUITE_NAME:
        problems.append("suite name mismatch")
    if payload.get("mode") not in ("full", "smoke"):
        problems.append("mode must be 'full' or 'smoke'")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        return problems + ["scenarios must be a non-empty list"]
    names = set()
    for scenario in scenarios:
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            problems.append("scenario without a name")
            continue
        if name in names:
            problems.append(f"duplicate scenario {name}")
        names.add(name)
        if not isinstance(scenario.get("ok"), bool):
            problems.append(f"{name}: ok must be a bool")
        if scenario.get("ok") \
                and not (scenario.get("oracle") or {}).get("ok"):
            problems.append(f"{name}: oracle summary missing or not ok")
    if payload.get("only") is None:
        for expected in ("baseline/no_replicas", "cluster/divergent",
                         "cluster/failover"):
            if expected not in names:
                problems.append(f"{expected} scenario missing")
    return problems


def _bench_gates(payload: dict) -> list[str]:
    """The suite's own acceptance gates (no reference needed)."""
    problems: list[str] = []
    baseline = find_scenario(payload, "baseline/no_replicas")
    divergent = find_scenario(payload, "cluster/divergent")
    failover = find_scenario(payload, "cluster/failover")
    if baseline is not None and baseline.get("ok"):
        counters = baseline.get("counters", {})
        if counters.get("cluster.router.to_replica"):
            problems.append("baseline: routed reads to a replica with "
                            "zero replicas attached")
    if divergent is not None and divergent.get("ok"):
        counters = divergent.get("counters", {})
        post = divergent.get("post_flip", {})
        if not counters.get("cluster.router.to_replica"):
            problems.append("divergent: no reads were routed to replicas")
        if not counters.get("cluster.range_via_index"):
            problems.append("divergent: no range read went via a "
                            "replica index")
        picks = {name: row.get("picks", [])
                 for name, row in (divergent.get("advisor") or {}).items()}
        for name, node_picks in sorted(picks.items()):
            if not node_picks:
                problems.append(f"divergent: advisor picked nothing "
                                f"for {name}")
        leading = {tuple(p[:1]) for node_picks in picks.values()
                   for p in node_picks}
        if len(leading) < 2:
            problems.append(
                f"divergent: replicas did not diverge -- leading "
                f"columns {sorted(leading)}")
        min_ranges = (divergent.get("params") or {}).get(
            "min_post_flip_ranges", 0)
        if post.get("range_ops", 0) < min_ranges:
            problems.append(
                f"divergent: only {post.get('range_ops')} committed "
                f"range reads after the last flip (need {min_ranges})")
        if baseline is not None and baseline.get("ok") \
                and post.get("range_p99") is not None:
            base_p99 = baseline["latency"]["by_op"]["range"]["p99"]
            if not post["range_p99"] < base_p99:
                problems.append(
                    f"divergent: post-flip routed range p99 "
                    f"{post['range_p99']:.1f} not below the scan-only "
                    f"baseline's {base_p99:.1f}")
    if failover is not None and failover.get("ok"):
        counters = failover.get("counters", {})
        info = failover.get("failover", {})
        if counters.get("cluster.failovers") != 1:
            problems.append(
                f"failover: expected exactly 1 failover, got "
                f"{counters.get('cluster.failovers')}")
        if counters.get("cluster.driver_rebinds") != 1:
            problems.append("failover: traffic driver did not rebind")
        if not info.get("committed_after"):
            problems.append("failover: no operation committed after "
                            "the primary died")
    return problems


def _compare_scenario(name: str, scenario: dict, reference: dict,
                      max_regression: float) -> list[str]:
    problems = []
    fields = [
        ("latency.p99", (scenario.get("latency") or {}).get("p99"),
         (reference.get("latency") or {}).get("p99")),
        ("post_flip.range_p99",
         (scenario.get("post_flip") or {}).get("range_p99"),
         (reference.get("post_flip") or {}).get("range_p99")),
    ]
    for field, new, ref in fields:
        if not isinstance(new, (int, float)) \
                or not isinstance(ref, (int, float)) or ref == 0:
            continue
        drift = abs(new - ref) / ref
        if drift > max_regression:
            problems.append(
                f"{name}: {field} {new:.2f} drifted {drift:.0%} from "
                f"reference {ref:.2f} (tolerance {max_regression:.0%})")
    return problems


def check_payload(payload: dict, reference: Optional[dict] = None, *,
                  max_regression: float = 0.30) -> list[str]:
    """Full gate: schema + scenario failures + bench gates + drift."""
    problems = validate_payload(payload)
    for scenario in payload.get("scenarios", []):
        if not scenario.get("ok"):
            problems.append(
                f"scenario {scenario.get('name')} failed: "
                f"{scenario.get('error', 'unknown error')}")
    problems.extend(_bench_gates(payload))
    if reference is not None:
        for scenario in payload.get("scenarios", []):
            if not scenario.get("ok"):
                continue
            ref = find_scenario(reference, scenario["name"])
            if ref is None or not ref.get("ok"):
                continue
            problems.extend(_compare_scenario(
                scenario["name"], scenario, ref, max_regression))
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.bench",
        description="replication cluster end-to-end demo: divergent "
                    "per-replica online builds, routed reads, failover")
    parser.add_argument("--out", required=True,
                        help="write the results JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="smaller traffic (CI)")
    parser.add_argument("--only", metavar="PREFIX", default=None,
                        help="run only scenarios whose name starts with "
                             "PREFIX (skips completeness validation)")
    parser.add_argument("--check-against", metavar="REF",
                        help="reference JSON to gate drift against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed relative drift vs the reference "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    suffix = f", only={args.only}" if args.only else ""
    print(f"cluster bench suite ({mode}{suffix})")
    payload = run_suite(mode, only=args.only, echo=print)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.only:
        problems = [] if payload["scenarios"] else \
            [f"--only {args.only} matched no scenarios"]
        for scenario in payload["scenarios"]:
            if not scenario.get("ok"):
                problems.append(
                    f"scenario {scenario.get('name')} failed: "
                    f"{scenario.get('error', 'unknown error')}")
    else:
        reference = None
        if args.check_against:
            with open(args.check_against, "r", encoding="utf-8") as handle:
                reference = json.load(handle)
        problems = check_payload(payload, reference,
                                 max_regression=args.max_regression)
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(f"ok: {len(payload['scenarios'])} scenario(s)")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
