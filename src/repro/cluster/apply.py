"""The replica apply path: redo shipped heap records as local updates.

Replication here is *physical and logical at once*: the shipped record
is the primary's physical ``heap.put`` / ``heap.clear`` redo payload
(the same payloads ARIES-lite restart replays), but the replica applies
it through its own full write path -- page latch, record lock, local
WAL record, and crucially its own **index maintenance**
(:meth:`prepare_insert` and friends).  That last part is the point of
the whole subsystem: a replica building a divergent index online keeps
its side-file fed by the apply loop exactly as a primary build is fed
by foreground updates, so the paper's no-quiesce machinery carries over
to replication unchanged.

Every applied record is tagged in its local WAL ``info`` with the
identity of the *original* write -- ``(upstream, origin_lsn)``, the
writer node's name and its local LSN.  Tags survive re-shipping (a
record applied from a promoted ex-replica keeps its original writer's
tag), which is what makes exactly-once apply work across failovers:
:func:`committed_origin_floors` recovers, per original writer, the
highest origin LSN this replica has durably committed, and the shipper
skips everything at or below the floor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.sim.kernel import Acquire, Delay
from repro.sim.latch import EXCLUSIVE
from repro.storage.page import Record
from repro.storage.rid import RID
from repro.wal.records import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table
    from repro.system import System
    from repro.txn.transaction import Transaction

#: redo operations a replica applies; everything else in the upstream
#: log (index internals, checkpoints, txn control) is node-local
SHIPPABLE_OPS = ("heap.put", "heap.clear")


def record_identity(upstream_name: str, record: LogRecord
                    ) -> tuple[str, int]:
    """The original ``(writer, origin_lsn)`` of a log record.

    A record the upstream itself applied from *its* upstream carries
    the original tag in ``info``; the upstream's native records are
    identified by its own name and local LSN.
    """
    info = record.info or {}
    writer = info.get("upstream")
    if writer is not None:
        return writer, int(info.get("origin_lsn", 0))
    return upstream_name, record.lsn


def shippable(record: LogRecord) -> bool:
    """True for records a replica replays (data-page history only)."""
    if record.kind not in (RecordKind.UPDATE, RecordKind.COMPENSATION):
        return False
    if record.redo is None:
        return False
    return record.redo[0] in SHIPPABLE_OPS


def apply_record(txn: "Transaction", system: "System", record: LogRecord,
                 writer: str, origin: int):
    """Generator: apply one shipped record inside the local ``txn``."""
    op, args = record.redo
    table = system.tables.get(args.get("table"))
    if table is None:
        raise StorageError(
            f"shipped record for unknown table {args.get('table')!r}")
    rid = RID(*args["rid"])
    if op == "heap.put":
        yield from _apply_put(txn, table, rid, tuple(args["values"]),
                              writer, origin)
    else:
        yield from _apply_clear(txn, table, rid, writer, origin)


def _apply_put(txn: "Transaction", table: "Table", rid: RID,
               values: tuple, writer: str, origin: int):
    """Insert-or-update at an exact RID, mirroring the primary's write.

    The primary's physical history dictates the slot, so the replica
    pre-extends the heap file to cover it, then classifies the put by
    peeking the slot: empty means the original was an insert, occupied
    an update.  Undo payloads are the standard ones -- a crashed apply
    transaction rolls back exactly like any local writer.
    """
    system = table.system
    record = Record(tuple(values))
    yield from table._intent_lock(txn)
    granted = yield from txn.lock(table.lock_name(rid), "X")
    assert granted
    while table.page_count <= rid.page_no:
        yield from table._allocate_page()
    page = yield from table._fetch_page(rid.page_no)
    yield Acquire(page.latch, EXCLUSIVE)
    try:
        old = page.peek(rid.slot)
        if old is None:
            snapshot = table.maintenance.prepare_insert(txn, rid, record)
            action = "insert"
            undo = ("heap.insert", {"table": table.name, "rid": rid,
                                    "values": record.values})
        else:
            snapshot = table.maintenance.prepare_update(txn, rid, old,
                                                        record)
            action = "update"
            undo = ("heap.update", {"table": table.name, "rid": rid,
                                    "old_values": old.values,
                                    "new_values": record.values})
        page.put(rid.slot, record)
        log_record = txn.log(
            RecordKind.UPDATE,
            page_id=page.page_id,
            redo=("heap.put", {"table": table.name, "rid": rid,
                               "values": record.values,
                               "capacity": table.page_capacity}),
            undo=undo,
            info={"table": table.name, "action": action, "rid": rid,
                  "visible_count": snapshot.count,
                  "sf_routed": list(snapshot.sf_routed),
                  "upstream": writer, "origin_lsn": origin},
        )
        system.buffer.mark_dirty(page, log_record.lsn)
    finally:
        page.latch.release(system.sim.current)
    yield Delay(system.config.record_op_cost)
    system.metrics.incr("cluster.applied_puts")
    yield from table.maintenance.apply_direct(txn, snapshot)


def _apply_clear(txn: "Transaction", table: "Table", rid: RID,
                 writer: str, origin: int):
    """Delete at an exact RID.  The slot must be occupied: shipping is
    exactly-once and in order, so a missing record means the replication
    invariant broke -- fail loudly rather than paper over it."""
    system = table.system
    yield from table._intent_lock(txn)
    granted = yield from txn.lock(table.lock_name(rid), "X")
    assert granted
    page = yield from table._fetch_page(rid.page_no)
    yield Acquire(page.latch, EXCLUSIVE)
    try:
        record = page.peek(rid.slot)
        if record is None:
            raise StorageError(
                f"shipped clear of empty slot {rid} on {table.name!r} "
                f"(writer={writer}, origin_lsn={origin})")
        snapshot = table.maintenance.prepare_delete(txn, rid, record)
        page.clear(rid.slot)
        log_record = txn.log(
            RecordKind.UPDATE,
            page_id=page.page_id,
            redo=("heap.clear", {"table": table.name, "rid": rid,
                                 "capacity": table.page_capacity}),
            undo=("heap.delete", {"table": table.name, "rid": rid,
                                  "values": record.values}),
            info={"table": table.name, "action": "delete", "rid": rid,
                  "visible_count": snapshot.count,
                  "sf_routed": list(snapshot.sf_routed),
                  "upstream": writer, "origin_lsn": origin},
        )
        system.buffer.mark_dirty(page, log_record.lsn)
    finally:
        page.latch.release(system.sim.current)
    yield Delay(system.config.record_op_cost)
    system.metrics.incr("cluster.applied_clears")
    yield from table.maintenance.apply_direct(txn, snapshot)


def committed_origin_floors(system: "System") -> dict[str, int]:
    """Per original writer, the highest origin LSN durably applied here.

    Scans the local log once: applied records are local UPDATEs tagged
    with ``(upstream, origin_lsn)``; only those whose local transaction
    COMMITted count (an apply batch that crashed mid-flight is rolled
    back by restart and must be re-shipped).  Because batches apply
    origin LSNs in order and commit monotonically, the floor covers
    *every* committed record, so "skip at or below the floor" is an
    exact resume point.
    """
    committed: set = set()
    for record in system.log.scan():
        if record.kind is RecordKind.COMMIT and record.txn_id is not None:
            committed.add(record.txn_id)
    floors: dict[str, int] = {}
    for record in system.log.scan():
        if record.kind is not RecordKind.UPDATE:
            continue
        info = record.info or {}
        writer = info.get("upstream")
        if writer is None or record.txn_id not in committed:
            continue
        origin = int(info.get("origin_lsn", 0))
        if origin > floors.get(writer, 0):
            floors[writer] = origin
    return floors
