"""Simulated replication cluster: WAL shipping, routing, divergence.

See :mod:`repro.cluster.cluster` for the architecture overview.  The
public surface:

* :class:`Cluster`, :class:`ClusterNode`, :class:`NetworkLink` -- the
  fleet itself;
* :class:`Subscription` -- per-replica ship+apply loop;
* :class:`Router` -- staleness- and index-aware read routing;
* :class:`ClusterOpenLoopDriver` -- routed open-loop traffic;
* :func:`check_cluster` -- the cross-replica consistency oracle;
* :func:`plan_divergent_indexes` -- per-replica advisor slices;
* ``python -m repro.cluster.sweep`` / ``python -m repro.cluster.bench``
  -- the fault sweep and the end-to-end demo.
"""

from repro.cluster.cluster import Cluster, plan_divergent_indexes
from repro.cluster.node import ClusterNode, NetworkLink
from repro.cluster.oracle import check_cluster, heap_state, physical_fold
from repro.cluster.router import Router
from repro.cluster.ship import Subscription
from repro.cluster.traffic import ClusterOpenLoopDriver

__all__ = [
    "Cluster",
    "ClusterNode",
    "ClusterOpenLoopDriver",
    "NetworkLink",
    "Router",
    "Subscription",
    "check_cluster",
    "heap_state",
    "physical_fold",
    "plan_divergent_indexes",
]
