"""Cluster fault sweep: crash ship/apply/promote, prove the oracle.

The single-node crash sweep (:mod:`repro.faultinject.sweep`) proves one
system's restart recovery; this sweep proves the *distributed* story on
top of it, over the canonical scenario of :mod:`repro.cluster.scenario`
(open-loop traffic on the primary, two replicas applying the shipped
WAL while building divergent indexes, one scripted failover):

1. **Discover** -- one clean seeded run with an unarmed injector counts
   every ``cluster.ship`` / ``cluster.apply`` / ``cluster.promote``
   hit.  The clean run must itself pass the cross-replica oracle.
2. **Enumerate** -- first / middle / last hit per site (plain crashes:
   the cluster sites model node/link failures, not torn writes).
3. **Replay** -- each plan re-runs the identical seeded scenario armed.
   A ship fault escalates to failover, an apply fault to replica crash
   recovery, a promote fault to kill-and-retry of the candidate; the
   run may therefore see *two* failovers (scripted + injected).
4. **Prove** -- :func:`repro.cluster.oracle.check_cluster`: every
   surviving node self-consistent, every replica equal to the primary's
   physical history at its apply position, every index audited, every
   operation accounted for.

``--schedules N`` swaps fault injection for schedule perturbation: N
seeded :class:`~repro.schedsweep.policy.RandomTiePolicy` runs (each
with the scripted failover) must all pass the same oracle.

CLI::

    python -m repro.cluster.sweep                 # full crash sweep
    python -m repro.cluster.sweep --smoke         # CI-sized subset
    python -m repro.cluster.sweep --schedules 5   # schedule mode
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.scenario import run_scenario
from repro.faultinject.injector import FaultPlan
from repro.faultinject.sites import SITE_DOCS

#: simulated instant of the scripted failover (must be inside the
#: traffic window so cluster.promote is reachable during discovery)
FAILOVER_AT = 60.0


@dataclass(frozen=True)
class ClusterSweepConfig:
    """One sweep's fully deterministic scenario recipe."""

    replicas: int = 2
    records: int = 80
    operations: int = 120
    rate: float = 0.8
    seed: int = 3
    max_hits_per_site: int = 3  # first + last + middle
    max_plans: Optional[int] = None

    def scenario_kwargs(self) -> dict:
        return dict(replicas=self.replicas, records=self.records,
                    operations=self.operations, rate=self.rate,
                    seed=self.seed, failover_at=FAILOVER_AT)


@dataclass
class PlanResult:
    """Outcome of one armed run (or one perturbed schedule)."""

    label: str
    fired: bool = False
    passed: bool = False
    detail: str = ""
    trace: Optional[str] = None

    @property
    def failed(self) -> bool:
        return not self.passed


@dataclass
class ClusterSweepReport:
    config: ClusterSweepConfig
    mode: str
    discovered: dict = field(default_factory=dict)
    results: list = field(default_factory=list)

    @property
    def failures(self) -> list:
        return [r for r in self.results if r.failed]

    @property
    def all_passed(self) -> bool:
        return not self.failures

    def to_text(self) -> str:
        lines = [f"cluster {self.mode} sweep: replicas="
                 f"{self.config.replicas} records={self.config.records} "
                 f"operations={self.config.operations} "
                 f"seed={self.config.seed}"]
        if self.discovered:
            lines.append(f"{len(self.discovered)} cluster fault sites "
                         f"discovered, {len(self.results)} plans run")
        for result in self.results:
            status = "ok" if result.passed else f"FAIL: {result.detail}"
            lines.append(f"  {result.label:<36} {status}")
        lines.append(f"{len(self.results) - len(self.failures)}/"
                     f"{len(self.results)} runs passed the "
                     "cross-replica oracle")
        return "\n".join(lines)


def discover(config: ClusterSweepConfig) -> dict:
    """Clean seeded run, unarmed injector; returns the site census."""
    _cluster, _driver, summary, injector = run_scenario(
        discover=True, **config.scenario_kwargs())
    assert summary.get("ok"), "clean discovery run failed the oracle"
    return {site: count for site, count in injector.hits.items()
            if site.startswith("cluster.")}


def enumerate_plans(config: ClusterSweepConfig,
                    discovered: dict) -> list:
    plans = []
    for site in sorted(discovered):
        count = discovered[site]
        hits = {1}
        if config.max_hits_per_site >= 2 and count > 1:
            hits.add(count)
        if config.max_hits_per_site >= 3 and count > 2:
            hits.add((count + 1) // 2)
        for hit in sorted(hits):
            plans.append(FaultPlan(site, hit))
    if config.max_plans is not None:
        plans = plans[:config.max_plans]
    return plans


def run_plan(config: ClusterSweepConfig, plan: FaultPlan) -> PlanResult:
    """One armed replay; pass iff the fault's recovery path ends in a
    cluster that settles and satisfies every oracle check."""
    result = PlanResult(label=plan.describe())
    try:
        cluster, _driver, summary, injector = run_scenario(
            fault_plan=plan, **config.scenario_kwargs())
    except Exception as exc:  # noqa: BLE001 - report, don't mask
        result.detail = f"{type(exc).__name__}: {exc}"
        return result
    result.fired = injector.fired is not None
    if not result.fired:
        # Hit count drifted from discovery (a config diff): the run is
        # then clean and the oracle already passed, but flag it so the
        # sweep's coverage claim stays honest.
        result.detail = "fault did not fire (clean run, oracle ok)"
    result.passed = bool(summary.get("ok"))
    result.trace = None if result.passed else cluster.tracer.to_jsonl()
    return result


def run_crash_sweep(config: ClusterSweepConfig,
                    progress=None) -> ClusterSweepReport:
    discovered = discover(config)
    plans = enumerate_plans(config, discovered)
    report = ClusterSweepReport(config=config, mode="crash",
                                discovered=discovered)
    for index, plan in enumerate(plans):
        result = run_plan(config, plan)
        report.results.append(result)
        if progress is not None:
            status = "ok" if result.passed else f"FAIL: {result.detail}"
            progress(f"[{index + 1}/{len(plans)}] "
                     f"{plan.describe():<36} {status}")
    return report


def run_schedule_sweep(config: ClusterSweepConfig, schedules: int,
                       progress=None) -> ClusterSweepReport:
    from repro.schedsweep.policy import RandomTiePolicy

    report = ClusterSweepReport(config=config, mode="schedule")
    for sched_seed in range(schedules):
        policy = RandomTiePolicy(sched_seed, preempt_prob=0.05,
                                 max_preemptions=12)
        result = PlanResult(label=f"schedule#{sched_seed}", fired=True)
        try:
            _cluster, _driver, summary, _ = run_scenario(
                schedule_policy=policy, **config.scenario_kwargs())
            result.passed = bool(summary.get("ok"))
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            result.detail = f"{type(exc).__name__}: {exc}"
        report.results.append(result)
        if progress is not None:
            status = "ok" if result.passed else f"FAIL: {result.detail}"
            progress(f"[{sched_seed + 1}/{schedules}] "
                     f"{result.label:<36} {status}")
    return report


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Crash- or schedule-sweep the replication cluster "
                    "scenario and prove the cross-replica oracle.")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--records", type=int, default=80)
    parser.add_argument("--operations", type=int, default=120)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--max-hits-per-site", type=int, default=3)
    parser.add_argument("--max-plans", type=int, default=None)
    parser.add_argument("--schedules", type=int, default=None,
                        metavar="N",
                        help="run N perturbed-schedule runs instead of "
                             "the crash sweep")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized subset: first hit per site only")
    parser.add_argument("--list-sites", action="store_true")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the first FAILED run's JSONL trace")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    config = ClusterSweepConfig(
        replicas=args.replicas,
        records=args.records,
        operations=args.operations,
        seed=args.seed,
        max_hits_per_site=1 if args.smoke else args.max_hits_per_site,
        max_plans=args.max_plans,
    )
    if args.list_sites:
        discovered = discover(config)
        for site in sorted(discovered):
            doc = SITE_DOCS.get(site, "(dynamic site)")
            print(f"{site:<24} {discovered[site]:>6}  {doc}")
        print(f"{len(discovered)} sites")
        return 0
    progress = None if args.quiet else \
        (lambda line: print(line, file=sys.stderr, flush=True))
    if args.schedules is not None:
        report = run_schedule_sweep(config, args.schedules,
                                    progress=progress)
    else:
        report = run_crash_sweep(config, progress=progress)
    if args.trace_out is not None:
        for result in report.failures:
            if result.trace is not None:
                with open(args.trace_out, "w") as handle:
                    handle.write(result.trace)
                print(f"trace written: {args.trace_out}",
                      file=sys.stderr)
                break
    print(report.to_text())
    return 0 if report.all_passed else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
