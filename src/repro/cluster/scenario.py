"""The canonical cluster scenario shared by the sweep and the bench.

One primary takes an open-loop write+read mix while N replicas apply
its shipped WAL and (divergently) build their own indexes online.  The
sweep arms fault plans against it; the bench measures routed latency
over it.  Keeping the scenario in one place keeps the two honest: the
configuration the bench publishes numbers for is the configuration the
oracle survives faults under.

The run has three phases:

1. **preload** -- the primary is populated alone (no replicas yet), so
   the simulator drains cleanly before any poll-driven subscription
   process exists;
2. **traffic** -- replicas attach (bootstrapping through ordinary log
   shipping), traffic and divergent builds start, and an optional
   scripted failover or armed fault plan perturbs the run;
3. **settle** -- the settle controller waits for traffic, builds, and
   catch-up, then stops the subscriptions so the run quiesces before
   ``horizon``; the oracle then checks everything.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.oracle import check_cluster
from repro.cluster.traffic import ClusterOpenLoopDriver
from repro.core.base import BuildOptions, IndexSpec
from repro.faultinject.injector import FaultInjector, FaultPlan
from repro.sim.kernel import Delay
from repro.system import SystemConfig
from repro.verify.consistency import ConsistencyError
from repro.workloads.openloop import OpenLoopSpec

TABLE = "t"
COLUMNS = ("k", "tag", "a", "b")
KEY_SPACE = 600

#: small pages/trees so builds span many checkpoints at laptop scale
SCENARIO_CONFIG = SystemConfig(
    page_capacity=8, buffer_frames=64, leaf_capacity=8,
    branch_capacity=8, sort_workspace=16, merge_fanin=4)

#: the divergent plan the sweep always runs: replica 1 serves ``k``
#: via an NSF build, replica 2 serves ``a`` via an SF build
DIVERGENT_BUILDS = (
    ("nsf", "r1_k", ("k",)),
    ("sf", "r2_a", ("a",)),
)

BUILD_OPTIONS = BuildOptions(checkpoint_every_keys=64,
                             commit_every_keys=64, drain_batch=16)


def scenario_row(key: int, tag: str) -> tuple:
    """Four-column rows: secondary columns derive from the key so every
    write path (insert, key-changing update) keeps them consistent."""
    return (key, tag, (key * 7) % KEY_SPACE, (key * 13) % KEY_SPACE)


def scenario_spec(operations: int, rate: float,
                  arrivals: str = "poisson") -> OpenLoopSpec:
    return OpenLoopSpec(
        operations=operations, rate=rate, arrivals=arrivals,
        read_weight=1.5, range_weight=1.5, insert_weight=1.0,
        update_weight=1.0, delete_weight=0.5,
        range_span=40,
        range_columns=(("k", 2.0), ("a", 1.5), ("b", 1.0)),
        key_space=KEY_SPACE, rollback_fraction=0.05)


def build_scenario(*, replicas: int = 2, records: int = 120,
                   operations: int = 150, rate: float = 0.8,
                   seed: int = 0, arrivals: str = "poisson",
                   staleness_bound: float = 400.0,
                   link_latency: float = 1.0,
                   batch_records: int = 24,
                   poll_interval: float = 2.0,
                   config: Optional[SystemConfig] = None
                   ) -> tuple[Cluster, ClusterOpenLoopDriver]:
    """Phase 1: cluster + preloaded primary + attached (empty) replicas."""
    cluster = Cluster(config or SCENARIO_CONFIG, seed,
                      staleness_bound=staleness_bound,
                      link_latency=link_latency,
                      batch_records=batch_records,
                      poll_interval=poll_interval)
    cluster.primary.system.create_table(TABLE, COLUMNS)
    driver = ClusterOpenLoopDriver(
        cluster, TABLE, scenario_spec(operations, rate, arrivals),
        seed=seed)
    driver.row_factory = scenario_row
    cluster.primary.system.spawn(driver.preload(records), name="preload")
    cluster.run()  # drains: no subscription poll loops exist yet
    for _ in range(replicas):
        cluster.add_replica()
    return cluster, driver


def start_divergent_builds(cluster: Cluster) -> None:
    """Start the standard divergent per-replica builds (as many of the
    plan's entries as there are replicas)."""
    for node, (mode, name, key_columns) in zip(cluster.replicas(),
                                               DIVERGENT_BUILDS):
        cluster.start_build(
            node, mode, [IndexSpec.of(name, list(key_columns))],
            options=BUILD_OPTIONS, table_name=TABLE)


def schedule_failover(cluster: Cluster, at: float) -> None:
    """Script one failover at simulated time ``at`` (skipped if a fault
    plan already caused one -- a run has at most one failover)."""
    def body():
        yield Delay(at)
        if cluster.metrics.get("cluster.failovers") == 0 \
                and not cluster.failing_over:
            cluster.trigger_failover()
    cluster.spawn(body(), name="scripted-failover")


def run_scenario(*, replicas: int = 2, records: int = 120,
                 operations: int = 150, rate: float = 0.8,
                 seed: int = 0, arrivals: str = "poisson",
                 fault_plan: Optional[FaultPlan] = None,
                 discover: bool = False,
                 schedule_policy=None,
                 failover_at: Optional[float] = None,
                 builds: bool = True,
                 config: Optional[SystemConfig] = None,
                 horizon: float = 60_000.0):
    """Run the full scenario; returns ``(cluster, driver, summary,
    injector)``.  Raises :class:`ConsistencyError` if the cluster fails
    to settle by ``horizon`` or any oracle check fails."""
    cluster, driver = build_scenario(
        replicas=replicas, records=records, operations=operations,
        rate=rate, seed=seed, arrivals=arrivals, config=config)
    injector = None
    if fault_plan is not None or discover:
        injector = FaultInjector(fault_plan, watch_processes=())
        injector.install(cluster)
    if schedule_policy is not None:
        cluster.sim.schedule_policy = schedule_policy
    driver.spawn()
    if builds:
        start_divergent_builds(cluster)
    if failover_at is not None:
        schedule_failover(cluster, failover_at)
    cluster.settle(driver)
    cluster.run(until=horizon)
    if not cluster.settled:
        raise ConsistencyError(
            f"cluster did not settle by t={horizon} "
            f"(seed={seed}, plan={fault_plan and fault_plan.describe()})")
    cluster.run()  # drain the tail of already-scheduled events
    summary = check_cluster(cluster, driver)
    return cluster, driver, summary, injector
