"""Cluster nodes and the simulated network between them.

A :class:`ClusterNode` wraps one :class:`~repro.system.System` that
shares the cluster's single :class:`~repro.sim.kernel.Simulator`.  The
node tracks which processes are *resident* on it -- the apply loop, any
index builders, and adopted traffic operations -- so that killing the
node unwinds exactly those processes and nothing else: node death is a
:class:`~repro.errors.NodeDown` thrown into each resident, not a
:class:`~repro.errors.SystemCrash` (which would stop the shared kernel
and take the healthy nodes down with it).

Two kernel subtleties the kill path must respect:

* a generator that has never been started (``GEN_CREATED``) cannot
  catch a thrown exception -- ``gen.throw`` raises at the ``def`` line
  and would propagate out of the run loop -- so unstarted residents are
  finished directly instead of thrown into;
* a resident currently blocked in a latch/lock/event queue is simply
  scheduled a throw; the queues already skip finished waiters.

:class:`NetworkLink` charges simulated time for each shipped WAL batch:
a fixed propagation latency plus a size/bandwidth term.
"""

from __future__ import annotations

import inspect
from typing import Optional, TYPE_CHECKING

from repro.errors import NodeDown
from repro.sim.kernel import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.ship import Subscription
    from repro.sim.kernel import Process
    from repro.system import System


class NetworkLink:
    """Delay model for one primary->replica log-shipping channel."""

    def __init__(self, latency: float = 1.0,
                 bandwidth: Optional[float] = None) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency!r}")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth!r}")
        self.latency = latency
        #: log records per simulated time unit (None = unlimited)
        self.bandwidth = bandwidth

    def transmit(self, records: int):
        """Generator: charge the wire time for one batch of records."""
        delay = self.latency
        if self.bandwidth is not None:
            delay += records / self.bandwidth
        if delay > 0:
            yield Delay(delay)
        return records


class ClusterNode:
    """One system plus its residency bookkeeping inside a cluster."""

    def __init__(self, cluster: "Cluster", name: str, system: "System",
                 role: str, link: Optional[NetworkLink] = None) -> None:
        self.cluster = cluster
        self.name = name
        self.system = system
        #: "primary", "replica", or "failed" (a dead ex-primary)
        self.role = role
        self.link = link or NetworkLink()
        self.down = False
        self.recovering = False
        self.subscription: Optional["Subscription"] = None
        #: processes that die with this node
        self.residents: list["Process"] = []
        #: builds this node has been asked to run: (mode, table, specs,
        #: options).  Recovery reissues any whose descriptors were
        #: discarded as orphans (crash before the first checkpoint).
        self.planned_builds: list[tuple] = []
        #: live builder processes (for quiesce detection)
        self.build_procs: list["Process"] = []

    # -- residency ---------------------------------------------------------

    def spawn(self, body, name: str = "proc") -> "Process":
        """Spawn a node-resident process (dies with the node)."""
        proc = self.cluster.sim.spawn(self._guard(body),
                                      name=f"{self.name}.{name}")
        self.adopt(proc)
        return proc

    def _guard(self, body):
        """Wrap a resident body so node death ends it quietly."""
        try:
            result = yield from body
        except NodeDown:
            return None
        return result

    def adopt(self, proc: "Process") -> None:
        """Register an externally spawned process (a routed traffic op)
        as resident: it targets this node's system, so it must die with
        the node rather than keep touching crashed state."""
        if len(self.residents) > 64:
            self.residents = [p for p in self.residents if not p.finished]
        if proc not in self.residents:
            self.residents.append(proc)

    # -- failure -----------------------------------------------------------

    def kill(self) -> None:
        """Fail the node: crash its system, unwind its residents.

        Idempotent.  Residents that already finished are skipped; ones
        that never started cannot catch a throw, so they are finished
        directly (their ``finally`` blocks have nothing to release).
        """
        if self.down:
            return
        self.down = True
        sim = self.cluster.sim
        victims, self.residents = self.residents, []
        self.system.crash()
        for proc in victims:
            if proc.finished:
                continue
            if inspect.getgeneratorstate(proc.body) == inspect.GEN_CREATED:
                sim._finish(proc)
            else:
                sim._throw(proc, NodeDown(f"node {self.name} failed"))
        self.cluster.metrics.incr("cluster.node_kills")
        tracer = self.cluster.metrics.tracer
        if tracer is not None:
            tracer.instant("cluster.node_down", node=self.name,
                           role=self.role)

    def builds_done(self) -> bool:
        """True when every planned index on this node is AVAILABLE and no
        builder process is still running."""
        from repro.core.descriptor import IndexState  # lazy: avoid cycle
        if any(not proc.finished for proc in self.build_procs):
            return False
        for _mode, _table, specs, _options in self.planned_builds:
            for spec in specs:
                descriptor = self.system.indexes.get(spec.name)
                if descriptor is None \
                        or descriptor.state is not IndexState.AVAILABLE:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ClusterNode {self.name} role={self.role} "
                f"down={self.down} residents={len(self.residents)}>")
