"""WAL log shipping: one combined ship+apply loop per replica.

A :class:`Subscription` is the replica-resident process that drives
replication.  Each iteration it compares its position against the
upstream's *flushed* LSN (replicas only ever see durable log -- the
unflushed tail dies with the primary), pulls the next batch of records,
pays the :class:`~repro.cluster.node.NetworkLink` wire time, filters
the batch down to shippable heap history it has not applied before
(:func:`~repro.cluster.apply.committed_origin_floors`), and applies it
in one local transaction.  Apply-LSN lag is gauged into the cluster
trace (``cluster.apply_lag``) after every batch -- the router's
staleness input and the observability story for "how far behind is
this replica".

Failure modelling happens here because this loop is where the two
halves of replication meet:

* ``cluster.ship`` -- the primary (or the link) dies mid-ship.  The
  subscription stops itself and triggers cluster failover.
* ``cluster.apply`` -- the *replica* dies mid-apply.  The subscription
  stops itself and asks the cluster to crash-recover this node; the
  recovered node resumes from its durable floor.

Both faults are caught inside this process (an escaped
:class:`InjectedCrash` is a :class:`SystemCrash` and would stop the
shared kernel); the recovery work itself runs in cluster-resident
processes because a node-resident process cannot orchestrate its own
node's death.

Local deadlocks between the applier's X locks and reader S locks are
resolved by the lock manager choosing a victim; an aborted apply batch
rolls back and retries without advancing the position.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.cluster.apply import (
    apply_record,
    committed_origin_floors,
    record_identity,
    shippable,
)
from repro.core.base import _txn_table_snapshot
from repro.errors import TransactionAborted
from repro.faultinject.injector import InjectedCrash
from repro.faultinject.sites import fault_point
from repro.sim.kernel import Delay
from repro.wal.records import LogRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import ClusterNode, NetworkLink


class Subscription:
    """One replica's live subscription to an upstream node's WAL."""

    def __init__(self, cluster: "Cluster", node: "ClusterNode",
                 upstream: "ClusterNode", link: "NetworkLink", *,
                 batch_records: int = 24, poll_interval: float = 2.0,
                 checkpoint_every_batches: int = 8) -> None:
        self.cluster = cluster
        self.node = node
        self.upstream = upstream
        self.link = link
        self.batch_records = batch_records
        self.poll_interval = poll_interval
        self.checkpoint_every_batches = checkpoint_every_batches
        #: highest upstream-local LSN fully applied and committed here
        self.position = 0
        #: per original writer, highest origin LSN durably applied
        self.floors = committed_origin_floors(node.system)
        self.stop_requested = False
        self.stopped = False
        self.proc = None
        self.batches_applied = 0
        self._fast_forward()

    # -- positions ---------------------------------------------------------

    def _fast_forward(self) -> None:
        """Skip the prefix of the upstream log this replica already has.

        Models the handshake where a (re)subscribing replica announces
        its floors and shipping starts past everything covered by them
        -- without it, every resubscribe would re-transmit the whole
        upstream log just to discard it record by record.
        """
        log = self.upstream.system.log
        position = 0
        for record in log.scan(to_lsn=log.flushed_lsn):
            if self._applies(record):
                break
            position = record.lsn
        self.position = position

    def _applies(self, record: LogRecord) -> bool:
        if not shippable(record):
            return False
        args = record.redo[1]
        if args.get("table") not in self.node.system.tables:
            return False
        writer, origin = record_identity(self.upstream.name, record)
        if writer == self.node.name:
            return False  # never re-apply your own history
        return origin > self.floors.get(writer, 0)

    def lag(self) -> int:
        """Apply lag in log records against the upstream's durable tail."""
        return max(0, self.upstream.system.log.flushed_lsn - self.position)

    # -- the ship+apply process --------------------------------------------

    def start(self):
        self.proc = self.node.spawn(self.run(),
                                    name=f"apply<{self.upstream.name}")
        return self.proc

    def run(self):
        cluster = self.cluster
        try:
            while not self.stop_requested:
                if self.upstream.down:
                    return
                log = self.upstream.system.log
                flushed = log.flushed_lsn
                if flushed <= self.position:
                    self._gauge_lag()
                    yield Delay(self.poll_interval)
                    continue
                upto = min(flushed, self.position + self.batch_records)
                batch = list(log.scan(from_lsn=self.position + 1,
                                      to_lsn=upto))
                yield from self.link.transmit(len(batch))
                try:
                    fault_point(cluster.metrics, "cluster.ship")
                except InjectedCrash:
                    # Models the primary dying mid-ship: this replica
                    # saw the stream stop and raises the alarm.
                    cluster.trigger_failover()
                    return
                applicable = [
                    (record,) + record_identity(self.upstream.name, record)
                    for record in batch if self._applies(record)]
                if applicable:
                    try:
                        yield from self._apply_batch(applicable)
                    except InjectedCrash:
                        # Models this replica crashing mid-apply.
                        cluster.recover_replica(self.node)
                        return
                self.position = upto
                self.batches_applied += 1
                cluster.metrics.incr("cluster.batches_shipped")
                self._gauge_lag()
                if self.checkpoint_every_batches and \
                        self.batches_applied \
                        % self.checkpoint_every_batches == 0:
                    self._checkpoint()
        finally:
            self.stopped = True

    def _apply_batch(self, applicable):
        """Apply one shipped batch in a single local transaction.

        A deadlock with a local reader (or builder) aborts the batch
        transaction; rollback undoes the partial batch and the loop
        retries from the same position -- the floor only moves on
        commit, so exactly-once holds.
        """
        system = self.node.system
        while True:
            txn = system.txns.begin(f"apply-{self.node.name}")
            try:
                fault_point(self.cluster.metrics, "cluster.apply")
                for record, writer, origin in applicable:
                    yield from apply_record(txn, system, record,
                                            writer, origin)
                yield from txn.commit()
                break
            except TransactionAborted:
                yield from txn.rollback()
                system.metrics.incr("cluster.apply_retries")
                yield Delay(1.0)
        for _record, writer, origin in applicable:
            if origin > self.floors.get(writer, 0):
                self.floors[writer] = origin
        system.metrics.incr("cluster.batches_applied")

    def _checkpoint(self) -> None:
        """Periodic local checkpoint bounding this replica's recovery.

        Mirrors the live build registry (``system.utility_states``)
        into the record so an apply checkpoint taken between a
        builder's own checkpoints never clobbers its resume state.
        """
        system = self.node.system
        registry = {name: dict(state) for name, state
                    in getattr(system, "utility_states", {}).items()}
        system.log.write_checkpoint(
            _txn_table_snapshot(system), dict(system.buffer.dirty), {},
            utility_states=registry or None)
        system.metrics.incr("cluster.apply_checkpoints")

    def _gauge_lag(self) -> None:
        tracer = self.cluster.metrics.tracer
        if tracer is not None:
            tracer.gauge("cluster.apply_lag", float(self.lag()),
                         node=self.node.name, position=self.position)
