"""Cross-replica consistency oracle.

The check the whole subsystem answers to: **replica state at apply
position L must equal the primary's physical history folded to L.**
The primary's WAL is replayable -- ``heap.put`` / ``heap.clear`` redo
payloads carry full record images, and rollbacks emit CLRs that are
themselves shippable puts/clears -- so folding UPDATE + COMPENSATION
records over an empty heap *is* the reference state.  A replica that
ever applied a record twice, skipped one, or applied out of order
cannot match the fold.

:func:`check_cluster` verifies, per node:

1. self-consistency -- each node's heap equals the fold of its *own*
   log (the ARIES-lite contract, unchanged from single-node);
2. replication -- each live replica's heap equals the fold of the
   *primary's* log up to that replica's subscription position, and
   equals the primary's live heap when fully caught up;
3. index integrity -- every AVAILABLE index on every node passes the
   B-tree structural audit and matches its heap
   (:func:`repro.verify.consistency.audit_all`);
4. build completion -- every planned divergent build actually reached
   AVAILABLE;
5. conservation -- the traffic driver's op timeline accounts for every
   scheduled arrival (nothing vanished in a crash window).

All violations are collected and raised together in one
:class:`~repro.errors.ConsistencyError` so a sweep failure shows the
full blast radius, not just the first symptom.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.btree.audit import TreeAuditError
from repro.storage.rid import RID
from repro.verify.consistency import ConsistencyError, audit_all
from repro.wal.records import RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.system import System
    from repro.wal.manager import LogManager


def heap_state(system: "System") -> dict[str, dict[RID, tuple]]:
    """Live record values per table, straight off buffer+disk."""
    out: dict[str, dict[RID, tuple]] = {}
    for name, table in system.tables.items():
        out[name] = {rid: record.values
                     for rid, record in table.audit_records()}
    return out


def physical_fold(log: "LogManager", tables, *,
                  upto_lsn: Optional[int] = None
                  ) -> dict[str, dict[RID, tuple]]:
    """Fold a log's heap history into reference table states.

    Replays every ``heap.put`` / ``heap.clear`` redo payload (UPDATE
    and COMPENSATION records both -- CLRs are physical history too) in
    LSN order, optionally stopping at ``upto_lsn``.  Only tables in
    ``tables`` are tracked.
    """
    wanted = set(tables)
    state: dict[str, dict[RID, tuple]] = {name: {} for name in wanted}
    for record in log.scan(to_lsn=upto_lsn):
        if record.kind not in (RecordKind.UPDATE,
                               RecordKind.COMPENSATION):
            continue
        if record.redo is None:
            continue
        op, args = record.redo
        table = args.get("table")
        if table not in wanted:
            continue
        rid = RID(*args["rid"])
        if op == "heap.put":
            state[table][rid] = tuple(args["values"])
        elif op == "heap.clear":
            state[table].pop(rid, None)
    return state


def _diff(label: str, expected: dict, actual: dict,
          failures: list[str]) -> None:
    for table in sorted(set(expected) | set(actual)):
        want = expected.get(table, {})
        have = actual.get(table, {})
        missing = sorted(set(want) - set(have))
        extra = sorted(set(have) - set(want))
        wrong = sorted(rid for rid in set(want) & set(have)
                       if want[rid] != have[rid])
        if missing or extra or wrong:
            failures.append(
                f"{label}: table {table!r} diverges "
                f"(missing={missing[:3]}x{len(missing)} "
                f"extra={extra[:3]}x{len(extra)} "
                f"wrong={wrong[:3]}x{len(wrong)})")


def check_cluster(cluster: "Cluster", driver=None) -> dict:
    """Run every oracle; raise :class:`ConsistencyError` on violation.

    Returns a small summary dict (per-node record counts, positions)
    for benches and sweeps to log.
    """
    failures: list[str] = []
    summary: dict = {"nodes": {}}
    if cluster.sim.crashed:
        failures.append("shared simulator stopped on an escaped "
                        "SystemCrash -- a fault leaked out of the "
                        "cluster's containment")
    primary = cluster.primary
    live = [node for node in cluster.nodes.values()
            if node.role in ("primary", "replica")]
    for node in live:
        if node.down or node.recovering:
            failures.append(f"{node.name}: still down/recovering at "
                            "check time (cluster did not settle)")
    table_names = list(primary.system.tables)
    primary_heap = heap_state(primary.system)

    for node in live:
        system = node.system
        actual = heap_state(system)
        summary["nodes"][node.name] = {
            "role": node.role,
            "records": sum(len(rows) for rows in actual.values()),
            "last_lsn": system.log.last_lsn,
        }
        # 1. Self-consistency: own heap == fold of own log.
        system.log.flush()
        own = physical_fold(system.log, table_names)
        _diff(f"{node.name}: heap vs own log fold", own, actual, failures)
        # 3. Index integrity.
        try:
            audit_all(system)
        except (ConsistencyError, TreeAuditError) as error:
            failures.append(f"{node.name}: index audit failed: {error}")
        # 4. Build completion.
        for _mode, _table, specs, _options in node.planned_builds:
            for spec in specs:
                descriptor = system.indexes.get(spec.name)
                state = getattr(descriptor, "state", None)
                state_name = getattr(state, "name", str(state))
                if descriptor is None or state_name != "AVAILABLE":
                    failures.append(
                        f"{node.name}: planned index {spec.name!r} is "
                        f"{state_name}, not AVAILABLE")

    # 2. Replication: replica heap == primary history at its position.
    primary.system.log.flush()
    for node in cluster.replicas():
        if node.down or node.recovering:
            continue
        sub = node.subscription
        if sub is None or sub.upstream is not primary:
            failures.append(f"{node.name}: not subscribed to the "
                            "current primary at check time")
            continue
        summary["nodes"][node.name]["position"] = sub.position
        expected = physical_fold(primary.system.log, table_names,
                                 upto_lsn=sub.position)
        actual = heap_state(node.system)
        _diff(f"{node.name}: heap vs primary history@{sub.position}",
              expected, actual, failures)
        if sub.position >= primary.system.log.last_lsn:
            _diff(f"{node.name}: caught-up heap vs primary live heap",
                  primary_heap, actual, failures)

    # 5. Conservation: every arrival is accounted for.
    if driver is not None:
        scheduled = len(driver.arrivals)
        recorded = len(driver.op_timeline)
        summary["operations"] = {"scheduled": scheduled,
                                 "recorded": recorded}
        if recorded != scheduled:
            failures.append(
                f"driver: {recorded} ops recorded != {scheduled} "
                "scheduled (operations lost in a crash window)")

    if failures:
        raise ConsistencyError(
            "cluster oracle failed:\n  " + "\n  ".join(failures))
    summary["ok"] = True
    return summary
