"""Write-ahead log record types.

Section 1.1 (Recovery) of the paper: "The undo (respectively, redo) portion
of a log record provides information on how to undo (respectively, redo)
changes performed by the transaction.  A log record which contains both the
undo and the redo information is called an undo-redo log record.  Sometimes,
a log record may be written to contain only the redo information or only the
undo information."

All three flavours appear in the algorithms:

* undo-redo -- ordinary data and index changes (NSF IB key inserts, §2.2.3;
  SF side-file drain, §3.2.5);
* redo-only -- side-file appends (§3.1 assumptions) and compensation log
  records written during rollback;
* undo-only -- an NSF transaction whose key insert was rejected because IB
  already inserted the key (§2.1.1): nothing to redo, but on rollback the
  key must still be deleted.

A record's *operation* is a small string tag (e.g. ``"heap.insert"``)
resolved through :class:`OperationRegistry` to redo/undo callables supplied
by the owning resource manager.  This mirrors ARIES resource-manager
dispatch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import WALError


class RecordKind(enum.Enum):
    """Coarse record category used by restart recovery."""

    UPDATE = "update"              # undoable/redoable change
    COMPENSATION = "clr"           # redo-only CLR with undo_next_lsn
    COMMIT = "commit"
    ABORT = "abort"
    END = "end"                    # transaction fully finished
    CHECKPOINT = "checkpoint"      # fuzzy checkpoint (txn table + DPT)
    UTILITY = "utility"            # index-build / sort progress records


@dataclass
class LogRecord:
    """One WAL record.

    ``redo`` and ``undo`` are operation payloads -- ``(op_name, args)``
    tuples -- or ``None``; their presence classifies the record as
    undo-redo, redo-only or undo-only exactly as in the paper.
    ``undo_next_lsn`` is the ARIES CLR back-pointer: during rollback it
    skips already-compensated records.
    """

    lsn: int
    txn_id: Optional[int]
    kind: RecordKind
    prev_lsn: Optional[int] = None
    page_id: Optional[Any] = None
    redo: Optional[tuple[str, dict]] = None
    undo: Optional[tuple[str, dict]] = None
    undo_next_lsn: Optional[int] = None
    info: dict = field(default_factory=dict)

    @property
    def is_undo_redo(self) -> bool:
        return self.redo is not None and self.undo is not None

    @property
    def is_redo_only(self) -> bool:
        return self.redo is not None and self.undo is None

    @property
    def is_undo_only(self) -> bool:
        return self.redo is None and self.undo is not None

    @property
    def size(self) -> int:
        """Approximate logged bytes, for log-volume experiments (E1)."""
        base = 32  # header: lsn, txn, kind, chaining
        for payload in (self.redo, self.undo):
            if payload is not None:
                base += 8 + _payload_size(payload[1])
        return base


def _payload_size(args: dict) -> int:
    total = 0
    for value in args.values():
        if isinstance(value, (list, tuple)):
            total += 8 * max(len(value), 1)
        elif isinstance(value, str):
            total += len(value)
        else:
            total += 8
    return total


RedoFn = Callable[..., None]
UndoFn = Callable[..., Optional[tuple[str, dict]]]


class OperationRegistry:
    """Maps operation tags to redo and undo callables.

    Resource managers (heap, B+-tree, side-file) register their operations
    at system construction.  Recovery and rollback dispatch through here.
    The undo callable returns the redo payload for the compensation log
    record describing what the undo physically did (ARIES: CLRs are
    redo-only).
    """

    def __init__(self) -> None:
        self._redo: dict[str, RedoFn] = {}
        self._undo: dict[str, UndoFn] = {}

    def register(self, op_name: str, redo: RedoFn,
                 undo: Optional[UndoFn] = None) -> None:
        if op_name in self._redo:
            raise WALError(f"operation {op_name!r} registered twice")
        self._redo[op_name] = redo
        if undo is not None:
            self._undo[op_name] = undo

    def redo(self, op_name: str) -> RedoFn:
        try:
            return self._redo[op_name]
        except KeyError:
            raise WALError(f"no redo handler for {op_name!r}") from None

    def undo(self, op_name: str) -> UndoFn:
        try:
            return self._undo[op_name]
        except KeyError:
            raise WALError(f"no undo handler for {op_name!r}") from None

    def knows(self, op_name: str) -> bool:
        return op_name in self._redo
