"""The write-ahead log manager.

Models an append-only log with a *stable prefix* and a *volatile tail*:
``flush`` (force) makes everything up to a given LSN survive a crash;
records beyond :attr:`LogManager.flushed_lsn` are lost when the system
crashes.  Restart recovery (:mod:`repro.recovery`) replays the stable
prefix.

LSNs are dense positive integers, so tests can reason about exact chains.
The manager also keeps per-transaction ``prev_lsn`` chaining on behalf of
callers and counts records/bytes in the metrics registry -- experiment E1
compares the log volume written by NSF's and SF's index builders.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import WALError
from repro.faultinject.sites import fault_point
from repro.metrics import MetricsRegistry
from repro.wal.records import LogRecord, OperationRegistry, RecordKind


class LogManager:
    """Append-only WAL with explicit force and crash semantics."""

    #: Simulated time units for one log force (group-committed).
    FLUSH_COST = 1.0

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.records: list[LogRecord] = []
        self.flushed_lsn = 0
        self.operations = OperationRegistry()
        #: LSN of the most recent complete checkpoint record, if any.
        #: Models the "master record" pointing at the latest checkpoint.
        self.master_checkpoint_lsn: Optional[int] = None

    # -- appending ---------------------------------------------------------

    def append(self, txn_id: Optional[int], kind: RecordKind, *,
               prev_lsn: Optional[int] = None,
               page_id: Any = None,
               redo: Optional[tuple[str, dict]] = None,
               undo: Optional[tuple[str, dict]] = None,
               undo_next_lsn: Optional[int] = None,
               info: Optional[dict] = None,
               writer: str = "txn") -> LogRecord:
        """Append one record; returns it with its LSN assigned.

        ``writer`` tags who wrote the record ("txn", "ib", "recovery") for
        the per-writer log-volume counters used by experiment E1.
        """
        record = LogRecord(
            lsn=len(self.records) + 1,
            txn_id=txn_id,
            kind=kind,
            prev_lsn=prev_lsn,
            page_id=page_id,
            redo=redo,
            undo=undo,
            undo_next_lsn=undo_next_lsn,
            info=dict(info or {}),
        )
        self.records.append(record)
        fault_point(self.metrics, "wal.append")
        self.metrics.incr("wal.records")
        self.metrics.incr(f"wal.records.{writer}")
        self.metrics.incr("wal.bytes", record.size)
        self.metrics.incr(f"wal.bytes.{writer}", record.size)
        return record

    # -- durability --------------------------------------------------------

    def flush(self, upto_lsn: Optional[int] = None) -> None:
        """Force the log to stable storage up to ``upto_lsn`` (default all).

        The *caller* charges the simulated time cost by yielding
        ``Delay(LogManager.FLUSH_COST)`` -- the manager itself is not a
        process.
        """
        target = upto_lsn if upto_lsn is not None else len(self.records)
        if target > len(self.records):
            raise WALError(f"cannot flush to future LSN {target}")
        if target > self.flushed_lsn:
            fault_point(self.metrics, "wal.force.before")
            self.flushed_lsn = target
            fault_point(self.metrics, "wal.force.after")
            self.metrics.incr("wal.forces")

    def crash(self) -> None:
        """Drop the volatile tail, as a system crash would."""
        del self.records[self.flushed_lsn:]

    # -- reading -----------------------------------------------------------

    def get(self, lsn: int) -> LogRecord:
        if not 1 <= lsn <= len(self.records):
            raise WALError(f"LSN {lsn} out of range")
        return self.records[lsn - 1]

    def scan(self, from_lsn: int = 1,
             to_lsn: Optional[int] = None) -> Iterator[LogRecord]:
        """Iterate records with ``from_lsn <= lsn <= to_lsn`` (stable+tail)."""
        end = to_lsn if to_lsn is not None else len(self.records)
        for lsn in range(max(from_lsn, 1), end + 1):
            yield self.records[lsn - 1]

    @property
    def last_lsn(self) -> int:
        return len(self.records)

    # -- checkpoints ---------------------------------------------------------

    def write_checkpoint(self, txn_table: dict, dirty_pages: dict,
                         utility_state: Optional[dict] = None, *,
                         utility_states: Optional[dict] = None) -> LogRecord:
        """Write a fuzzy checkpoint and update the master record.

        ``utility_state`` carries index-build / sort progress (sections
        2.2.3, 3.2.4, 5): the highest key inserted, sorted-run manifests,
        merge counters, side-file position -- whatever the interrupted
        utility needs to resume.  ``utility_states`` (table name ->
        payload) rides along only while several builds run concurrently,
        so each build's resume state survives the others' checkpoints;
        single-build records are unchanged.
        """
        info = {
            "txn_table": dict(txn_table),
            "dirty_pages": dict(dirty_pages),
            "utility_state": dict(utility_state or {}),
        }
        if utility_states:
            info["utility_states"] = {name: dict(state)
                                      for name, state
                                      in utility_states.items()}
        record = self.append(
            txn_id=None,
            kind=RecordKind.CHECKPOINT,
            info=info,
            writer="system",
        )
        self.flush(record.lsn)
        # The checkpoint record is stable but the master record still
        # points at the previous checkpoint -- a crash here must recover
        # from the *old* checkpoint and ignore the new one.
        fault_point(self.metrics, "wal.checkpoint.before_master")
        self.master_checkpoint_lsn = record.lsn
        tracer = getattr(self.metrics, "tracer", None)
        if tracer is not None:
            tracer.instant("wal.checkpoint", lsn=record.lsn,
                           phase=(utility_state or {}).get("phase"))
        return record

    def latest_checkpoint(self) -> Optional[LogRecord]:
        if self.master_checkpoint_lsn is None:
            return None
        if self.master_checkpoint_lsn > len(self.records):
            return None
        return self.get(self.master_checkpoint_lsn)
