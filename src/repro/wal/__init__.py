"""Write-ahead logging (WAL) substrate."""

from repro.wal.manager import LogManager
from repro.wal.records import LogRecord, OperationRegistry, RecordKind

__all__ = ["LogManager", "LogRecord", "OperationRegistry", "RecordKind"]
