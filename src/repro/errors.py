"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Errors that correspond to conditions the
paper discusses explicitly (unique-key violation, deadlock victim, crash)
get their own subclasses because calling code branches on them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad RID, full page, ...)."""


class PageFullError(StorageError):
    """A record or key does not fit in the target page."""


class RecordNotFoundError(StorageError):
    """A RID does not refer to a live record."""


class WALError(ReproError):
    """The write-ahead log was used incorrectly."""


class TransactionError(ReproError):
    """A transaction-level protocol violation."""


class TransactionAborted(TransactionError):
    """Raised inside a transaction process when it has been aborted.

    The transaction manager rolls the transaction back via the WAL; the
    workload driver is expected to catch this and optionally retry.
    """


class DeadlockVictim(TransactionAborted):
    """This transaction was chosen as the victim of a deadlock."""


class LockTimeout(TransactionAborted):
    """A lock request waited longer than the configured maximum."""


class UniqueViolationError(ReproError):
    """Inserting a key would violate a unique index's key-value uniqueness."""


class IndexBuildError(ReproError):
    """The index-build utility hit a non-recoverable condition.

    The paper's example: a unique index is requested but the table holds two
    committed records with the same key value (section 2.2.3).
    """


class SimulationError(ReproError):
    """The discrete-event kernel was driven incorrectly."""


class SystemCrash(ReproError):
    """Raised by crash injection to unwind every running process.

    After the simulator stops, the caller runs restart recovery
    (:mod:`repro.recovery`) against the surviving stable storage.
    """


class NodeDown(ReproError):
    """A cluster node failed while this process was running on it.

    Deliberately *not* a :class:`SystemCrash`: in a multi-node cluster the
    shared simulator must keep running the surviving nodes, so node death
    unwinds only the processes resident on the dead node.
    """


class SortRestartError(ReproError):
    """Restartable-sort checkpoint state is missing or inconsistent."""
