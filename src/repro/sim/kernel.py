"""Deterministic discrete-event simulation kernel.

The paper evaluates NSF and SF inside a multi-threaded mainframe DBMS.  A
faithful Python reproduction cannot use OS threads (the GIL serialises them
and makes interleavings non-deterministic), so concurrency is modelled with
generator-based *processes* driven by an event-driven scheduler over a
simulated clock.

A process is a generator function.  It interacts with the kernel by
yielding *effects*:

``Delay(duration)``
    Suspend for ``duration`` units of simulated time (models CPU or I/O
    cost).
``Acquire(resource, mode)``
    Block until the resource (latch, lock queue, ...) grants the request.
``Wait(event)``
    Block until :meth:`SimEvent.set` is called.  Yields the value passed to
    ``set``.
``Join(process)``
    Block until the given process finishes; yields its return value.

Sub-routines compose with ``yield from``.  Everything a process does
between two yields is atomic, exactly like the instruction sequences the
paper protects with latches; the latches still matter because processes
deliberately *yield between* extraction and insertion steps, reproducing
the races of section 1.2.

Determinism: ties in the event queue are broken by a monotonically
increasing sequence number, so two runs with the same seed produce
identical schedules.

Schedule exploration: the FIFO tie-break is only *one* of the legal
schedules; the paper's correctness arguments (sections 1.2, 2.1, 3.1)
quantify over every interleaving.  :attr:`Simulator.schedule_policy`
accepts a policy object with a single method::

    choose(time, procs, can_defer) -> int

called once per dispatch with the processes runnable at the current
instant, in FIFO order.  Returning an index in ``[0, len(procs))`` picks
that candidate (0 = the default FIFO choice); returning a negative value
*preempts* the FIFO head -- it is deferred behind every other event at
the next occupied instant, modelling an OS-level preemption at a yield
point.  Preemption is only honoured when ``can_defer`` is true, and a
policy must bound how often it preempts or the loop cannot make
progress.  Policies therefore perturb only same-timestamp ties and
bounded preemptions: every produced schedule is one a real scheduler
could have produced.  With no policy installed (or the FIFO default from
:mod:`repro.schedsweep.policy`), schedules are byte-identical to the
historical kernel.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError, SystemCrash

ProcessBody = Generator[Any, Any, Any]


@dataclass(frozen=True)
class Delay:
    """Suspend the yielding process for ``duration`` simulated time units."""

    duration: float


@dataclass(frozen=True)
class Wait:
    """Suspend until the event is set; resumes with the event's value."""

    event: "SimEvent"


@dataclass(frozen=True)
class Join:
    """Suspend until ``process`` completes; resumes with its return value."""

    process: "Process"


@dataclass(frozen=True)
class Acquire:
    """Blocking request for ``resource`` in ``mode`` ("S" or "X")."""

    resource: Any
    mode: str = "X"


class Process:
    """A running simulated process (transaction, index builder, driver)."""

    __slots__ = ("name", "body", "pid", "finished", "result", "error",
                 "_waiters", "started_at", "finished_at")

    def __init__(self, name: str, body: ProcessBody, pid: int) -> None:
        self.name = name
        self.body = body
        self.pid = pid
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: list[Process] = []
        self.started_at: float = 0.0
        self.finished_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else "live"
        return f"<Process {self.pid} {self.name!r} {state}>"


class SimEvent:
    """A one-shot signal processes can wait on.

    ``set(value)`` wakes every waiter; waiting on an already-set event
    resumes immediately with the stored value.
    """

    __slots__ = ("_sim", "is_set", "value", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self.is_set = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def set(self, value: Any = None) -> None:
        if self.is_set:
            return
        self.is_set = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._resume(proc, value)

    def _register(self, proc: Process) -> bool:
        """Park ``proc``; return True if it must wait (event not yet set)."""
        if self.is_set:
            return False
        self._waiters.append(proc)
        return True


class Barrier:
    """A reusable synchronization point for ``parties`` processes.

    Each participant runs ``yield from barrier.wait()``; the first
    ``parties - 1`` arrivals block, and the last arrival releases the
    whole generation at the current simulated instant (nobody pays extra
    simulated time for the rendezvous itself).  The barrier then resets,
    so successive phases of the same process group can reuse it.

    ``wait()`` returns the 1-based generation number that was released,
    which callers can use to assert phase alignment.
    """

    __slots__ = ("_sim", "parties", "generation", "_arrived", "_event")

    def __init__(self, sim: "Simulator", parties: int) -> None:
        if parties < 1:
            raise SimulationError(f"barrier needs >= 1 party, got {parties}")
        self._sim = sim
        self.parties = parties
        #: completed generations (a generation completes when the last
        #: party arrives)
        self.generation = 0
        self._arrived = 0
        self._event = sim.event()

    @property
    def waiting(self) -> int:
        """Parties currently blocked at the barrier."""
        return self._arrived

    def wait(self):
        """Generator: arrive at the barrier; resume when all parties have."""
        self._arrived += 1
        if self._arrived >= self.parties:
            # Last arrival: release this generation and reset for reuse.
            self._arrived = 0
            self.generation += 1
            event, self._event = self._event, self._sim.event()
            event.set(self.generation)
            return self.generation
        generation = yield Wait(self._event)
        return generation


class ProcessGroup:
    """Spawn-and-join bookkeeping for one parallel phase.

    Groups the worker processes of a fan-out (e.g. the partition scanners
    of a parallel index build) so the coordinator can join them all and
    propagate the first worker error deterministically (lowest pid first)
    instead of relying on the simulator's global failure behaviour.
    """

    __slots__ = ("_sim", "name", "processes")

    def __init__(self, sim: "Simulator", name: str = "group") -> None:
        self._sim = sim
        self.name = name
        self.processes: list[Process] = []

    def spawn(self, body: ProcessBody, name: Optional[str] = None
              ) -> Process:
        proc = self._sim.spawn(
            body, name=name or f"{self.name}-{len(self.processes)}")
        self.processes.append(proc)
        return proc

    def __len__(self) -> int:
        return len(self.processes)

    def join_all(self):
        """Generator: wait for every member; raise the first error seen."""
        for proc in self.processes:
            yield Join(proc)
        for proc in self.processes:
            if proc.error is not None:
                raise proc.error
        return [proc.result for proc in self.processes]


class Simulator:
    """Event-driven scheduler over a simulated clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Process, Any, bool]] = []
        self._seq = 0
        self._pid = 0
        self.live_processes = 0
        self.crashed = False
        self.crash_error: Optional[SystemCrash] = None
        #: The process currently executing between two yields.  Code called
        #: synchronously from a process body may read this to identify the
        #: caller (e.g. for latch ownership).
        self.current: Optional[Process] = None
        #: Installed fault injector (see :mod:`repro.faultinject`); when
        #: set, it is consulted before every dispatch of a watched process
        #: so a crash can land on any scheduler step.
        self.fault_injector: Optional[Any] = None
        #: Installed schedule policy (see module docstring).  None keeps
        #: the historical FIFO dispatch byte-for-byte.
        self.schedule_policy: Optional[Any] = None
        #: every process ever spawned, in pid order (for :meth:`processes`)
        self._processes: list[Process] = []

    # -- spawning -------------------------------------------------------

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        """Register a new process; it first runs when the loop reaches it."""
        self._pid += 1
        proc = Process(name, body, self._pid)
        proc.started_at = self.now
        self.live_processes += 1
        self._processes.append(proc)
        self._schedule(proc, delay=0.0, value=None)
        return proc

    def processes(self) -> list[dict]:
        """Per-process lifetime summary, in spawn (pid) order.

        ``busy_time`` is spawn-to-finish simulated time -- a process
        blocked on a latch or event is still "busy" from the scheduler's
        point of view; a still-live process is charged up to :attr:`now`
        with ``finished_at`` left None.
        """
        rows = []
        for proc in self._processes:
            end = proc.finished_at if proc.finished else self.now
            rows.append({
                "pid": proc.pid,
                "name": proc.name,
                "finished": proc.finished,
                "started_at": proc.started_at,
                "finished_at": proc.finished_at if proc.finished else None,
                "busy_time": end - proc.started_at,
            })
        return rows

    def event(self) -> SimEvent:
        """Create a new unset :class:`SimEvent`."""
        return SimEvent(self)

    # -- internal scheduling -------------------------------------------

    def _schedule(self, proc: Process, delay: float, value: Any,
                  throw: bool = False) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, proc,
                                     value, throw))

    def _resume(self, proc: Process, value: Any = None) -> None:
        """Make a blocked process runnable at the current time."""
        self._schedule(proc, delay=0.0, value=value)

    def _throw(self, proc: Process, error: BaseException) -> None:
        """Make a blocked process resume by raising ``error`` inside it."""
        self._schedule(proc, delay=0.0, value=error, throw=True)

    # -- main loop ------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Dispatch events until the queue drains, crash, or ``until``.

        Raises nothing on a simulated crash: the kernel stops, sets
        :attr:`crashed`, and the caller inspects surviving stable storage.
        A Python error inside a process propagates (it is a bug, not a
        simulated failure) -- except :class:`SystemCrash`.
        """
        while self._queue:
            if self.schedule_policy is not None:
                entry = self._pop_with_policy(until)
                if entry is None:
                    return
                time, _seq, proc, value, throw = entry
            else:
                time, seq, proc, value, throw = heapq.heappop(self._queue)
                if until is not None and time > until:
                    # Put it back *unchanged* so a later run() continues
                    # from here.  The original sequence number must be
                    # preserved: re-stamping it would reorder this event
                    # behind same-timestamp peers still in the queue,
                    # making run-in-slices diverge from one continuous
                    # run().
                    heapq.heappush(self._queue,
                                   (time, seq, proc, value, throw))
                    self.now = until
                    return
            self.now = time
            if proc.finished:
                continue
            self._step(proc, value, throw)
            if self.crashed:
                return

    def _pop_with_policy(self, until: Optional[float]):
        """Pop the next event, letting :attr:`schedule_policy` choose
        among same-timestamp ties.

        Returns the chosen queue entry, or None when the ``until``
        boundary (or an all-dead queue) stops this run() call.  Unchosen
        tied entries go back with their original sequence numbers, so
        FIFO order among them is preserved; a preempted FIFO head is
        re-stamped at the next occupied instant.
        """
        policy = self.schedule_policy
        while self._queue:
            head_time = self._queue[0][0]
            if until is not None and head_time > until:
                self.now = until
                return None
            batch = []
            while self._queue and self._queue[0][0] == head_time:
                batch.append(heapq.heappop(self._queue))
            live = [e for e in batch if not e[2].finished]
            if not live:
                # Parity with the unhooked loop: the clock advances over
                # events addressed to finished processes.
                self.now = head_time
                continue
            can_defer = bool(self._queue) or len(live) > 1
            choice = policy.choose(head_time, [e[2] for e in live],
                                   can_defer)
            if choice < 0 and can_defer:
                # Preempt the FIFO head: defer it to the next occupied
                # instant (or behind its same-time peers), where it joins
                # that batch's tie-break.
                deferred = live[0]
                for e in live[1:]:
                    heapq.heappush(self._queue, e)
                target = self._queue[0][0] if self._queue else head_time
                self._seq += 1
                heapq.heappush(self._queue, (target, self._seq,
                                             deferred[2], deferred[3],
                                             deferred[4]))
                continue
            chosen = live[choice] if 0 <= choice < len(live) else live[0]
            for e in live:
                if e is not chosen:
                    heapq.heappush(self._queue, e)
            return chosen
        return None

    def _step(self, proc: Process, value: Any, throw: bool) -> None:
        if self.fault_injector is not None and not throw:
            crash = self.fault_injector.kernel_step(proc)
            if crash is not None:
                value, throw = crash, True
        self.current = proc
        try:
            if throw:
                effect = proc.body.throw(value)
            else:
                effect = proc.body.send(value)
        except StopIteration as stop:
            self._finish(proc, result=stop.value)
            return
        except SystemCrash as crash:
            self.crashed = True
            self.crash_error = crash
            self._finish(proc, error=crash)
            return
        except BaseException as error:
            # A Python error is a bug, not a simulated failure: it still
            # propagates out of run(), but the process must be finished
            # with the error recorded first so joiners see the failure
            # (thrown into them by _finish) instead of hanging forever or
            # silently resuming with result=None.
            self._finish(proc, error=error)
            raise
        finally:
            self.current = None
        self._dispatch(proc, effect)

    def _dispatch(self, proc: Process, effect: Any) -> None:
        if isinstance(effect, Delay):
            self._schedule(proc, delay=effect.duration, value=None)
        elif isinstance(effect, Acquire):
            effect.resource._request(self, proc, effect.mode)
        elif isinstance(effect, Wait):
            if not effect.event._register(proc):
                self._resume(proc, effect.event.value)
        elif isinstance(effect, Join):
            target = effect.process
            if target.finished:
                if target.error is not None:
                    # The target already died with an error: a bare Join
                    # must surface it, not yield result=None.
                    self._throw(proc, target.error)
                else:
                    self._resume(proc, target.result)
            else:
                target._waiters.append(proc)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded unknown effect {effect!r}")

    def _finish(self, proc: Process, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        proc.finished = True
        proc.result = result
        proc.error = error
        proc.finished_at = self.now
        self.live_processes -= 1
        waiters, proc._waiters = proc._waiters, []
        for waiter in waiters:
            if error is not None:
                # Throw the failure into every joiner.  ProcessGroup's
                # join_all keeps its lowest-pid-first semantics because
                # it joins members in spawn order.
                self._throw(waiter, error)
            else:
                self._resume(waiter, result)


def run_to_completion(bodies: Iterable[tuple[str, ProcessBody]],
                      until: Optional[float] = None) -> Simulator:
    """Convenience: spawn named processes on a fresh simulator and run it."""
    sim = Simulator()
    for name, body in bodies:
        sim.spawn(body, name=name)
    sim.run(until=until)
    return sim


def call(func: Callable[..., ProcessBody], *args: Any, **kwargs: Any):
    """Readability helper: ``yield from call(f, x)`` == ``yield from f(x)``."""
    return func(*args, **kwargs)
