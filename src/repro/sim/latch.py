"""Latches: cheap short-duration S/X synchronisation on pages.

Section 1.1 of the paper: "A latch is like a semaphore and it is very cheap
in terms of instructions executed.  It provides physical consistency of the
data when a page is being examined.  Readers of the page acquire a share
(S) latch, while updaters acquire an exclusive (X) latch."

The latch implements the :class:`repro.sim.kernel.Acquire` resource
protocol.  Grant policy is FIFO with share grouping: a share request joins
current share holders only if no exclusive request is already queued, which
prevents writer starvation (the policy used by industrial latch
implementations and assumed by the paper's hold-time arguments).

Latch acquisitions and waits are counted in the owning system's metrics
registry so experiments can report latch traffic (section 2.3.1: "This
saves the pathlength of lock and unlock").
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Process, Simulator

SHARE = "S"
EXCLUSIVE = "X"


class Latch:
    """A share/exclusive latch with FIFO grant order."""

    __slots__ = ("name", "metrics", "_holders", "_mode", "_waiters", "_sim")

    def __init__(self, name: str,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.name = name
        self.metrics = metrics
        self._holders: dict["Process", int] = {}
        self._mode: Optional[str] = None
        self._waiters: deque[tuple["Process", str, float]] = deque()
        self._sim: Optional["Simulator"] = None

    @property
    def busy(self) -> bool:
        """True while any process holds or awaits this latch.

        The buffer pool consults this before evicting a page: a busy
        latch means some process already holds a reference to the page
        object and is (or is about to be) examining or updating it, so
        replacing the frame would strand that process on a zombie copy.
        """
        return bool(self._holders or self._waiters)

    # -- kernel resource protocol ----------------------------------------

    def _request(self, sim: "Simulator", proc: "Process", mode: str) -> None:
        if mode not in (SHARE, EXCLUSIVE):
            raise SimulationError(f"bad latch mode {mode!r}")
        self._sim = sim
        if self.metrics is not None:
            self.metrics.incr("latch.requests")
        if self._grantable(proc, mode):
            self._grant(proc, mode)
            sim._resume(proc, self)
        else:
            if self.metrics is not None:
                self.metrics.incr("latch.waits")
            self._waiters.append((proc, mode, sim.now))

    # -- grant logic -------------------------------------------------------

    def _grantable(self, proc: "Process", mode: str) -> bool:
        if proc in self._holders:
            raise SimulationError(
                f"process {proc.name!r} re-acquiring latch {self.name!r}")
        if self._mode is None:
            return True
        if mode == SHARE and self._mode == SHARE:
            # Share joins shares only if no exclusive request is queued.
            return not any(m == EXCLUSIVE for _p, m, _t in self._waiters)
        return False

    def _grant(self, proc: "Process", mode: str) -> None:
        self._holders[proc] = 1
        self._mode = mode

    def release(self, proc: Optional["Process"]) -> None:
        """Release the latch held by ``proc`` and wake eligible waiters.

        ``proc`` may be None when a crashed process's generator is being
        garbage-collected (its ``finally`` blocks run outside any kernel
        step); the latch is volatile state at that point, so the release
        is best-effort and silent.
        """
        if proc is None:
            # Drain every holder that has already finished (the crashed
            # or errored process's generator is being GC'd, possibly
            # after several holders died in the same schedule), then fall
            # back to popping one arbitrary holder so the release is
            # never a silent no-op.  Crucially, if the latch frees up,
            # surviving queued processes must be woken -- otherwise they
            # hang forever, which schedule sweeps observe as a lost
            # wakeup.
            if self._holders:
                dead = [p for p in self._holders if p.finished]
                if dead:
                    for p in dead:
                        del self._holders[p]
                else:
                    self._holders.pop(next(iter(self._holders)))
                if not self._holders:
                    self._mode = None
                    self._wake_waiters()
            return
        if proc not in self._holders:
            raise SimulationError(
                f"process {proc.name!r} releasing latch {self.name!r} "
                "it does not hold")
        del self._holders[proc]
        if self._holders:
            return  # other share holders remain
        self._mode = None
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        if self._sim is None:
            return
        # Drop waiters that died (crashed/errored) while queued: granting
        # to a finished process would hold the latch forever because the
        # kernel never dispatches it again to release.
        while self._waiters and self._waiters[0][0].finished:
            self._waiters.popleft()
        if not self._waiters:
            return
        proc, mode, queued_at = self._waiters[0]
        if mode == EXCLUSIVE:
            self._waiters.popleft()
            self._record_wait(queued_at)
            self._grant(proc, EXCLUSIVE)
            self._sim._resume(proc, self)
            return
        # Grant the whole leading run of share requests.
        while self._waiters and self._waiters[0][1] == SHARE:
            proc, _mode, queued_at = self._waiters.popleft()
            if proc.finished:
                continue
            self._record_wait(queued_at)
            self._grant(proc, SHARE)
            self._sim._resume(proc, self)

    def _record_wait(self, queued_at: float) -> None:
        if self.metrics is not None and self._sim is not None:
            self.metrics.observe("latch.wait_time", self._sim.now - queued_at)

    # -- introspection -----------------------------------------------------

    @property
    def held(self) -> bool:
        return bool(self._holders)

    def held_by(self, proc: "Process") -> bool:
        return proc in self._holders

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Latch {self.name!r} mode={self._mode} "
                f"holders={len(self._holders)} waiters={len(self._waiters)}>")


