"""Deterministic discrete-event concurrency kernel.

See :mod:`repro.sim.kernel` for the process/effect model and
:mod:`repro.sim.latch` for S/X latches.
"""

from repro.sim.kernel import (
    Acquire,
    Barrier,
    Delay,
    Join,
    Process,
    ProcessGroup,
    SimEvent,
    Simulator,
    Wait,
    run_to_completion,
)
from repro.sim.latch import EXCLUSIVE, SHARE, Latch

__all__ = [
    "Acquire",
    "Barrier",
    "Delay",
    "Join",
    "Process",
    "ProcessGroup",
    "SimEvent",
    "Simulator",
    "Wait",
    "run_to_completion",
    "EXCLUSIVE",
    "SHARE",
    "Latch",
]
