"""Counting semaphore: a FIFO-fair pool of N interchangeable units.

Implements the :class:`repro.sim.kernel.Acquire` resource protocol like
:class:`repro.sim.latch.Latch`, but grants up to ``capacity`` concurrent
holders regardless of mode.  The first use is the shared-disk model
(:attr:`repro.system.SystemConfig.disk_channels`): each buffer-pool page
I/O holds one channel for its duration, so concurrent I/Os queue the way
they would on a real device with ``capacity`` independent spindles.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Process, Simulator


class Semaphore:
    """``capacity`` units granted FIFO; one holder may hold one unit."""

    __slots__ = ("name", "capacity", "metrics", "_holders", "_waiters",
                 "_sim")

    def __init__(self, name: str, capacity: int,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise SimulationError(
                f"semaphore {name!r} needs capacity >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.metrics = metrics
        self._holders: dict["Process", int] = {}
        self._waiters: deque[tuple["Process", float]] = deque()
        self._sim: Optional["Simulator"] = None

    # -- kernel resource protocol ----------------------------------------

    def _request(self, sim: "Simulator", proc: "Process",
                 mode: str) -> None:
        self._sim = sim
        if proc in self._holders:
            raise SimulationError(
                f"process {proc.name!r} re-acquiring semaphore "
                f"{self.name!r}")
        if self.metrics is not None:
            self.metrics.incr(f"semaphore.{self.name}.requests")
        if len(self._holders) < self.capacity and not self._waiters:
            self._holders[proc] = 1
            sim._resume(proc, self)
        else:
            if self.metrics is not None:
                self.metrics.incr(f"semaphore.{self.name}.waits")
            self._waiters.append((proc, sim.now))

    def release(self, proc: Optional["Process"]) -> None:
        """Release ``proc``'s unit and grant the next waiter.

        ``proc`` may be None when a crashed process's generator is GC'd
        (mirrors :meth:`repro.sim.latch.Latch.release`).
        """
        if proc is None:
            dead = [p for p in self._holders if p.finished]
            for p in dead or list(self._holders)[:1]:
                del self._holders[p]
            self._wake_waiters()
            return
        if proc not in self._holders:
            raise SimulationError(
                f"process {proc.name!r} releasing semaphore "
                f"{self.name!r} it does not hold")
        del self._holders[proc]
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        if self._sim is None:
            return
        while self._waiters and len(self._holders) < self.capacity:
            proc, queued_at = self._waiters.popleft()
            if proc.finished:
                continue  # died (crash/error) while queued
            if self.metrics is not None:
                self.metrics.observe(
                    f"semaphore.{self.name}.wait_time",
                    self._sim.now - queued_at)
            self._holders[proc] = 1
            self._sim._resume(proc, self)

    # -- introspection -----------------------------------------------------

    @property
    def in_use(self) -> int:
        return len(self._holders)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Semaphore {self.name!r} {len(self._holders)}/"
                f"{self.capacity} waiters={len(self._waiters)}>")
