"""Open-loop traffic generation on the simulated clock.

The closed-loop :class:`~repro.workloads.generator.WorkloadDriver`
workers wait for each transaction to finish before issuing the next, so
a slow system *slows the workload down* and latency degradation hides
inside reduced throughput (coordinated omission).  Production SLOs are
measured open-loop: arrivals are pre-scheduled by an external clock and
issued regardless of how many earlier operations are still in flight, so
a system slower than the arrival rate accumulates backlog and the
latency distribution shows it.

:func:`arrival_schedule` pre-computes the whole arrival process as a
pure function of ``(spec, seed)`` -- Poisson (exponential gaps at a
constant rate) or bursty (the instantaneous rate alternates between a
peak of ``rate * burst_factor`` for the first ``burst_fraction`` of each
``burst_period`` and a trough chosen to keep the long-run mean near
``rate``).  :class:`OpenLoopDriver` then replays that schedule: a
dispatcher process sleeps to each arrival instant and spawns a detached
per-operation process, tracking the in-flight count (the queue depth the
SLO analyzer reads back out of the trace).

Each operation is wrapped in a ``repro.obs`` ``op`` span from issue to
completion, so ``python -m repro.slo`` can derive p50/p95/p99 from the
trace JSONL; the same issue timestamp lands in ``op_timeline`` records
(:attr:`~repro.workloads.generator.OpRecord.issued`).

The mix adds two read operations to the writer mix: ``read`` (point read
of a live RID) and ``range`` (key-range scan that prefers the index
being built and falls back to a full table scan while the index is
unavailable -- the paper's availability story, observable as the
``openloop.range_via_index`` / ``..._via_scan`` counters).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import RecordNotFoundError, TransactionAborted
from repro.query.access import (
    IndexNotAvailableError,
    index_range_scan,
    table_scan,
)
from repro.sim.kernel import Delay
from repro.storage.rid import RID
from repro.workloads.generator import WorkloadDriver, WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table
    from repro.system import System


@dataclass
class OpenLoopSpec:
    """Shape of one open-loop traffic run."""

    #: total operations issued (arrivals)
    operations: int = 200
    #: mean arrival rate, operations per simulated time unit
    rate: float = 1.0
    #: arrival process: "poisson" or "bursty"
    arrivals: str = "poisson"
    #: bursty: peak-rate multiplier during the burst window
    burst_factor: float = 4.0
    #: bursty: fraction of each period spent at the peak rate
    burst_fraction: float = 0.25
    #: bursty: burst cycle length in simulated time units
    burst_period: float = 50.0
    #: relative weights of the operation mix
    read_weight: float = 2.0
    range_weight: float = 0.5
    insert_weight: float = 1.0
    update_weight: float = 1.0
    delete_weight: float = 0.5
    #: range reads cover [low, low + range_span)
    range_span: int = 200
    #: weighted columns for range reads: ``((column, weight), ...)``.
    #: Each range read draws one column and scans it via the first index
    #: leading with that column (falling back to a table scan while it
    #: is unavailable) -- the multi-column query mix the index advisor
    #: (:mod:`repro.advisor`) derives its candidates from.  Empty keeps
    #: the single-column behaviour driven by ``index_name``.
    range_columns: tuple = ()
    #: key values are drawn from [0, key_space)
    key_space: int = 10_000
    #: "uniform", "skewed" (power-law squash), or "zipf" (rank-weighted)
    distribution: str = "uniform"
    #: zipf exponent (s > 0; larger = more skew toward low keys)
    zipf_s: float = 1.1
    #: fraction of write transactions deliberately rolled back
    rollback_fraction: float = 0.0
    #: fraction of updates that change the key columns
    key_change_fraction: float = 0.8


def _instant_rate(spec: OpenLoopSpec, t: float) -> float:
    """Instantaneous arrival rate at time ``t``."""
    if spec.arrivals == "poisson":
        return spec.rate
    if spec.arrivals != "bursty":
        raise ValueError(f"unknown arrival process {spec.arrivals!r}")
    phase = (t % spec.burst_period) / spec.burst_period
    if phase < spec.burst_fraction:
        return spec.rate * spec.burst_factor
    # Trough rate chosen so the cycle's mean stays near spec.rate
    # (floored: a burst_factor >= 1/burst_fraction would drive it to 0).
    trough = (1.0 - spec.burst_fraction * spec.burst_factor) \
        / (1.0 - spec.burst_fraction)
    return spec.rate * max(0.05, trough)


def arrival_schedule(spec: OpenLoopSpec, seed: int = 0) -> list[float]:
    """Absolute arrival offsets for the whole run.

    A pure function of ``(spec, seed)``: the schedule is fixed before
    the system runs, which is what makes the load *open*-loop -- and
    what makes replays deterministic regardless of how the system under
    test behaves.
    """
    if spec.rate <= 0:
        raise ValueError(f"rate must be positive, got {spec.rate!r}")
    rng = random.Random((seed << 4) ^ 0x0A1)
    times: list[float] = []
    t = 0.0
    for _ in range(spec.operations):
        t += rng.expovariate(_instant_rate(spec, t))
        times.append(t)
    return times


class ZipfSampler:
    """Bounded Zipf(s) sampling over ranks ``0..n-1`` (rank 0 hottest).

    Cumulative weights are precomputed once; each draw is one uniform
    variate plus a binary search, so sampling cost is independent of the
    skew and the key space.
    """

    def __init__(self, n: int, s: float) -> None:
        if n < 1:
            raise ValueError(f"need at least one rank, got {n}")
        if s <= 0:
            raise ValueError(f"zipf exponent must be positive, got {s}")
        self.n = n
        self.s = s
        cumulative: list[float] = []
        total = 0.0
        for rank in range(n):
            total += (rank + 1) ** -s
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> int:
        # rng.random() < 1.0, but the product with _total can round up
        # to (or past) the last cumulative weight -- e.g. when _total's
        # binary representation rounds the final partial sum down --
        # and bisect_left then returns n, an out-of-range rank.  Clamp.
        index = bisect_left(self._cumulative, rng.random() * self._total)
        return index if index < self.n else self.n - 1


class OpenLoopDriver(WorkloadDriver):
    """Issues a pre-scheduled arrival stream against one table.

    Layered over :class:`WorkloadDriver`: write operations reuse its
    ``_one_transaction`` / RID-pool machinery verbatim (so audits and
    the serial reference replay keep working); this class adds the
    dispatcher, the read operations, Zipf key skew, and in-flight
    accounting.
    """

    def __init__(self, system: "System", table: "Table",
                 spec: Optional[OpenLoopSpec] = None, seed: int = 0,
                 index_name: Optional[str] = None) -> None:
        olspec = spec or OpenLoopSpec()
        base = WorkloadSpec(
            operations=olspec.operations, workers=1, think_time=0.0,
            insert_weight=olspec.insert_weight,
            delete_weight=olspec.delete_weight,
            update_weight=olspec.update_weight,
            rollback_fraction=olspec.rollback_fraction,
            key_space=olspec.key_space,
            distribution=("uniform" if olspec.distribution == "zipf"
                          else olspec.distribution),
            key_change_fraction=olspec.key_change_fraction)
        super().__init__(system, table, base, seed=seed)
        self.olspec = olspec
        self.index_name = index_name
        self._range_columns = list(olspec.range_columns)
        for name, _weight in self._range_columns:
            if name not in table.columns:
                raise ValueError(f"range column {name!r} not in table "
                                 f"{table.name!r} columns {table.columns}")
        self._zipf = ZipfSampler(olspec.key_space, olspec.zipf_s) \
            if olspec.distribution == "zipf" else None
        self.arrivals = arrival_schedule(olspec, seed)
        #: operations issued but not yet completed (open-loop backlog)
        self.inflight = 0
        self.inflight_high_water = 0

    # -- key skew ----------------------------------------------------------

    def _draw_key(self, rng) -> int:
        if self._zipf is not None:
            return self._zipf.sample(rng)
        return super()._draw_key(rng)

    # -- dispatch ----------------------------------------------------------

    def spawn(self):
        """Spawn the dispatcher process; returns it (join to wait for
        issuance to finish -- completions may still be in flight)."""
        self.started_at = self.system.sim.now
        return self.system.spawn(self.dispatcher(), name="openloop")

    def dispatcher(self):
        """Generator process: sleep to each arrival, fire-and-forget the
        operation.  Never waits on an operation -- that is the point."""
        rng = random.Random((self.seed << 8) ^ 0xD15)
        ops = ["read", "range", "insert", "delete", "update"]
        weights = [self.olspec.read_weight, self.olspec.range_weight,
                   self.olspec.insert_weight, self.olspec.delete_weight,
                   self.olspec.update_weight]
        for op_id, at in enumerate(self.arrivals):
            delay = self.started_at + at - self.system.sim.now
            if delay > 0:
                yield Delay(delay)
            op = rng.choices(ops, weights=weights)[0]
            # Independent per-op stream: the dispatcher's own rng stays
            # in lockstep with the arrival count no matter what each
            # operation consumes.
            op_rng = random.Random((self.seed << 16) ^ (op_id * 0x9E3779B1))
            self.inflight += 1
            if self.inflight > self.inflight_high_water:
                self.inflight_high_water = self.inflight
            self._gauge_inflight()
            self.system.spawn(self._op_body(op_id, op, op_rng),
                              name=f"ol-op-{op_id}")
        return len(self.arrivals)

    def _gauge_inflight(self) -> None:
        tracer = self.system.metrics.tracer
        if tracer is not None:
            tracer.gauge("openloop.inflight", self.inflight)

    def _op_body(self, op_id: int, op: str, rng):
        """One operation's process: span from issue to completion."""
        tracer = self.system.metrics.tracer
        span = tracer.begin_span("op", op=op, id=op_id) \
            if tracer is not None else None
        issued = self.system.sim.now
        outcome = "error"
        try:
            if op in ("read", "range"):
                outcome = yield from self._read_op(op, rng)
            else:
                # _one_transaction stamps issued = sim.now, which still
                # equals the arrival instant: spawning costs no
                # simulated time.
                yield from self._one_transaction(rng, 0, op)
                outcome = self.op_timeline[-1].outcome
        finally:
            if outcome == "committed":
                # Live latency histograms: the same committed-op
                # population `repro.slo.analyzer.latency_report` later
                # extracts from the trace, but available online.  Pure
                # bookkeeping -- no simulated time, no schedule effect.
                latency = self.system.sim.now - issued
                metrics = self.system.metrics
                metrics.observe_hist("openloop.latency", latency)
                metrics.observe_hist(f"openloop.latency.{op}", latency)
            self.inflight -= 1
            self._gauge_inflight()
            if span is not None:
                tracer.end_span(span, outcome=outcome)

    # -- read operations ---------------------------------------------------

    def _read_op(self, op: str, rng):
        issued = self.system.sim.now
        txn = self.system.txns.begin(f"ol-{op}")
        try:
            if op == "read":
                rid = self._sample_rid(rng)
                if rid is not None:
                    try:
                        yield from self.table.read(txn, rid)
                    except RecordNotFoundError:
                        # A concurrent delete won the race after we
                        # sampled: an empty result, not an error.
                        pass
                else:
                    op = "noop"
            else:
                yield from self._range_read(txn, rng)
            yield from txn.commit()
            self._record(op, 0, "committed", issued=issued)
            return "committed"
        except TransactionAborted:
            yield from txn.rollback()
            self._record(op, 0, "aborted", issued=issued)
            return "aborted"

    def _range_read(self, txn, rng):
        """Key-range read: via the index when AVAILABLE, else the full
        scan the index exists to avoid (section 2.2.4's motivation).

        With ``spec.range_columns`` set, each read first draws the
        column it filters on; availability is probed per column, so the
        ``openloop.range_via_index.<column>`` counters show each index
        taking over its queries as it flips AVAILABLE mid-run.
        """
        low = self._draw_key(rng)
        high = low + self.olspec.range_span
        column: Optional[str] = None
        position = 0
        if self._range_columns:
            column = rng.choices(
                [name for name, _weight in self._range_columns],
                weights=[weight
                         for _name, weight in self._range_columns])[0]
            descriptor = self._index_leading_on(column)
            position = self.table.columns.index(column)
        else:
            descriptor = self.system.indexes.get(self.index_name) \
                if self.index_name is not None else None
        if descriptor is not None:
            try:
                # Index keys are column tuples (IndexDescriptor.key_of).
                results = yield from index_range_scan(
                    txn, descriptor, (low,), (high,))
                self.system.metrics.incr("openloop.range_via_index")
                if column is not None:
                    self.system.metrics.incr(
                        f"openloop.range_via_index.{column}")
                return results
            except IndexNotAvailableError:
                pass
        results = yield from table_scan(
            txn, self.table,
            predicate=lambda record: low <= record.values[position] < high)
        self.system.metrics.incr("openloop.range_via_scan")
        if column is not None:
            self.system.metrics.incr(f"openloop.range_via_scan.{column}")
        return results

    def _index_leading_on(self, column: str):
        """The first of the table's indexes whose leading key column is
        ``column`` (any state -- availability is probed by the scan
        attempt, exactly like the ``index_name`` path)."""
        for descriptor in self.table.indexes:
            key_columns = getattr(descriptor, "key_columns", ())
            if key_columns and key_columns[0] == column:
                return descriptor
        return None

    def _sample_rid(self, rng) -> Optional[RID]:
        """A live committed RID to point-read (no claim: readers only
        take S locks, so sharing a victim with a writer is the conflict
        we *want* to measure)."""
        if not self.pool:
            return None
        return rng.choice(list(self.pool))

    # -- analysis ----------------------------------------------------------

    def latencies(self, only_committed: bool = True) -> list[float]:
        """Issue-to-completion latencies from the op timeline."""
        return [record.latency for record in self.op_timeline
                if record.issued >= 0
                and (not only_committed or record.outcome == "committed")]
