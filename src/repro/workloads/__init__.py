"""Workload generation for online index-build experiments."""

from repro.workloads.generator import OpRecord, WorkloadDriver, WorkloadSpec

__all__ = ["OpRecord", "WorkloadDriver", "WorkloadSpec"]
