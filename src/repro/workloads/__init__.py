"""Workload generation for online index-build experiments."""

from repro.workloads.generator import OpRecord, WorkloadDriver, WorkloadSpec
from repro.workloads.openloop import (
    OpenLoopDriver,
    OpenLoopSpec,
    ZipfSampler,
    arrival_schedule,
)

__all__ = [
    "OpRecord",
    "OpenLoopDriver",
    "OpenLoopSpec",
    "WorkloadDriver",
    "WorkloadSpec",
    "ZipfSampler",
    "arrival_schedule",
]
