"""Transaction workload generation.

Drives the update transactions the paper's execution model assumes run
concurrently with IB.  A :class:`WorkloadDriver` spawns worker processes
that insert, delete, and update records with configurable mix, key
distribution, think time, and deliberate-rollback fraction (rollbacks are
what exercise the undo-only records, tombstone reactivation, and Figure 2
logic).

Workers coordinate through a shared RID pool: a delete or update *claims*
a committed RID so two transactions never fight over the same victim (they
still conflict on pages, latches, and key ranges, which is the contention
the experiments measure).  Every completed operation is appended to
``op_timeline`` so experiments can plot throughput over time and quiesce
stalls (E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.errors import TransactionAborted
from repro.sim.kernel import Delay
from repro.storage.rid import RID

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.table import Table
    from repro.system import System


@dataclass
class WorkloadSpec:
    """Shape of one update workload."""

    #: operations per worker
    operations: int = 100
    #: number of concurrent worker processes
    workers: int = 2
    #: relative weights of the operation mix
    insert_weight: float = 1.0
    delete_weight: float = 1.0
    update_weight: float = 1.0
    #: mean think time between operations (exponential)
    think_time: float = 2.0
    #: fraction of transactions deliberately rolled back after their
    #: operation (exercises undo paths)
    rollback_fraction: float = 0.1
    #: key values are drawn from [0, key_space)
    key_space: int = 10_000
    #: "uniform" or "skewed" (approximate 80/20 power law)
    distribution: str = "uniform"
    #: fraction of updates that change the key columns (index-relevant)
    key_change_fraction: float = 0.8


@dataclass
class OpRecord:
    """One completed (or aborted) operation for the timeline."""

    time: float
    op: str
    worker: int
    outcome: str  # "committed", "rolledback", "aborted"
    #: simulated time the operation was issued (transaction begin);
    #: -1.0 for records from callers predating the field, so existing
    #: 4-positional construction stays valid
    issued: float = -1.0

    @property
    def latency(self) -> float:
        """Issue-to-completion latency (0.0 when issue time unknown)."""
        return self.time - self.issued if self.issued >= 0 else 0.0


class WorkloadDriver:
    """Spawns and coordinates update workers against one table."""

    def __init__(self, system: "System", table: "Table",
                 spec: Optional[WorkloadSpec] = None,
                 seed: int = 0) -> None:
        self.system = system
        self.table = table
        self.spec = spec or WorkloadSpec()
        self.seed = seed
        #: committed (rid, key) pairs available to delete/update
        self.pool: dict[RID, int] = {}
        self.op_timeline: list[OpRecord] = []
        self.ops_done = 0
        #: hook building the stored row for a ``(key, tag)`` pair.
        #: Experiments over wider tables (extra indexable columns) set a
        #: callable here; extra columns must be deterministic functions
        #: of the key so serial-equivalence replays stay exact.  The
        #: default two-column row keeps existing schedules byte-identical.
        self.row_factory = None

    def _row(self, key: int, tag: str) -> tuple:
        if self.row_factory is not None:
            return self.row_factory(key, tag)
        return (key, tag)

    # -- seeding -----------------------------------------------------------

    def preload(self, count: int):
        """Generator: populate the table with committed rows."""
        import random
        rng = random.Random(self.seed ^ 0x5EED)
        txn = self.system.txns.begin("preload")
        for index in range(count):
            key = self._draw_key(rng)
            rid = yield from self.table.insert(
                txn, self._row(key, f"row-{index}"))
            self.pool[rid] = key
        yield from txn.commit()

    # -- worker processes ---------------------------------------------------------

    def spawn_workers(self) -> list:
        self.started_at = self.system.sim.now
        return [self.system.spawn(self.worker(i), name=f"worker-{i}")
                for i in range(self.spec.workers)]

    def worker(self, worker_id: int):
        """Generator process: run ``spec.operations`` one-op transactions."""
        import random
        rng = random.Random((self.seed << 8) ^ worker_id)
        weights = [self.spec.insert_weight, self.spec.delete_weight,
                   self.spec.update_weight]
        for _ in range(self.spec.operations):
            if self.spec.think_time > 0:
                yield Delay(rng.expovariate(1.0 / self.spec.think_time))
            op = rng.choices(["insert", "delete", "update"],
                             weights=weights)[0]
            yield from self._one_transaction(rng, worker_id, op)
        return self.ops_done

    def _one_transaction(self, rng, worker_id: int, op: str):
        issued = self.system.sim.now
        txn = self.system.txns.begin(f"w{worker_id}")
        claimed: Optional[tuple[RID, int]] = None
        try:
            if op == "insert":
                key = self._draw_key(rng)
                rid = yield from self.table.insert(
                    txn, self._row(key, f"w{worker_id}"))
                pending = (rid, key)
            elif op == "delete":
                claimed = self._claim(rng)
                if claimed is None:
                    op, pending = "noop", None
                else:
                    yield from self.table.delete(txn, claimed[0])
                    pending = None
            else:  # update
                claimed = self._claim(rng)
                if claimed is None:
                    op, pending = "noop", None
                else:
                    rid, _old_key = claimed
                    if rng.random() < self.spec.key_change_fraction:
                        new_key = self._draw_key(rng)
                    else:
                        new_key = claimed[1]
                    yield from self.table.update(
                        txn, rid, self._row(new_key, f"w{worker_id}u"))
                    pending = (rid, new_key)
            if op != "noop" and rng.random() < self.spec.rollback_fraction:
                yield from txn.rollback()
                self._unclaim(claimed)
                self._record(op, worker_id, "rolledback", issued=issued)
            else:
                yield from txn.commit()
                if op == "delete" and claimed is not None:
                    pass  # rid is gone for good
                elif claimed is not None and op == "update":
                    self.pool[claimed[0]] = pending[1]
                elif op == "insert" and pending is not None:
                    self.pool[pending[0]] = pending[1]
                self._record(op, worker_id, "committed", issued=issued)
        except TransactionAborted:
            yield from txn.rollback()
            self._unclaim(claimed)
            self._record(op, worker_id, "aborted", issued=issued)

    # -- helpers ---------------------------------------------------------------------

    def _claim(self, rng) -> Optional[tuple[RID, int]]:
        if not self.pool:
            return None
        rid = rng.choice(list(self.pool))
        key = self.pool.pop(rid)
        return rid, key

    def _unclaim(self, claimed: Optional[tuple[RID, int]]) -> None:
        if claimed is not None:
            self.pool[claimed[0]] = claimed[1]

    def _draw_key(self, rng) -> int:
        space = self.spec.key_space
        if self.spec.distribution == "skewed":
            # ~80/20: squash a uniform draw through a power curve.
            return int(space * (rng.random() ** 3))
        return rng.randrange(space)

    def _record(self, op: str, worker_id: int, outcome: str,
                issued: float = -1.0) -> None:
        self.op_timeline.append(OpRecord(
            time=self.system.sim.now, op=op, worker=worker_id,
            outcome=outcome, issued=issued))
        if outcome == "committed":
            self.ops_done += 1
        self.system.metrics.incr(f"workload.{outcome}")

    # -- analysis ---------------------------------------------------------------------------

    def throughput_series(self, bucket: float) -> list[tuple[float, int]]:
        """Committed operations per time bucket, starting when the
        workers were spawned (for E3's availability timeline)."""
        if not self.op_timeline:
            return []
        start = getattr(self, "started_at", 0.0)
        horizon = max(record.time for record in self.op_timeline) - start
        buckets = int(horizon / bucket) + 1
        series = [0] * buckets
        for record in self.op_timeline:
            if record.outcome == "committed":
                series[int((record.time - start) / bucket)] += 1
        return [(start + index * bucket, count)
                for index, count in enumerate(series)]

    def longest_stall(self) -> float:
        """Longest gap without any committed operation.

        Measured from the first attempted operation, so a build that
        blocks the workload from the start (the offline baseline) shows
        up as one long stall.
        """
        committed = sorted(record.time for record in self.op_timeline
                           if record.outcome == "committed")
        if not committed:
            return 0.0
        start = getattr(self, "started_at", committed[0])
        times = [start] + committed
        return max(b - a for a, b in zip(times, times[1:]))
