"""Benchmark harness: experiment runner and table printer."""

from repro.bench.harness import (
    BUILDERS,
    BuildRunResult,
    bench_config,
    print_table,
    run_build_experiment,
)

__all__ = [
    "BUILDERS",
    "BuildRunResult",
    "bench_config",
    "print_table",
    "run_build_experiment",
]
