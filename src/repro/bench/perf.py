"""Wall-clock perf-regression suite (``python -m repro.bench.perf``).

The simulator benches in ``benchmarks/`` measure *simulated* cost; this
suite measures the *host* cost of running them -- the trajectory the repo
tracks across PRs so hot-path regressions are caught in CI.  It runs a
fixed set of deterministic scenarios:

* end-to-end builds (offline / NSF / SF at several row counts, with and
  without a concurrent update workload), recording wall-clock keys/sec,
  simulated build time, and the key metric counters;
* micro-benchmarks for the known hot paths: IB's multi-key insert,
  replacement-selection run formation, the final-merge ``pop_many``
  supply loop, the SF side-file drain, side-file WAL redo, and the
  frontier's ``shard_of`` ownership test (bisect vs linear scan).

The IB-insert micro-benchmark runs twice -- once against
:class:`LegacyBTree`, a verbatim copy of the pre-optimization hot paths,
and once against the shipped tree -- and records the speedup ratio.  The
ratio is machine-independent (both sides run in the same process), so CI
compares ratios, not absolute times, against the committed baseline JSON.

Results are written as schema-stable JSON (see :data:`SCHEMA_VERSION` and
:func:`validate_payload`)::

    python -m repro.bench.perf --out BENCH_PR2.json
    python -m repro.bench.perf --out /tmp/now.json --smoke \\
        --check-against BENCH_PR2.json --max-regression 0.30
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Any, Callable, Optional

from repro.bench.harness import bench_config, run_build_experiment
from repro.btree.tree import BTree, IBCursor
from repro.btree.node import KeyEntry
from repro.core import BuildOptions
from repro.faultinject.sites import fault_point
from repro.sim.kernel import Acquire, Delay
from repro.sim.latch import EXCLUSIVE
from repro.sort import RunFormation, RunStore, final_merger
from repro.storage.rid import RID
from repro.system import System, SystemConfig
from repro.wal.records import RecordKind

SCHEMA_VERSION = 1
SUITE_NAME = "repro.bench.perf"

#: the acceptance floor for the IB-insert speedup recorded in the JSON
MIN_IB_SPEEDUP = 1.5

#: the acceptance floor for the parallel scan+sort speedup at P=4 vs P=1
#: (simulated clock, so machine-independent by construction)
MIN_PSF_SCAN_SPEEDUP = 1.5

#: acceptance floors for the compressed-key codec.  The comparison-bound
#: micro (C-level sort loop over the same keys, raw tuples vs encoded
#: ints) isolates the cost the codec exists to remove and must show at
#: least 2x; so must the codec-on/off build scenarios on the simulated
#: clock, which charges comparisons by compared-key width.  The
#: end-to-end scan+sort+load micro is tracked row-by-row against the
#: committed baseline instead: CPython spends the bulk of that pipeline
#: in per-key interpreter machinery that is identical on both sides, so
#: its wall-clock ratio understates what a compiled engine gets and is
#: only gated against regression, not against an absolute floor.
MIN_CODEC_SPEEDUP = 2.0
MIN_CODEC_SIM_SPEEDUP = 2.0


class LegacyBTree(BTree):
    """The pre-optimization B+-tree hot paths, copied verbatim.

    Baseline side of the IB-insert micro-benchmark: the shipped tree is
    compared against the exact code it replaced, in the same process on
    the same machine, so the recorded speedup is a pure code-path ratio.
    The copied behaviors: per-key metric increments, two defensive key
    list copies per IB log record, and -- the dominant cost -- a full
    bounds-cache invalidation on every split, which makes the next
    ``_leaf_covers`` pay an O(pages) structural search.
    """

    def _path_to_leaf(self, leaf_no):
        if self.root == leaf_no:
            return []
        path = []

        def descend(page_no):
            node = self.pages[page_no]
            if not hasattr(node, "children"):  # leaf
                return node.page_no == leaf_no
            for slot, child in enumerate(node.children):
                path.append((node, slot))
                if descend(child):
                    return True
                path.pop()
            return False

        if self.root is None or not descend(self.root):
            raise AssertionError(f"leaf {leaf_no} unreachable")
        return path

    def _finish_split(self, left, right, separator, path):
        fault_point(self.system.metrics, "btree.split")
        self.structure_version += 1
        self.system.metrics.incr("index.splits")
        self.system.log.append(
            None, RecordKind.UPDATE,
            redo=("index.split", {"index": self.name,
                                  "left": left.page_no,
                                  "right": right.page_no}),
            writer="system",
            info={"index": self.name},
        )
        if not path:
            new_root = self._allocate_branch()
            new_root.separators = [separator]
            new_root.children = [left.page_no, right.page_no]
            self.root = new_root.page_no
            return
        parent, slot = path[-1]
        parent.separators.insert(slot, separator)
        parent.children.insert(slot + 1, right.page_no)
        if parent.is_full:
            self._split_branch(parent, path[:-1])

    def _split_branch(self, branch, path):
        new_branch = self._allocate_branch()
        mid = len(branch.separators) // 2
        push_up = branch.separators[mid]
        new_branch.separators = branch.separators[mid + 1:]
        new_branch.children = branch.children[mid + 1:]
        del branch.separators[mid:]
        del branch.children[mid + 1:]
        self.structure_version += 1
        self.system.metrics.incr("index.splits")
        if not path:
            new_root = self._allocate_branch()
            new_root.separators = [push_up]
            new_root.children = [branch.page_no, new_branch.page_no]
            self.root = new_root.page_no
            return
        parent, slot = path[-1]
        parent.separators.insert(slot, push_up)
        parent.children.insert(slot + 1, new_branch.page_no)
        if parent.is_full:
            self._split_branch(parent, path[:-1])

    def ib_insert_batch(self, ib_txn, keys, cursor, *, write_log=True):
        inserted = 0
        work = [(kv, RID(*raw_rid)) for kv, raw_rid in keys]
        index = 0
        while index < len(work):
            key_value, rid = work[index]
            leaf = self._locate_ib_leaf(cursor, (key_value, rid))
            yield Acquire(leaf.latch, EXCLUSIVE)
            if not self._leaf_covers(leaf, (key_value, rid)):
                leaf.latch.release(self.system.sim.current)
                cursor.leaf_no = None
                continue
            pending: list[tuple] = []
            unique_check: Optional[tuple] = None
            try:
                while index < len(work):
                    key_value, rid = work[index]
                    composite = (key_value, rid)
                    if not self._leaf_covers(leaf, composite):
                        break
                    action = self._ib_classify(leaf, key_value, rid)
                    if action == "unique-check":
                        unique_check = (key_value, rid)
                        break
                    if action == "reject":
                        self.system.metrics.incr(
                            "index.duplicate_rejections.ib")
                        index += 1
                        continue
                    target = self._insert_sorted(
                        leaf, KeyEntry(key_value, rid),
                        specialized_for_ib=True)
                    self.system.metrics.incr("index.inserts.ib")
                    inserted += 1
                    pending.append((key_value, tuple(rid)))
                    index += 1
                    cursor.leaf_no = target.page_no
                    cursor.version = self.structure_version
                    if target is not leaf:
                        break
                if write_log and pending:
                    self._log_ib_batch(ib_txn, pending)
            finally:
                leaf.latch.release(self.system.sim.current)
            if pending:
                fault_point(self.system.metrics, "btree.ib_insert")
                yield Delay(self.system.config.key_op_cost
                            * len(pending))
            if unique_check is not None:
                settled = yield from self._ib_unique_check(
                    ib_txn, *unique_check)
                if not settled:
                    index += 1
        return inserted

    def _log_ib_batch(self, ib_txn, keys):
        ib_txn.log(
            RecordKind.UPDATE,
            redo=("index.apply", {"index": self.name,
                                  "action": "insert_many",
                                  "keys": list(keys)}),
            undo=("index.undo", {"index": self.name,
                                 "action": "remove_many",
                                 "keys": list(keys)}),
            info={"index": self.name},
            writer="ib",
        )


# ---------------------------------------------------------------------------
# micro-benchmark bodies
# ---------------------------------------------------------------------------


def _sorted_keys(count: int, seed: int) -> list[tuple]:
    """Deterministic sorted ``(key_value, raw_rid)`` pairs (IB's diet)."""
    rng = random.Random(seed)
    values = sorted(rng.sample(range(count * 10), count))
    return [(value, (i // 64, i % 64)) for i, value in enumerate(values)]


def _ib_insert_run(tree_cls, keys: list[tuple], *, batch: int,
                   leaf_capacity: int, seed: int) -> dict:
    """Drive ``tree_cls.ib_insert_batch`` over ``keys``; time the run."""
    config = SystemConfig(leaf_capacity=leaf_capacity, branch_capacity=8)
    system = System(config, seed=seed)
    tree = tree_cls(system, "bench-idx", "bench-table")
    txn = system.txns.begin("ib-micro")
    cursor = IBCursor()

    def driver():
        for start in range(0, len(keys), batch):
            yield from tree.ib_insert_batch(
                txn, keys[start:start + batch], cursor)
        yield from txn.commit()

    proc = system.spawn(driver(), name="ib-micro")
    started = time.perf_counter()
    system.run()
    wall = time.perf_counter() - started
    if proc.error is not None:
        raise proc.error
    if tree.key_count() != len(keys):
        raise AssertionError(
            f"ib micro inserted {tree.key_count()} of {len(keys)} keys")
    return {"wall_seconds": wall,
            "keys_per_second": len(keys) / wall if wall else 0.0,
            "sim_time": system.now()}


def micro_ib_insert(mode: str) -> dict:
    """IB-insert micro: shipped tree vs the verbatim pre-PR baseline."""
    count = 2_000 if mode == "smoke" else 12_000
    params = {"keys": count, "batch": 16, "leaf_capacity": 8, "seed": 7}
    keys = _sorted_keys(count, params["seed"])
    baseline = _ib_insert_run(LegacyBTree, keys, batch=params["batch"],
                              leaf_capacity=params["leaf_capacity"],
                              seed=params["seed"])
    optimized = _ib_insert_run(BTree, keys, batch=params["batch"],
                               leaf_capacity=params["leaf_capacity"],
                               seed=params["seed"])
    speedup = (baseline["wall_seconds"] / optimized["wall_seconds"]
               if optimized["wall_seconds"] else 0.0)
    if baseline["sim_time"] != optimized["sim_time"]:
        raise AssertionError(
            "legacy and optimized IB paths diverged on the simulated "
            f"clock: {baseline['sim_time']} != {optimized['sim_time']}")
    return {"params": params, "baseline": baseline, "optimized": optimized,
            "speedup": speedup}


def micro_replacement_selection(mode: str) -> dict:
    """Replacement-selection run formation over a random key stream."""
    count = 5_000 if mode == "smoke" else 40_000
    params = {"keys": count, "workspace": 64, "seed": 11}
    rng = random.Random(params["seed"])
    stream = [(rng.randrange(count * 10), (i // 64, i % 64))
              for i in range(count)]
    store = RunStore(prefix="perf-sort")
    sorter = RunFormation(store, params["workspace"])
    started = time.perf_counter()
    for key in stream:
        sorter.push(key)
    runs = sorter.finish()
    wall = time.perf_counter() - started
    total = sum(len(run) for run in runs)
    if total != count:
        raise AssertionError(f"sort micro kept {total} of {count} keys")
    return {"params": params,
            "wall_seconds": wall,
            "keys_per_second": count / wall if wall else 0.0,
            "runs_formed": len(runs)}


def micro_merge_pop_many(mode: str) -> dict:
    """Final-merge key supply through ``pop_many`` (NSF's feed loop)."""
    count = 8_000 if mode == "smoke" else 60_000
    params = {"keys": count, "runs": 8, "fanin": 8, "batch": 16,
              "seed": 13}
    rng = random.Random(params["seed"])
    store = RunStore(prefix="perf-merge")
    per_run = count // params["runs"]
    for _ in range(params["runs"]):
        run = store.new_run()
        for key in sorted(rng.randrange(count * 10)
                          for _ in range(per_run)):
            run.append((key, (0, 0)))
        run.closed = True
        run.force()
    runs = list(store.runs.values())
    merger = final_merger(store, runs, params["fanin"])
    produced = 0
    started = time.perf_counter()
    while True:
        batch = merger.pop_many(params["batch"])
        if not batch:
            break
        produced += len(batch)
    wall = time.perf_counter() - started
    if produced != params["runs"] * per_run:
        raise AssertionError(
            f"merge micro produced {produced} of {params['runs'] * per_run}")
    return {"params": params,
            "wall_seconds": wall,
            "keys_per_second": produced / wall if wall else 0.0}


def micro_sidefile_drain(mode: str) -> dict:
    """Batched side-file drain against a bulk-loaded tree."""
    from repro.btree.loader import BulkLoader
    from repro.sidefile import SideFile, register_sidefile_operations

    count = 2_000 if mode == "smoke" else 10_000
    params = {"entries": count, "batch": 64, "seed": 17,
              "preloaded_keys": count}
    system = System(SystemConfig(leaf_capacity=8, branch_capacity=8),
                    seed=params["seed"])
    register_sidefile_operations(system)
    tree = BTree(system, "bench-idx", "bench-table")
    loader = BulkLoader(tree)
    for i in range(count):
        loader.append(i * 3, RID(i // 64, i % 64))
    loader.finish()
    sidefile = SideFile(system, "bench-idx")
    system.sidefiles["bench-idx"] = sidefile
    rng = random.Random(params["seed"])
    txn = system.txns.begin("sf-appender")
    for i in range(count):
        sidefile.append_sync(txn, "insert", rng.randrange(count * 3) * 3 + 1,
                             RID(1000 + i // 64, i % 64))
    drain_txn = system.txns.begin("sf-drain")

    def driver():
        position = 0
        while position < len(sidefile.entries):
            chunk = sidefile.entries[position:position + params["batch"]]
            batch = [(e.operation, e.key_value, e.rid) for e in chunk]
            position += len(chunk)
            yield from tree.sf_drain_apply_batch(drain_txn, batch)
        yield from drain_txn.commit()

    proc = system.spawn(driver(), name="sf-drain-micro")
    started = time.perf_counter()
    system.run()
    wall = time.perf_counter() - started
    if proc.error is not None:
        raise proc.error
    return {"params": params,
            "wall_seconds": wall,
            "keys_per_second": count / wall if wall else 0.0,
            "sim_time": system.now()}


def micro_sidefile_redo(mode: str) -> dict:
    """Side-file WAL redo after a crash (the once-quadratic dedup path)."""
    from repro.sidefile import SideFile, register_sidefile_operations

    count = 2_000 if mode == "smoke" else 20_000
    params = {"entries": count, "seed": 19}
    system = System(SystemConfig(), seed=params["seed"])
    register_sidefile_operations(system)
    sidefile = SideFile(system, "bench-idx")
    system.sidefiles["bench-idx"] = sidefile
    txn = system.txns.begin("sf-appender")
    for i in range(count):
        sidefile.append_sync(txn, "insert", i, RID(i // 64, i % 64))
    records = [record for record in system.log.scan()
               if record.redo is not None
               and record.redo[0] == "sidefile.append"]
    # Crash with nothing forced: every entry must come back from the log.
    sidefile.crash()
    if sidefile.entries:
        raise AssertionError("expected a fully volatile side-file")
    started = time.perf_counter()
    for record in records:
        sidefile.redo_append(record)
    for record in records:  # second pass: all-duplicate dedup path
        sidefile.redo_append(record)
    wall = time.perf_counter() - started
    if len(sidefile.entries) != count:
        raise AssertionError(
            f"redo rebuilt {len(sidefile.entries)} of {count} entries")
    return {"params": params,
            "wall_seconds": wall,
            "keys_per_second": (2 * count) / wall if wall else 0.0}


def micro_scan_sort_load_codec(mode: str) -> dict:
    """Compressed-key sort: the whole scan+sort+load pipeline, both ways.

    The same ``((int, str), rid)`` key stream runs push -> run formation
    -> final merge -> decode -> bulk load twice: once over raw composite
    tuples and once through :class:`KeyCodec` (encode cost and deferred
    decode both *inside* the timed region, so the ratio is end-to-end).
    A sprinkle of over-width strings exercises the spill path.  Both
    trees must come out entry-for-entry identical -- the codec is an
    engineering change, not a semantic one -- and the recorded speedup
    is a same-process ratio like the IB micro's.
    """
    from repro.btree.loader import BulkLoader
    from repro.sort import CompressedRunFormation, KeyCodec

    count = 1_500 if mode == "smoke" else 4_000
    params = {"keys": count, "workspace": 256, "fanin": 8, "batch": 64,
              "seed": 29, "spill_every": 64}
    rng = random.Random(params["seed"])
    cats = ["elec", "food", "home", "toys", "auto", "book", "gard", "baby",
            "pets", "arts", "game", "tool", "wine", "kids", "gift", "tech"]
    stream = []
    for i in range(count):
        # Secondary-index diet: low-cardinality leading columns repeat
        # across records; every spill_every-th key carries an over-width
        # category so the spill path stays on the timed path.
        category = "long-tail-category" if i % params["spill_every"] == 0 \
            else rng.choice(cats)
        stream.append(((rng.randrange(8), category, rng.randrange(64)),
                       (i // 64, i % 64)))

    def run_once(compressed: bool) -> dict:
        system = System(SystemConfig(leaf_capacity=8, branch_capacity=8),
                        seed=params["seed"])
        tree = BTree(system, "bench-idx", "bench-table")
        loader = BulkLoader(tree)
        store = RunStore(prefix="codec-on" if compressed else "codec-off")
        codec = KeyCodec() if compressed else None
        sorter = CompressedRunFormation(store, params["workspace"], codec) \
            if compressed else RunFormation(store, params["workspace"])
        append = loader.append
        started = time.perf_counter()
        for pair in stream:
            sorter.push(pair)
        runs = sorter.finish()
        merger = final_merger(store, runs, params["fanin"])
        decode = codec.decode if compressed else None
        while True:
            batch = merger.pop_many(params["batch"])
            if not batch:
                break
            if decode is not None:
                for encoded in batch:
                    key_value, raw = decode(encoded)
                    append(key_value, RID(*raw))
            else:
                for key_value, raw in batch:
                    append(key_value, RID(*raw))
        loader.finish()
        wall = time.perf_counter() - started
        entries = [(entry.key_value, tuple(entry.rid))
                   for entry in tree.all_entries()]
        return {"wall_seconds": wall,
                "keys_per_second": count / wall if wall else 0.0,
                "runs_formed": len(runs),
                "spills": codec.spills if compressed else 0,
                "entries": entries}

    baseline = run_once(False)
    optimized = run_once(True)
    if baseline["entries"] != optimized["entries"]:
        first = next(i for i in range(len(baseline["entries"]))
                     if baseline["entries"][i] != optimized["entries"][i])
        raise AssertionError(
            "codec-on tree diverged from codec-off at entry "
            f"{first}: {optimized['entries'][first]!r} != "
            f"{baseline['entries'][first]!r}")
    if len(baseline["entries"]) != count:
        raise AssertionError(
            f"codec micro loaded {len(baseline['entries'])} of {count}")
    spills = optimized.pop("spills")
    baseline.pop("spills")
    baseline.pop("entries")
    optimized.pop("entries")
    speedup = (baseline["wall_seconds"] / optimized["wall_seconds"]
               if optimized["wall_seconds"] else 0.0)
    return {"params": params, "baseline": baseline, "optimized": optimized,
            "spills": spills, "speedup": speedup}


def micro_codec_compare_bound(mode: str) -> dict:
    """Comparison-cost ratio: raw composite tuples vs encoded ints.

    Both sides sort the *same* shuffled key set with ``list.sort`` -- a
    pure C comparison loop, the regime a compiled engine's sort inner
    loop lives in -- so the ratio isolates what the codec actually
    changes: the cost of one key comparison.  Order isomorphism is
    checked by decoding the encoded order back and comparing
    entry-for-entry against the raw order.
    """
    from repro.sort import KeyCodec

    count = 20_000 if mode == "smoke" else 60_000
    params = {"keys": count, "seed": 31}
    rng = random.Random(params["seed"])
    cats = ["elec", "food", "home", "toys", "auto", "book", "gard", "baby"]
    raw = [((rng.randrange(8), rng.choice(cats), rng.randrange(64)),
            (i // 64, i % 64)) for i in range(count)]
    codec = KeyCodec()
    codec.bind(raw[0][0])
    encoded = [codec.encode(key_value, rid) for key_value, rid in raw]
    rng.shuffle(raw)
    rng.shuffle(encoded)
    started = time.perf_counter()
    raw.sort()
    baseline_wall = time.perf_counter() - started
    started = time.perf_counter()
    encoded.sort()
    optimized_wall = time.perf_counter() - started
    decoded = [codec.decode(code) for code in encoded]
    if decoded != raw:
        first = next(i for i in range(count) if decoded[i] != raw[i])
        raise AssertionError(
            f"encoded sort order diverged from raw at {first}: "
            f"{decoded[first]!r} != {raw[first]!r}")
    return {"params": params,
            "wall_seconds": optimized_wall,
            "baseline": {"wall_seconds": baseline_wall,
                         "keys_per_second":
                             count / baseline_wall if baseline_wall
                             else 0.0},
            "optimized": {"wall_seconds": optimized_wall,
                          "keys_per_second":
                              count / optimized_wall if optimized_wall
                              else 0.0},
            "speedup": (baseline_wall / optimized_wall
                        if optimized_wall else 0.0)}


def micro_frontier_shard_of(mode: str) -> dict:
    """Frontier ownership test: bisect ``shard_of`` vs the pre-PR linear
    scan.

    ``shard_of`` runs on every visibility test a concurrent updater
    performs during a partitioned build, so its cost scales with P under
    the linear scan.  Both sides run over the same lookup stream in the
    same process and must agree exactly (including empty shards and
    pages past the partitioned range), so the recorded speedup is a pure
    code-path ratio like the IB-insert micro's.
    """
    from repro.sidefile.frontier import ScanFrontier, partition_pages

    lookups = 20_000 if mode == "smoke" else 200_000
    params = {"lookups": lookups, "shards": 64, "pages": 4096, "seed": 23}
    partitions = partition_pages(params["pages"], params["shards"])
    frontier = ScanFrontier(partitions)
    rng = random.Random(params["seed"])
    # Past-the-range pages included: extensions go to the last shard.
    pages = [rng.randrange(params["pages"] + 128) for _ in range(lookups)]
    heads = partitions[:-1]

    def linear_shard_of(page_no: int) -> int:
        # Verbatim pre-optimization body: first shard whose range covers
        # the page; extensions fall through to the last shard.
        for partition in heads:
            if page_no < partition.end:
                return partition.index
        return partitions[-1].index

    started = time.perf_counter()
    expect = [linear_shard_of(page_no) for page_no in pages]
    baseline_wall = time.perf_counter() - started
    shard_of = frontier.shard_of
    started = time.perf_counter()
    got = [shard_of(page_no) for page_no in pages]
    optimized_wall = time.perf_counter() - started
    if got != expect:
        first = next(i for i in range(lookups) if got[i] != expect[i])
        raise AssertionError(
            f"shard_of diverged from the linear reference at page "
            f"{pages[first]}: {got[first]} != {expect[first]}")
    return {"params": params,
            "wall_seconds": optimized_wall,
            "baseline": {"wall_seconds": baseline_wall,
                         "lookups_per_second":
                             lookups / baseline_wall if baseline_wall
                             else 0.0},
            "optimized": {"wall_seconds": optimized_wall,
                          "lookups_per_second":
                              lookups / optimized_wall if optimized_wall
                              else 0.0},
            "speedup": (baseline_wall / optimized_wall
                        if optimized_wall else 0.0)}


# ---------------------------------------------------------------------------
# build scenarios
# ---------------------------------------------------------------------------


def _trace_extras(recorder, system) -> dict:
    """Additive scenario keys derived from the build's passive trace:
    per-phase simulated durations plus the build-series stat snapshots
    (observability satellite of the perf payload; ``validate_payload``
    tolerates extra keys, so older baselines still compare)."""
    from repro.obs import phase_durations

    series = {name: stats for name, stats
              in system.metrics.snapshot_stats().items()
              if name.startswith(("build.", "psf."))}
    return {"phases": phase_durations(recorder.events), "series": series}


def _build_scenario(name: str, *, algorithm: str, rows: int,
                    operations: int = 0, seed: int = 0,
                    compressed_keys: bool = False,
                    key_compare_cost: float = 0.0) -> dict:
    from repro.obs import TraceRecorder

    params = {"algorithm": algorithm, "rows": rows,
              "operations": operations, "workers": 2, "seed": seed}
    if compressed_keys or key_compare_cost:
        params["compressed_keys"] = compressed_keys
        params["key_compare_cost"] = key_compare_cost
    options = BuildOptions(checkpoint_every_keys=200,
                           commit_every_keys=128,
                           compressed_keys=compressed_keys,
                           key_compare_cost=key_compare_cost)
    recorder = TraceRecorder()
    started = time.perf_counter()
    result = run_build_experiment(
        algorithm, rows=rows, operations=operations, workers=2,
        seed=seed, options=options, config=bench_config(),
        tracer=recorder)
    wall = time.perf_counter() - started
    interesting = ("index.inserts.ib", "index.splits", "index.traversals",
                   "index.page_visits", "sidefile.appends",
                   "build.sidefile_drained", "log.records",
                   "build.ib_commits", "sort.keys_pushed")
    counters = {key: result.counters[key] for key in interesting
                if key in result.counters}
    scenario = {"params": params,
                "wall_seconds": wall,
                "keys_per_second": rows / wall if wall else 0.0,
                "sim_time": result.build_time,
                "counters": counters}
    scenario.update(_trace_extras(recorder, result.system))
    return scenario


def _build_scenarios(mode: str) -> list[tuple[str, Callable[[], dict]]]:
    if mode == "smoke":
        rows_list = [120]
        workload_ops = 20
    else:
        rows_list = [300, 900]
        workload_ops = 60
    scenarios: list[tuple[str, Callable[[], dict]]] = []
    for rows in rows_list:
        for algorithm in ("offline", "nsf", "sf"):
            scenarios.append((
                f"build/{algorithm}/rows{rows}",
                lambda a=algorithm, r=rows: _build_scenario(
                    f"build/{a}/rows{r}", algorithm=a, rows=r, seed=42)))
    for algorithm in ("nsf", "sf"):
        scenarios.append((
            f"build/{algorithm}/rows{rows_list[0]}/workload",
            lambda a=algorithm: _build_scenario(
                f"build/{a}/workload", algorithm=a, rows=rows_list[0],
                operations=workload_ops, seed=42)))
    return scenarios


# ---------------------------------------------------------------------------
# compressed-key codec scenarios (simulated-clock on/off sweep) and
# sealed-run index reconstruction
# ---------------------------------------------------------------------------


def _codec_scenarios(mode: str) \
        -> list[tuple[str, str, Callable[[], dict]]]:
    """Codec-on vs codec-off SF builds plus a summary of the ratio.

    ``key_compare_cost`` charges the simulated clock per tournament/merge
    comparison, weighted by compared-key width (raw composite = key
    columns + seq + rid, encoded = one machine int), so the summary's
    speedup is machine-independent the same way the P-sweep's is.
    """
    rows = 120 if mode == "smoke" else 400
    compare_cost = 0.05
    cache: dict[str, dict] = {}
    scenarios: list[tuple[str, str, Callable[[], dict]]] = []
    for label, compressed in (("off", False), ("on", True)):
        def run_one(lbl=label, c=compressed):
            scenario = _build_scenario(
                f"build/sf/codec_{lbl}", algorithm="sf", rows=rows,
                seed=42, compressed_keys=c,
                key_compare_cost=compare_cost)
            cache[lbl] = scenario
            return scenario
        scenarios.append((f"build/sf/codec_{label}", "build", run_one))

    def sweep():
        if "off" not in cache or "on" not in cache:
            raise AssertionError("codec on/off scenario missing")
        off, on = cache["off"], cache["on"]
        return {"params": {"rows": rows, "key_compare_cost": compare_cost},
                "sim_time_off": off["sim_time"],
                "sim_time_on": on["sim_time"],
                "speedup_sim": (off["sim_time"] / on["sim_time"]
                                if on["sim_time"] else 0.0),
                "speedup_wall": (off["wall_seconds"] / on["wall_seconds"]
                                 if on["wall_seconds"] else 0.0)}

    scenarios.append(("codec/sim_sweep", "summary", sweep))
    return scenarios


def _rebuild_scenario(mode: str) -> dict:
    """Drop+rebuild from sealed runs: zero table pages rescanned.

    A codec-on SF build seals its final merged run; ``rebuild_index``
    then reconstructs the same index from the sealed store.  The
    scenario fails outright if the rebuild touches even one table page,
    and records the simulated-clock speedup over the original build.
    """
    from repro.verify import audit_index

    rows = 120 if mode == "smoke" else 400
    params = {"algorithm": "rebuild", "rows": rows, "seed": 42,
              "compressed_keys": True}
    options = BuildOptions(checkpoint_every_keys=200,
                           commit_every_keys=128, compressed_keys=True)
    seed_build = run_build_experiment(
        "sf", rows=rows, operations=0, workers=2, seed=params["seed"],
        options=options, config=bench_config())
    system = seed_build.system
    before = system.metrics.snapshot()
    builder = system.rebuild_index("idx", options=BuildOptions(
        checkpoint_every_keys=200, commit_every_keys=128))
    proc = system.spawn(builder.run(), name="rebuild")
    started = time.perf_counter()
    system.run()
    wall = time.perf_counter() - started
    if proc.error is not None:
        raise proc.error
    audit_index(system, system.indexes["idx"])
    delta = system.metrics.delta(before)
    pages = delta.get("build.pages_scanned", 0)
    if pages:
        raise AssertionError(
            f"rebuild scanned {pages} table pages instead of reusing "
            "the sealed runs")
    sim_time = builder.timings.get("done", system.now()) \
        - builder.timings.get("start", 0.0)
    interesting = ("rebuild.runs_reused", "index.inserts.bulk",
                   "build.sidefile_drained", "log.records")
    counters = {key: delta[key] for key in interesting if key in delta}
    counters["build.pages_scanned"] = pages
    return {"params": params,
            "wall_seconds": wall,
            "keys_per_second": rows / wall if wall else 0.0,
            "sim_time": sim_time,
            "counters": counters,
            "pages_scanned_delta": pages,
            "seed_build_sim_time": seed_build.build_time,
            "speedup_vs_seed_build": (seed_build.build_time / sim_time
                                      if sim_time else 0.0)}


# ---------------------------------------------------------------------------
# parallel build scenarios (simulated-clock P-sweep)
# ---------------------------------------------------------------------------


def _parallel_sf_run(partitions: int, *, rows: int, operations: int,
                     seed: int) -> dict:
    """One PSF build at ``partitions`` shards under a concurrent workload.

    Unlike the wall-clock scenarios above, the headline numbers here are
    *simulated*: the scan+sort phase time (``scan_done - start``), the
    shard-merge phase time, and the per-shard balance of the range
    partitioning.  Wall-clock is still recorded for the regression
    trajectory, but speedups are computed on the simulated clock so they
    are machine-independent.
    """
    from repro.metrics import partition_skew
    from repro.obs import TraceRecorder

    params = {"algorithm": "psf", "partitions": partitions, "rows": rows,
              "operations": operations, "workers": 2, "seed": seed}
    options = BuildOptions(checkpoint_every_keys=200,
                           commit_every_keys=128, partitions=partitions)
    recorder = TraceRecorder()
    started = time.perf_counter()
    result = run_build_experiment(
        "psf", rows=rows, operations=operations, workers=2, seed=seed,
        options=options, config=bench_config(), tracer=recorder)
    wall = time.perf_counter() - started
    timings = result.builder.timings
    scan_sort = timings["scan_done"] - timings["start"]
    merge = timings.get("pmerge_done", timings["scan_done"]) \
        - timings["scan_done"]
    total = result.build_time
    interesting = ("build.pages_scanned", "sort.keys_pushed",
                   "sidefile.appends", "build.sidefile_drained",
                   "psf.scan_workers", "psf.manifest_checkpoints",
                   "log.records")
    counters = {key: result.counters[key] for key in interesting
                if key in result.counters}
    metrics = result.system.metrics
    scenario = {"params": params,
                "wall_seconds": wall,
                "keys_per_second": rows / wall if wall else 0.0,
                "sim_time": total,
                "counters": counters,
                "scan_sort_sim_time": scan_sort,
                "merge_sim_time": merge,
                "merge_share": merge / total if total else 0.0,
                "partition_skew": {
                    "pages_scanned": partition_skew(
                        metrics, "psf.pages_scanned", partitions),
                    "shard_keys": partition_skew(
                        metrics, "psf.shard_keys", partitions),
                    "sidefile_appends": partition_skew(
                        metrics, "psf.sidefile_appends", partitions),
                }}
    scenario.update(_trace_extras(recorder, result.system))
    return scenario


def _parallel_scenarios(mode: str) \
        -> list[tuple[str, str, Callable[[], dict]]]:
    """Per-P scenarios plus a summary that reads their cached results."""
    if mode == "smoke":
        rows, operations, p_list = 120, 20, [1, 2]
    else:
        rows, operations, p_list = 600, 60, [1, 2, 4, 8]
    cache: dict[int, dict] = {}
    scenarios: list[tuple[str, str, Callable[[], dict]]] = []
    for partitions in p_list:
        def run_one(p=partitions):
            scenario = _parallel_sf_run(p, rows=rows,
                                        operations=operations, seed=42)
            cache[p] = scenario
            return scenario
        scenarios.append((f"parallel_sf/p{partitions}", "build", run_one))

    def sweep():
        if not cache:
            raise AssertionError("no parallel_sf scenario completed")
        base = cache.get(1)
        summary: dict[str, Any] = {
            "params": {"rows": rows, "operations": operations,
                       "partitions": sorted(cache)},
            "speedup_scan_sort": {},
            "speedup_total": {},
            "merge_share": {},
            "pages_skew": {},
        }
        for p, scenario in sorted(cache.items()):
            label = str(p)
            summary["merge_share"][label] = scenario["merge_share"]
            summary["pages_skew"][label] = \
                scenario["partition_skew"]["pages_scanned"]["skew"]
            if base is not None and base["scan_sort_sim_time"]:
                summary["speedup_scan_sort"][label] = \
                    base["scan_sort_sim_time"] \
                    / scenario["scan_sort_sim_time"]
                summary["speedup_total"][label] = \
                    base["sim_time"] / scenario["sim_time"]
        return summary

    scenarios.append(("parallel_sf/p_sweep", "summary", sweep))
    return scenarios


MICROS: list[tuple[str, Callable[[str], dict]]] = [
    ("micro/ib_insert_batch", micro_ib_insert),
    ("micro/replacement_selection", micro_replacement_selection),
    ("micro/merge_pop_many", micro_merge_pop_many),
    ("micro/sidefile_drain", micro_sidefile_drain),
    ("micro/sidefile_redo", micro_sidefile_redo),
    ("micro/frontier_shard_of", micro_frontier_shard_of),
    ("micro/scan_sort_load_codec", micro_scan_sort_load_codec),
    ("micro/codec_compare_bound", micro_codec_compare_bound),
]


# ---------------------------------------------------------------------------
# suite driver, schema, CLI
# ---------------------------------------------------------------------------


def run_suite(mode: str = "full", *, only: Optional[str] = None,
              echo: Callable[[str], None] = lambda line: None) -> dict:
    """Run every scenario; never raises -- failures land in the JSON.

    ``only`` restricts the run to scenarios whose name starts with the
    given prefix (used by CI to run just the parallel smoke).  Filtered
    payloads carry an ``only`` key and skip full-schema validation.
    """
    entries: list[tuple[str, str, Callable[[], dict]]] = []
    for name, thunk in _build_scenarios(mode):
        entries.append((name, "build", lambda t=thunk: t()))
    entries.extend(_codec_scenarios(mode))
    entries.append(("rebuild/reuse_runs", "build",
                    lambda: _rebuild_scenario(mode)))
    entries.extend(_parallel_scenarios(mode))
    for name, body in MICROS:
        entries.append((name, "micro", lambda b=body: b(mode)))
    scenarios: list[dict] = []
    for name, kind, thunk in entries:
        if only is not None and not name.startswith(only):
            continue
        scenarios.append(_run_one(name, kind, thunk, echo))
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "mode": mode,
        "python": sys.version.split()[0],
        "scenarios": scenarios,
    }
    if only is not None:
        payload["only"] = only
    return payload


def _run_one(name: str, kind: str, thunk: Callable[[], dict],
             echo: Callable[[str], None]) -> dict:
    scenario: dict[str, Any] = {"name": name, "kind": kind, "ok": True}
    try:
        scenario.update(thunk())
    except Exception as exc:  # noqa: BLE001 - recorded, reported by check
        scenario["ok"] = False
        scenario["error"] = f"{type(exc).__name__}: {exc}"
        echo(f"  FAIL {name}: {scenario['error']}")
        return scenario
    if name in ("micro/ib_insert_batch", "micro/frontier_shard_of",
                "micro/scan_sort_load_codec", "micro/codec_compare_bound"):
        echo(f"  ok   {name}: speedup {scenario['speedup']:.2f}x "
             f"({scenario['baseline']['wall_seconds']:.3f}s -> "
             f"{scenario['optimized']['wall_seconds']:.3f}s)")
    elif name == "codec/sim_sweep":
        echo(f"  ok   {name}: sim {scenario['speedup_sim']:.2f}x, "
             f"wall {scenario['speedup_wall']:.2f}x")
    elif name == "rebuild/reuse_runs":
        echo(f"  ok   {name}: 0 pages rescanned, sim "
             f"{scenario['speedup_vs_seed_build']:.2f}x vs seed build")
    elif name == "parallel_sf/p_sweep":
        speedups = ", ".join(
            f"P={p}: {ratio:.2f}x" for p, ratio
            in scenario.get("speedup_scan_sort", {}).items())
        echo(f"  ok   {name}: scan+sort {speedups or 'n/a'}")
    else:
        echo(f"  ok   {name}: {scenario.get('wall_seconds', 0.0):.3f}s")
    return scenario


def validate_payload(payload: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    if payload.get("suite") != SUITE_NAME:
        problems.append("suite name mismatch")
    if payload.get("mode") not in ("full", "smoke"):
        problems.append("mode must be 'full' or 'smoke'")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        return problems + ["scenarios must be a non-empty list"]
    names = set()
    for scenario in scenarios:
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            problems.append("scenario without a name")
            continue
        if name in names:
            problems.append(f"duplicate scenario {name}")
        names.add(name)
        if scenario.get("kind") not in ("build", "micro", "summary"):
            problems.append(f"{name}: bad kind")
        if not isinstance(scenario.get("ok"), bool):
            problems.append(f"{name}: ok must be a bool")
        if not scenario.get("ok"):
            continue
        if scenario.get("kind") == "build":
            for field in ("wall_seconds", "keys_per_second", "sim_time"):
                if not isinstance(scenario.get(field), (int, float)):
                    problems.append(f"{name}: missing {field}")
            if not isinstance(scenario.get("counters"), dict):
                problems.append(f"{name}: missing counters")
    ib = find_scenario(payload, "micro/ib_insert_batch")
    if ib is None:
        problems.append("micro/ib_insert_batch scenario missing")
    elif ib.get("ok"):
        for field in ("baseline", "optimized"):
            side = ib.get(field)
            if not isinstance(side, dict) \
                    or not isinstance(side.get("wall_seconds"),
                                      (int, float)) \
                    or not isinstance(side.get("keys_per_second"),
                                      (int, float)):
                problems.append(f"ib micro: malformed {field}")
        if not isinstance(ib.get("speedup"), (int, float)):
            problems.append("ib micro: missing speedup")
    return problems


def find_scenario(payload: dict, name: str) -> Optional[dict]:
    for scenario in payload.get("scenarios", []):
        if scenario.get("name") == name:
            return scenario
    return None


def check_payload(payload: dict, reference: Optional[dict], *,
                  max_regression: float = 0.30,
                  min_speedup: Optional[float] = None) -> list[str]:
    """Regression gate: schema, scenario failures, IB speedup floor.

    Wall-clock seconds are machine-dependent, so the gate compares the
    IB-insert *speedup ratio* (same-process, same-machine by
    construction) against the reference's ratio -- or, when the modes
    differ (smoke CI vs committed full baseline), against the acceptance
    floor scaled by the allowed regression.
    """
    problems = validate_payload(payload)
    for scenario in payload.get("scenarios", []):
        if not scenario.get("ok"):
            problems.append(
                f"scenario {scenario.get('name')} failed: "
                f"{scenario.get('error', 'unknown error')}")
    ib = find_scenario(payload, "micro/ib_insert_batch")
    speedup = ib.get("speedup") if ib and ib.get("ok") else None
    if speedup is not None:
        floor = None
        if reference is not None:
            ref_ib = find_scenario(reference, "micro/ib_insert_batch")
            ref_speedup = (ref_ib or {}).get("speedup")
            if isinstance(ref_speedup, (int, float)) \
                    and reference.get("mode") == payload.get("mode"):
                floor = ref_speedup * (1.0 - max_regression)
        if floor is None:
            floor = MIN_IB_SPEEDUP * (1.0 - max_regression)
        if min_speedup is not None:
            floor = max(floor, min_speedup)
        if speedup < floor:
            problems.append(
                f"ib-insert speedup {speedup:.2f}x under floor "
                f"{floor:.2f}x")
    compare_bound = find_scenario(payload, "micro/codec_compare_bound")
    bound_speedup = compare_bound.get("speedup") \
        if compare_bound and compare_bound.get("ok") else None
    if bound_speedup is not None:
        floor = None
        if reference is not None:
            ref_bound = find_scenario(reference,
                                      "micro/codec_compare_bound")
            ref_speedup = (ref_bound or {}).get("speedup")
            if isinstance(ref_speedup, (int, float)) \
                    and reference.get("mode") == payload.get("mode"):
                floor = ref_speedup * (1.0 - max_regression)
        if floor is None:
            floor = MIN_CODEC_SPEEDUP * (1.0 - max_regression)
        if bound_speedup < floor:
            problems.append(
                f"codec comparison-bound speedup {bound_speedup:.2f}x "
                f"under floor {floor:.2f}x")
    codec = find_scenario(payload, "micro/scan_sort_load_codec")
    codec_speedup = codec.get("speedup") if codec and codec.get("ok") \
        else None
    if codec_speedup is not None and reference is not None:
        # End-to-end pipeline ratio: regression-gated row-by-row against
        # the committed baseline (no absolute floor -- see the note on
        # MIN_CODEC_SPEEDUP above).
        ref_codec = find_scenario(reference, "micro/scan_sort_load_codec")
        ref_speedup = (ref_codec or {}).get("speedup")
        if isinstance(ref_speedup, (int, float)) \
                and reference.get("mode") == payload.get("mode") \
                and codec_speedup < ref_speedup * (1.0 - max_regression):
            problems.append(
                f"codec scan+sort+load speedup {codec_speedup:.2f}x "
                f"regressed from baseline {ref_speedup:.2f}x")
    codec_sim = find_scenario(payload, "codec/sim_sweep")
    if codec_sim is not None and codec_sim.get("ok"):
        # Simulated clock: machine-independent, gated on the raw floor.
        ratio = codec_sim.get("speedup_sim")
        if isinstance(ratio, (int, float)) \
                and ratio < MIN_CODEC_SIM_SPEEDUP:
            problems.append(
                f"codec simulated build speedup {ratio:.2f}x under "
                f"floor {MIN_CODEC_SIM_SPEEDUP:.2f}x")
    rebuild = find_scenario(payload, "rebuild/reuse_runs")
    if rebuild is not None and rebuild.get("ok") \
            and rebuild.get("pages_scanned_delta") != 0:
        problems.append(
            "rebuild/reuse_runs rescanned "
            f"{rebuild.get('pages_scanned_delta')} table pages")
    sweep = find_scenario(payload, "parallel_sf/p_sweep")
    if sweep is not None and sweep.get("ok"):
        # The parallel scan+sort speedup is on the simulated clock, so it
        # needs no machine-matched reference -- gate on the floor whenever
        # the sweep reached P=4 (full mode; the smoke stops at P=2).
        at_four = sweep.get("speedup_scan_sort", {}).get("4")
        if isinstance(at_four, (int, float)) \
                and at_four < MIN_PSF_SCAN_SPEEDUP:
            problems.append(
                f"parallel scan+sort speedup at P=4 {at_four:.2f}x "
                f"under floor {MIN_PSF_SCAN_SPEEDUP:.2f}x")
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="wall-clock perf-regression suite")
    parser.add_argument("--out", required=True,
                        help="write the results JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI")
    parser.add_argument("--only", metavar="PREFIX", default=None,
                        help="run only scenarios whose name starts with "
                             "PREFIX (skips full-schema validation)")
    parser.add_argument("--check-against", metavar="REF",
                        help="reference JSON to gate regressions against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed relative speedup loss (default 0.30)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="hard lower bound on the ib-insert speedup")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    suffix = f", only={args.only}" if args.only else ""
    print(f"perf suite ({mode}{suffix})")
    payload = run_suite(mode, only=args.only, echo=print)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.only:
        # Light validation: a filtered payload is missing required
        # scenarios by design, so just demand the filter matched and
        # nothing that ran failed.
        problems = [] if payload["scenarios"] else \
            [f"--only {args.only} matched no scenarios"]
        for scenario in payload["scenarios"]:
            if not scenario.get("ok"):
                problems.append(
                    f"scenario {scenario.get('name')} failed: "
                    f"{scenario.get('error', 'unknown error')}")
        for problem in problems:
            print(f"FAIL: {problem}")
        if not problems:
            print(f"ok: {len(payload['scenarios'])} scenario(s)")
        return 1 if problems else 0

    reference = None
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as handle:
            reference = json.load(handle)
    problems = check_payload(payload, reference,
                             max_regression=args.max_regression,
                             min_speedup=args.min_speedup)
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        ib = find_scenario(payload, "micro/ib_insert_batch")
        print(f"ok: ib-insert speedup {ib['speedup']:.2f}x")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
