"""Experiment harness shared by the benchmark suite.

Each experiment in EXPERIMENTS.md is a parameter sweep over
:func:`run_build_experiment`, which stands up a fresh simulated system,
preloads a table, runs one builder against a configurable update workload,
audits the result, and returns the measurements the paper's claims are
about (log volume, clustering, quiesce time, traversals, side-file
length, simulated build time, ...).

``print_table`` renders the rows the way the paper would have tabulated
them, so ``pytest benchmarks/ --benchmark-only`` output reads like the
evaluation section the paper never had.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Type

from repro.core import (
    BuildOptions,
    IndexSpec,
    NSFIndexBuilder,
    OfflineIndexBuilder,
    SFIndexBuilder,
)
from repro.parallel import ParallelSFBuilder
from repro.system import System, SystemConfig
from repro.verify import audit_index
from repro.workloads import WorkloadDriver, WorkloadSpec

BUILDERS = {
    "offline": OfflineIndexBuilder,
    "nsf": NSFIndexBuilder,
    "sf": SFIndexBuilder,
    # shard count comes from BuildOptions.partitions (default 2)
    "psf": ParallelSFBuilder,
}


def bench_config(**overrides) -> SystemConfig:
    """The standard small-page configuration used by the benches."""
    defaults = dict(page_capacity=8, leaf_capacity=8, branch_capacity=8,
                    sort_workspace=32, merge_fanin=4)
    defaults.update(overrides)
    return SystemConfig(**defaults)


@dataclass
class BuildRunResult:
    """Everything a bench needs from one build-under-workload run."""

    algorithm: str
    system: System
    builder: object
    driver: Optional[WorkloadDriver]
    build_time: float
    counters: dict[str, int] = field(default_factory=dict)
    #: clustering factor of each built index, sampled the moment the
    #: builder finished (before later workload splits disturb it)
    clustering_at_build_end: dict[str, float] = field(default_factory=dict)

    # -- convenient accessors ------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    @property
    def quiesce_wait(self) -> float:
        return self.system.metrics.stat("build.quiesce_wait").maximum

    @property
    def quiesce_hold(self) -> float:
        return self.system.metrics.stat("build.quiesce_hold").maximum

    def clustering(self, index: str = "idx") -> float:
        return self.system.indexes[index].tree.clustering_factor()

    def longest_stall(self) -> float:
        return self.driver.longest_stall() if self.driver else 0.0


def run_build_experiment(algorithm: str, *,
                         rows: int = 400,
                         operations: int = 0,
                         workers: int = 2,
                         seed: int = 0,
                         unique: bool = False,
                         rollback_fraction: float = 0.1,
                         think_time: float = 1.0,
                         key_space: int = 1_000_000,
                         insert_weight: float = 1.0,
                         delete_weight: float = 1.0,
                         update_weight: float = 1.0,
                         key_columns: Sequence[str] = ("k",),
                         index_specs: Optional[list[IndexSpec]] = None,
                         options: Optional[BuildOptions] = None,
                         config: Optional[SystemConfig] = None,
                         audit: bool = True,
                         tracer=None) -> BuildRunResult:
    """One build of algorithm ``algorithm`` under an optional workload.

    ``tracer`` (a :class:`~repro.obs.TraceRecorder`) attaches passively
    before anything runs, so the experiment's phase spans land in it
    without perturbing the simulated schedule.
    """
    system = System(config or bench_config(), seed=seed)
    if tracer is not None:
        from repro.obs import enable_tracing
        enable_tracing(system, tracer)
    table = system.create_table("t", ["k", "p"])
    spec = WorkloadSpec(operations=operations, workers=workers,
                        rollback_fraction=rollback_fraction,
                        think_time=think_time, key_space=key_space,
                        insert_weight=insert_weight,
                        delete_weight=delete_weight,
                        update_weight=update_weight)
    driver = WorkloadDriver(system, table, spec, seed=seed)
    preload = system.spawn(driver.preload(rows), name="preload")
    system.run()
    assert preload.error is None

    before = system.metrics.snapshot()
    builder_cls = BUILDERS[algorithm]
    specs = index_specs or [IndexSpec.of("idx", list(key_columns),
                                         unique=unique)]
    builder = builder_cls(system, table, specs, options=options)
    build_proc = system.spawn(builder.run(), name="builder")
    at_build_end: dict[str, float] = {}

    def watcher():
        from repro.sim.kernel import Join
        yield Join(build_proc)
        for spec_item in specs:
            descriptor = system.indexes.get(spec_item.name)
            if descriptor is not None:
                at_build_end[spec_item.name] = \
                    descriptor.tree.clustering_factor()

    system.spawn(watcher(), name="bench-watcher")
    if operations:
        driver.spawn_workers()
    system.run()
    if build_proc.error is not None:
        raise build_proc.error

    result = BuildRunResult(
        algorithm=algorithm,
        system=system,
        builder=builder,
        driver=driver if operations else None,
        build_time=builder.timings.get("done", system.now())
        - builder.timings.get("start", 0.0),
        counters=system.metrics.delta(before),
        clustering_at_build_end=at_build_end,
    )
    if audit:
        for spec_item in specs:
            audit_index(system, system.indexes[spec_item.name])
    return result


# -- table rendering -------------------------------------------------------------


#: every table rendered this session, for emission after pytest's capture
#: ends (see benchmarks/conftest.py) and for EXPERIMENTS.md regeneration
RENDERED_TABLES: list[str] = []


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], note: str = "") -> str:
    """Render one paper-style results table as a string."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(str(headers[i])),
                  max((len(r[i]) for r in rendered), default=0))
              for i in range(len(headers))]
    line = "-+-".join("-" * w for w in widths)
    out = [f"== {title} =="]
    out.append(" | ".join(str(h).ljust(widths[i])
                          for i, h in enumerate(headers)))
    out.append(line)
    for row in rendered:
        out.append(" | ".join(row[i].ljust(widths[i])
                              for i in range(len(headers))))
    if note:
        out.append(f"note: {note}")
    return "\n".join(out)


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence], note: str = "") -> None:
    """Render a table to stdout and remember it for the session report."""
    text = format_table(title, headers, rows, note)
    RENDERED_TABLES.append(text)
    print()
    print(text)
    print()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
