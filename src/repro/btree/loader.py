"""Bottom-up B+-tree bulk loading.

Section 2.3.1 describes the build SF and the offline baseline use: "the
keys are sorted in key sequence and then inserted into the first index
page which acts as a root as well as a leaf.  When this leaf becomes full,
the next two index pages are allocated ... the tree grows in a bottom-up,
left to right fashion.  Needed new pages are always allocated from the end
of the index file which keeps growing" -- yielding a perfectly clustered
index (ascending key order == ascending page numbers).

The loader appends keys one at a time (so SF's pipelined final merge pass
can feed it, section 3.2.4) and supports:

* a fill factor leaving free space in each leaf for future inserts
  (section 2.2.3);
* *unlogged* operation -- SF's IB "does not write log records for the
  inserts of keys that it extracts from the records in the data pages"
  (section 3.1);
* checkpoint/resume: SF checkpoints the highest key and the right-most
  branch after forcing dirty pages; after a crash "the index pages can be
  reset in such a way that the keys higher than the checkpointed key
  disappear from the index" (section 3.2.4) -- :meth:`BulkLoader.resume`
  rebuilds loader state from a tree restored to that snapshot.
"""

from __future__ import annotations

from typing import Optional

from repro.btree.node import BranchPage, CompositeKey, KeyEntry, LeafPage
from repro.btree.tree import BTree
from repro.errors import IndexBuildError, StorageError
from repro.storage.rid import RID


class BulkLoader:
    """Append-only bottom-up builder over an (initially empty) tree."""

    def __init__(self, tree: BTree,
                 fill_free_fraction: Optional[float] = None) -> None:
        self.tree = tree
        if fill_free_fraction is None:
            fill_free_fraction = tree.system.config.fill_free_fraction
        if not 0.0 <= fill_free_fraction < 1.0:
            raise StorageError(
                f"fill_free_fraction {fill_free_fraction!r} out of range")
        self.leaf_fill = max(1, round(
            tree.leaf_capacity * (1.0 - fill_free_fraction)))
        self._current_leaf: Optional[LeafPage] = None
        #: right-most branch pages, *bottom* (leaf parents) first -- the
        #: paper's checkpointed "page-IDs of the rightmost branch of the
        #: index" (section 3.2.4)
        self._right_branch: list[BranchPage] = []
        self._last_composite: Optional[CompositeKey] = None
        self.keys_loaded = 0

    # -- appending ---------------------------------------------------------

    def append(self, key_value, rid: RID) -> None:
        """Append the next key in sorted order."""
        if type(rid) is not RID:  # tolerate raw (page, slot) tuples
            rid = RID(*rid)
        composite = (key_value, rid)
        if self._last_composite is not None \
                and composite < self._last_composite:
            raise IndexBuildError(
                f"bulk load keys out of order: {composite!r} after "
                f"{self._last_composite!r}")
        if self.tree.unique and self._last_composite is not None \
                and self._last_composite[0] == key_value:
            raise IndexBuildError(
                f"cannot build unique index {self.tree.name}: duplicate "
                f"key value {key_value!r}")
        self._last_composite = composite
        leaf = self._leaf_for(composite)
        leaf.entries.append(KeyEntry(key_value, rid))
        self.keys_loaded += 1
        self.tree.system.metrics.incr("index.inserts.bulk")

    def _leaf_for(self, composite: CompositeKey) -> LeafPage:
        if self._current_leaf is None:
            leaf = self.tree._ensure_root()
            if leaf.entries:
                raise IndexBuildError(
                    "bulk load requires an empty tree (use resume() to "
                    "continue an interrupted build)")
            self._current_leaf = leaf
            return leaf
        if len(self._current_leaf.entries) < self.leaf_fill:
            return self._current_leaf
        # Leaf reached its fill target: allocate the next right-most leaf.
        # The incoming composite is exactly the separator between them.
        old = self._current_leaf
        new_leaf = self.tree._allocate_leaf()
        old.next_leaf = new_leaf.page_no
        self._current_leaf = new_leaf
        self.tree.structure_version += 1
        self._link_into_parent(old, new_leaf, composite, level=0)
        return new_leaf

    def _link_into_parent(self, left, right, separator: CompositeKey,
                          level: int) -> None:
        """Attach ``right`` to the right-most branch at ``level``."""
        tree = self.tree
        if level >= len(self._right_branch):
            # Grow the tree upward: a new root above the current top.
            new_root = tree._allocate_branch()
            new_root.separators = [separator]
            new_root.children = [left.page_no, right.page_no]
            tree.root = new_root.page_no
            self._right_branch.append(new_root)
            tree.system.metrics.incr("index.bulk_root_growths")
            return
        parent = self._right_branch[level]
        parent.separators.append(separator)
        parent.children.append(right.page_no)
        if parent.is_full:
            # Bottom-up branch overflow: start a fresh right-most branch
            # holding the overflowing child; nothing else moves (the
            # branch-level analogue of "no keys are moved from the
            # splitting page", section 2.3.1).
            new_branch = tree._allocate_branch()
            push_up = parent.separators.pop()
            moved_child = parent.children.pop()
            new_branch.children = [moved_child]
            self._right_branch[level] = new_branch
            self._link_into_parent(parent, new_branch, push_up, level + 1)

    # -- finishing ----------------------------------------------------------------

    def finish(self) -> None:
        """Complete the build.  (Exists for symmetry and future hooks;
        bottom-up state is consistent after every append.)"""
        self.tree.system.metrics.incr("index.bulk_loads_finished")

    # -- resume after crash ------------------------------------------------------

    @classmethod
    def resume(cls, tree: BTree,
               fill_free_fraction: Optional[float] = None) -> "BulkLoader":
        """Rebuild loader state over a tree restored from a checkpoint.

        Walks the right-most path of the restored tree (exactly what SF
        checkpointed) and continues appending after the highest surviving
        key.
        """
        loader = cls(tree, fill_free_fraction=fill_free_fraction)
        if tree.root is None:
            return loader
        node = tree.pages[tree.root]
        branches: list[BranchPage] = []
        while isinstance(node, BranchPage):
            branches.append(node)
            node = tree.pages[node.children[-1]]
        loader._right_branch = list(reversed(branches))
        loader._current_leaf = node
        if node.entries:
            loader._last_composite = node.entries[-1].composite
        loader.keys_loaded = tree.key_count(include_pseudo_deleted=True)
        return loader

    @property
    def highest_key(self) -> Optional[CompositeKey]:
        return self._last_composite
