"""The B+-tree index manager.

Implements the index-side machinery both algorithms rely on:

* ordinary transaction key inserts and deletes with latching and logging
  (ARIES/IM style, sections 1.1 and 2.2.3);
* the *duplicate-key rejection* logic of NSF (section 2.1.1): whoever
  arrives second -- IB or the transaction -- skips the physical insert; a
  transaction still writes an **undo-only** log record so its rollback
  removes the key IB inserted;
* *pseudo-deleted keys* (section 2.1.2): logical deletion via a 1-bit flag,
  tombstone inserts by deleters who find no key, reactivation on rollback;
* unique-index checks that distinguish a genuine unique-key violation from
  an in-flight insert/delete by testing whether the owning record's lock is
  free (data-only locking, sections 2.2.3 and 6.2);
* NSF's IB insert path: multi-key calls, the remembered root-to-leaf path,
  and the *specialized split* that moves only keys higher than IB's insert
  point (section 2.3.1);
* next-key locking for phantom protection during normal operation, and its
  suppression while the index is still being built (section 2.2.3: "No
  next key locking is done during key inserts into the new index while
  index build is still in progress");
* logical redo/undo integrated with restart recovery via a per-tree
  ``durable_lsn`` snapshot watermark (see DESIGN.md, "crash model").

All public mutators are generators (they latch pages and charge simulated
CPU cost); everything between two yields is atomic, so structure
modifications are consistent without interior-node latching while leaf
latches still create the contention the experiments measure.  Lock waits
never happen while a latch is held (the latch-deadlock avoidance rule of
section 1.2): conflicts are detected under the latch with *conditional*
lock probes, and the actual wait happens after the latch is released,
followed by a retry.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from typing import Iterator, Optional, Sequence, TYPE_CHECKING

from repro.btree.node import BranchPage, CompositeKey, KeyEntry, LeafPage
from repro.errors import IndexBuildError, StorageError, UniqueViolationError
from repro.faultinject.injector import InjectedCrash
from repro.faultinject.sites import fault_point, fault_points_enabled
from repro.sim.kernel import Acquire, Delay
from repro.sim.latch import EXCLUSIVE, SHARE
from repro.storage.rid import RID
from repro.wal.records import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System
    from repro.txn.transaction import Transaction

#: Sorts below every real RID; used to find the leftmost leaf for a key value.
MIN_RID = RID(-1, -1)


class InsertOutcome(enum.Enum):
    """What a transaction's key insert physically did."""

    INSERTED = "inserted"
    REACTIVATED = "reactivated"          # pseudo-deleted entry revived
    DUPLICATE_NOOP = "duplicate-noop"    # IB beat us; undo-only log written
    REPLACED_RID = "replaced-rid"        # unique: tombstone revived, new RID


class IBCursor:
    """NSF's remembered root-to-leaf path (section 2.3.1).

    IB avoids a full traversal when the cached leaf still covers the next
    key; the cache is invalidated by any split (the tree bumps
    ``structure_version``).
    """

    __slots__ = ("leaf_no", "version")

    def __init__(self) -> None:
        self.leaf_no: Optional[int] = None
        self.version = -1


class BTree:
    """One B+-tree index over a table."""

    def __init__(self, system: "System", name: str, table_name: str,
                 unique: bool = False,
                 leaf_capacity: Optional[int] = None,
                 branch_capacity: Optional[int] = None) -> None:
        self.system = system
        self.name = name
        self.table_name = table_name
        self.unique = unique
        self.leaf_capacity = leaf_capacity or system.config.leaf_capacity
        self.branch_capacity = branch_capacity or system.config.branch_capacity
        self.pages: dict[int, LeafPage | BranchPage] = {}
        self.root: Optional[int] = None
        self._next_page_no = 0
        #: bumped by every split; invalidates IB cursors
        self.structure_version = 0
        #: log records with LSN <= durable_lsn are reflected in the stable
        #: snapshot; recovery redoes only younger index log records
        self.durable_lsn = 0
        self._snapshot: Optional[dict] = None
        self._snapshot_durable_lsn = 0
        #: True after a crash revealed a torn (damaged) stable snapshot:
        #: the surviving tree image is unusable and recovery must either
        #: replay the full log (NSF, fully logged) or rebuild from the
        #: sorted runs (SF, unlogged build; section 6's fallback).
        self.media_damaged = False
        self._bounds_cache: dict = {}
        self._register_operations()

    # ------------------------------------------------------------------
    # page allocation
    # ------------------------------------------------------------------

    def _allocate_leaf(self) -> LeafPage:
        page = LeafPage(self._next_page_no, self.leaf_capacity,
                        metrics=self.system.metrics)
        self.pages[page.page_no] = page
        self._next_page_no += 1
        self.system.metrics.incr("index.pages_allocated")
        return page

    def _allocate_branch(self) -> BranchPage:
        page = BranchPage(self._next_page_no, self.branch_capacity,
                          metrics=self.system.metrics)
        self.pages[page.page_no] = page
        self._next_page_no += 1
        self.system.metrics.incr("index.pages_allocated")
        return page

    def _ensure_root(self) -> LeafPage:
        if self.root is None:
            leaf = self._allocate_leaf()
            self.root = leaf.page_no
            return leaf
        node = self.pages[self.root]
        while isinstance(node, BranchPage):
            node = self.pages[node.children[0]]
        return node

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------

    def _traverse(self, composite: CompositeKey, *, count: bool = True
                  ) -> tuple[LeafPage, list[tuple[BranchPage, int]]]:
        """Root-to-leaf descent; returns the leaf and the branch path."""
        if count:
            self.system.metrics.incr("index.traversals")
        if self.root is None:
            self._ensure_root()
        node = self.pages[self.root]
        path: list[tuple[BranchPage, int]] = []
        visits = 1
        while isinstance(node, BranchPage):
            child_no, slot = node.child_for(composite)
            path.append((node, slot))
            node = self.pages[child_no]
            visits += 1
        if count:
            self.system.metrics.incr("index.page_visits", visits)
        return node, path

    def _path_to_leaf(self, leaf_no: int) -> list[tuple[BranchPage, int]]:
        """Derive the branch path to a known leaf, structurally.

        A key-guided descent is not reliable here: rollbacks can empty a
        leaf, and a subsequent insert can give it a low key equal to one
        of its fences, making "traverse by low key" land a neighbour.
        The structural search is exact; interior fan-out keeps it cheap.
        When the leaf's fences are cached at the current structure
        version they pin the leaf's position exactly, so a fence-guided
        O(height) descent replaces the O(pages) walk (IB pays this once
        per split; the walk made split-heavy builds quadratic).
        """
        if self.root == leaf_no:
            return []
        path = self._fence_guided_path(leaf_no)
        if path is not None:
            return path
        path = []

        def descend(page_no: int) -> bool:
            node = self.pages[page_no]
            if isinstance(node, LeafPage):
                return node.page_no == leaf_no
            for slot, child in enumerate(node.children):
                path.append((node, slot))
                if descend(child):
                    return True
                path.pop()
            return False

        if self.root is None or not descend(self.root):
            raise StorageError(f"leaf {leaf_no} unreachable in {self.name}")
        return path

    def _fence_guided_path(self, leaf_no: int
                           ) -> Optional[list[tuple[BranchPage, int]]]:
        """Branch path to ``leaf_no`` via its cached fences, or None.

        A leaf's lower fence is the lowest composite its range covers, so
        descending by it (``bisect_right``, the same routing rule as
        :meth:`BranchPage.child_for`; a ``None`` fence means leftmost)
        lands exactly on that leaf -- verified before trusting the result,
        with the exhaustive walk as the fallback.
        """
        cache = self._bounds_cache
        if cache.get("version") != self.structure_version:
            return None
        bounds = cache.get(leaf_no)
        if bounds is None:
            return None
        low_fence = bounds[0]
        node = self.pages[self.root]
        path: list[tuple[BranchPage, int]] = []
        while isinstance(node, BranchPage):
            slot = (bisect_right(node.separators, low_fence)
                    if low_fence is not None else 0)
            path.append((node, slot))
            node = self.pages[node.children[slot]]
        if node.page_no != leaf_no:
            return None
        return path

    def _find_for_key_value(self, key_value
                            ) -> tuple[LeafPage, Optional[KeyEntry]]:
        """Leftmost leaf covering ``key_value`` and its entry, if any.

        Handles the leaf-boundary case where the only entry with this key
        value is the first entry of the *next* leaf (its composite is the
        separator).  Only meaningful for unique indexes, which hold at
        most one entry per key value.
        """
        leaf, _path = self._traverse((key_value, MIN_RID), count=False)
        entry = leaf.find_key_value(key_value)
        if entry is None:
            next_no = leaf.next_leaf
            while next_no is not None:
                successor = self.pages.get(next_no)
                if successor is None:
                    break
                if successor.entries:
                    if successor.entries[0].key_value == key_value:
                        return successor, successor.entries[0]
                    break
                next_no = successor.next_leaf
        return leaf, entry

    # ------------------------------------------------------------------
    # structure modification (atomic helpers; no yields)
    # ------------------------------------------------------------------

    def _insert_sorted(self, leaf: LeafPage, entry: KeyEntry,
                       path: Optional[list[tuple[BranchPage, int]]] = None,
                       specialized_for_ib: bool = False) -> LeafPage:
        """Place ``entry`` in ``leaf``, splitting if needed.

        Returns the leaf that finally holds the entry.  With
        ``specialized_for_ib`` the split follows section 2.3.1: keys higher
        than IB's key move to the new leaf (the few keys inserted by
        transactions), or -- when none are higher -- a fresh leaf is
        allocated for IB's key alone, mimicking a bottom-up build.
        """
        if not leaf.is_full:
            leaf.entries.insert(leaf.position(entry.composite), entry)
            return leaf
        if path is None:
            path = self._path_to_leaf(leaf.page_no)
        if specialized_for_ib:
            return self._specialized_split(leaf, entry, path)
        return self._normal_split(leaf, entry, path)

    def _normal_split(self, leaf: LeafPage, entry: KeyEntry,
                      path: list[tuple[BranchPage, int]]) -> LeafPage:
        """Half-and-half split (section 2.3.1: "usually, half the keys in
        the page being split are moved to the new page")."""
        new_leaf = self._allocate_leaf()
        mid = len(leaf.entries) // 2
        new_leaf.entries = leaf.entries[mid:]
        del leaf.entries[mid:]
        self.system.metrics.incr("index.keys_moved", len(new_leaf.entries))
        new_leaf.next_leaf, leaf.next_leaf = leaf.next_leaf, new_leaf.page_no
        separator = new_leaf.entries[0].composite
        self._finish_split(leaf, new_leaf, separator, path)
        target = new_leaf if entry.composite >= separator else leaf
        target.entries.insert(target.position(entry.composite), entry)
        return target

    def _specialized_split(self, leaf: LeafPage, entry: KeyEntry,
                           path: list[tuple[BranchPage, int]]) -> LeafPage:
        """IB's split (section 2.3.1): move only the keys *higher* than
        IB's key to the new page; when none are higher, the new leaf holds
        IB's key alone -- the bottom-up append pattern."""
        pos = leaf.position(entry.composite)
        new_leaf = self._allocate_leaf()
        moved = leaf.entries[pos:]
        del leaf.entries[pos:]
        self.system.metrics.incr("index.keys_moved", len(moved))
        self.system.metrics.incr("index.splits.specialized")
        new_leaf.next_leaf, leaf.next_leaf = leaf.next_leaf, new_leaf.page_no
        if moved:
            new_leaf.entries = moved
            if not leaf.is_full:
                separator = new_leaf.entries[0].composite
                self._finish_split(leaf, new_leaf, separator, path)
                leaf.entries.insert(leaf.position(entry.composite), entry)
                return leaf
            new_leaf.entries.insert(0, entry)
            separator = new_leaf.entries[0].composite
            self._finish_split(leaf, new_leaf, separator, path)
            return new_leaf
        new_leaf.entries = [entry]
        self._finish_split(leaf, new_leaf, entry.composite, path)
        return new_leaf

    def _finish_split(self, left: LeafPage | BranchPage,
                      right: LeafPage | BranchPage,
                      separator: CompositeKey,
                      path: list[tuple[BranchPage, int]]) -> None:
        # Mid-split: entries are redistributed and the leaf chain is
        # relinked, but the parent has no separator yet.
        fault_point(self.system.metrics, "btree.split")
        self.structure_version += 1
        self._bounds_cache_after_leaf_split(left, right, separator)
        self.system.metrics.incr("index.splits")
        self.system.log.append(
            None, RecordKind.UPDATE,
            redo=("index.split", {"index": self.name,
                                  "left": left.page_no,
                                  "right": right.page_no}),
            writer="system",
            info={"index": self.name},
        )
        if not path:
            new_root = self._allocate_branch()
            new_root.separators = [separator]
            new_root.children = [left.page_no, right.page_no]
            self.root = new_root.page_no
            return
        parent, slot = path[-1]
        parent.separators.insert(slot, separator)
        parent.children.insert(slot + 1, right.page_no)
        if parent.is_full:
            self._split_branch(parent, path[:-1])

    def _split_branch(self, branch: BranchPage,
                      path: list[tuple[BranchPage, int]]) -> None:
        new_branch = self._allocate_branch()
        mid = len(branch.separators) // 2
        push_up = branch.separators[mid]
        new_branch.separators = branch.separators[mid + 1:]
        new_branch.children = branch.children[mid + 1:]
        del branch.separators[mid:]
        del branch.children[mid + 1:]
        self.structure_version += 1
        self._bounds_cache_carry_forward()
        self.system.metrics.incr("index.splits")
        if not path:
            new_root = self._allocate_branch()
            new_root.separators = [push_up]
            new_root.children = [branch.page_no, new_branch.page_no]
            self.root = new_root.page_no
            return
        parent, slot = path[-1]
        parent.separators.insert(slot, push_up)
        parent.children.insert(slot + 1, new_branch.page_no)
        if parent.is_full:
            self._split_branch(parent, path[:-1])

    # ------------------------------------------------------------------
    # bounds-cache maintenance
    # ------------------------------------------------------------------

    def _bounds_cache_after_leaf_split(self, left: LeafPage,
                                       right: LeafPage,
                                       separator: CompositeKey) -> None:
        """Carry the fence cache across a leaf split we fully understand.

        A split changes exactly two leaves' fences: ``left`` keeps its
        lower fence and gains ``separator`` as its upper fence; ``right``
        spans ``separator`` up to ``left``'s old upper fence.  Every other
        leaf's fences are untouched, so instead of discarding the whole
        cache (which made the next ``_leaf_covers`` per split pay an
        O(pages) structural search -- quadratic over a build) the cache is
        patched in place and its version stamp advanced.  Any *external*
        version bump (crash, snapshot restore) still mismatches and clears
        the cache lazily in :meth:`_leaf_bounds`.
        """
        cache = self._bounds_cache
        if cache.get("version") != self.structure_version - 1:
            return  # cache already stale; let _leaf_bounds rebuild lazily
        cache["version"] = self.structure_version
        bounds = cache.get(left.page_no)
        if bounds is not None:
            low_fence, high_fence = bounds
            cache[left.page_no] = (low_fence, separator)
            cache[right.page_no] = (separator, high_fence)

    def _bounds_cache_carry_forward(self) -> None:
        """Keep the fence cache valid across a *branch* split.

        Redistributing separators among branches never changes which
        separators fence a given leaf (the pushed-up separator bounds the
        same leaves from the parent instead), so all cached leaf fences
        stay correct -- only the version stamp must follow.
        """
        cache = self._bounds_cache
        if cache.get("version") == self.structure_version - 1:
            cache["version"] = self.structure_version

    # ------------------------------------------------------------------
    # transaction operations (generators)
    # ------------------------------------------------------------------

    def txn_insert_key(self, txn: "Transaction", key_value, rid: RID, *,
                       during_build: bool):
        """Generator: a transaction inserts ``<key_value, rid>``.

        Implements the forward-processing insert of sections 2.1.1 and
        2.2.3, including the undo-only log record when the key was already
        inserted by IB, pseudo-delete reactivation, and the unique-index
        decision procedure.  Returns an :class:`InsertOutcome`.
        """
        composite = (key_value, rid)
        while True:
            if self.unique:
                leaf, _entry = self._find_for_key_value(key_value)
                self.system.metrics.incr("index.traversals")
            else:
                leaf, _path = self._traverse(composite)
            yield Acquire(leaf.latch, EXCLUSIVE)
            if not self._latched_leaf_valid(leaf, composite, key_value):
                # The leaf split while we waited for its latch; retry.
                leaf.latch.release(self.system.sim.current)
                continue
            retry = False
            wait_for = None
            try:
                if self.unique:
                    result = yield from self._unique_insert_decide(
                        txn, leaf, key_value, rid)
                else:
                    result = self._nonunique_insert_apply(
                        txn, leaf, composite, during_build)
                if isinstance(result, tuple):
                    retry = True
                    wait_for = result[1]
                else:
                    outcome = result
            finally:
                leaf.latch.release(self.system.sim.current)
            if not retry:
                break
            if wait_for is not None:
                # Wait (latch-free) for the conflicting record's fate.
                yield from txn.lock(wait_for, "S", instant=True)
        fault_point(self.system.metrics, "btree.txn_insert")
        if not during_build:
            yield from self._next_key_lock(txn, leaf, composite,
                                           instant=True)
        yield Delay(self.system.config.key_op_cost)
        return outcome

    def _latched_leaf_valid(self, leaf: LeafPage,
                            composite: CompositeKey, key_value) -> bool:
        """Re-validate a leaf after its latch was finally granted.

        Waiting for the latch yields the simulator, so the leaf may have
        split in between.  For a unique tree the leaf is acceptable when
        it either still holds an entry for this key value or still covers
        the composite; for a nonunique tree, when it covers the
        composite.
        """
        if self.unique and leaf.find_key_value(key_value) is not None:
            return True
        return self._leaf_covers(leaf, composite)

    def _nonunique_insert_apply(self, txn, leaf, composite,
                                during_build) -> InsertOutcome:
        key_value, rid = composite
        exact = leaf.find_exact(composite)
        if exact is None:
            entry = KeyEntry(key_value, rid)
            self._insert_sorted(leaf, entry)
            self._log_key_op(txn, "insert", key_value, rid,
                             undo_action="pseudo_delete")
            self.system.metrics.incr("index.inserts.txn")
            return InsertOutcome.INSERTED
        if exact.pseudo_deleted:
            # Section 2.2.3 step 8: resetting the pseudo-delete flag.
            exact.pseudo_deleted = False
            self._log_key_op(txn, "reactivate", key_value, rid,
                             undo_action="pseudo_delete")
            self.system.metrics.incr("index.reactivations")
            return InsertOutcome.REACTIVATED
        # Identical key already present: IB inserted it first.  Write the
        # undo-only record so a rollback still deletes it (section 2.1.1).
        self._log_undo_only(txn, key_value, rid)
        return InsertOutcome.DUPLICATE_NOOP

    def _unique_insert_decide(self, txn, leaf, key_value, rid: RID):
        """Unique-index insert under the leaf latch.

        Returns an :class:`InsertOutcome`, raises
        :class:`UniqueViolationError`, or returns ``("wait", lock_name)``
        when the caller must release the latch, wait on the conflicting
        record's lock, and retry (section 2.2.3: "the transaction ensures
        that the found key ... belongs to a committed record (or that the
        key is its own uncommitted insert)").  Generator (it probes locks
        conditionally -- probes never wait).
        """
        found = leaf.find_key_value(key_value)
        if found is None and leaf.next_leaf is not None:
            successor = self.pages[leaf.next_leaf]
            if successor.entries \
                    and successor.entries[0].key_value == key_value:
                return ("wait-switch-leaf", None)  # re-traverse, rare
        if found is None:
            self._insert_sorted(leaf, KeyEntry(key_value, rid))
            self._log_key_op(txn, "insert", key_value, rid,
                             undo_action="pseudo_delete")
            self.system.metrics.incr("index.inserts.txn")
            return InsertOutcome.INSERTED
        if found.rid == rid:
            if found.pseudo_deleted:
                found.pseudo_deleted = False
                self._log_key_op(txn, "reactivate", key_value, rid,
                                 undo_action="pseudo_delete")
                self.system.metrics.incr("index.reactivations")
                return InsertOutcome.REACTIVATED
            self._log_undo_only(txn, key_value, rid)
            return InsertOutcome.DUPLICATE_NOOP
        # Same key value, different RID: is the other entry settled?
        owner_lock = self._record_lock_name(found.rid)
        if owner_lock in txn.held_locks:
            owner_terminated = True  # our own earlier change; settled
        else:
            owner_terminated = yield from txn.lock(
                owner_lock, "S", conditional=True, instant=True)
        if not owner_terminated:
            return ("wait", owner_lock)
        if found.pseudo_deleted:
            # Terminated deleter's tombstone: revive it with the new RID
            # (the paper's <K,R> / <K,R1> example, section 2.2.3).
            old_rid = found.rid
            found.rid = rid
            found.pseudo_deleted = False
            self._log_key_op(txn, "replace_rid", key_value, rid,
                             undo_action="restore_entry",
                             extra={"old_rid": tuple(old_rid),
                                    "old_pseudo": True})
            self.system.metrics.incr("index.rid_replacements")
            return InsertOutcome.REPLACED_RID
        raise UniqueViolationError(
            f"unique index {self.name}: key {key_value!r} already maps to "
            f"committed record {found.rid}")

    def _log_undo_only(self, txn, key_value, rid) -> None:
        txn.log(RecordKind.UPDATE,
                undo=("index.undo", {"index": self.name,
                                     "action": "pseudo_delete",
                                     "key_value": key_value,
                                     "rid": tuple(rid)}),
                info={"index": self.name, "reason": "duplicate-insert"})
        self.system.metrics.incr("index.duplicate_rejections.txn")

    def txn_delete_key(self, txn: "Transaction", key_value, rid: RID, *,
                       during_build: bool):
        """Generator: a transaction deletes ``<key_value, rid>``.

        During an NSF build the delete is *logical*: an existing key is
        flagged pseudo-deleted, and a missing key is inserted as a
        tombstone so IB's later insert attempt is rejected (section 2.2.3,
        "IB and Delete Operations").  Pseudo deletion lets the deleter
        skip next-key locking; the physical path (normal operation on a
        completed index) takes the next-key lock.
        """
        composite = (key_value, rid)
        while True:
            leaf, _path = self._traverse(composite)
            yield Acquire(leaf.latch, EXCLUSIVE)
            if self._leaf_covers(leaf, composite):
                break
            # The leaf split while we waited for its latch; retry.
            leaf.latch.release(self.system.sim.current)
        try:
            exact = leaf.find_exact(composite)
            if during_build or exact is None:
                if exact is None:
                    entry = KeyEntry(key_value, rid, pseudo_deleted=True)
                    self._insert_sorted(leaf, entry)
                    self._log_key_op(txn, "insert_tombstone", key_value, rid,
                                     undo_action="reactivate")
                    self.system.metrics.incr("index.tombstone_inserts")
                elif not exact.pseudo_deleted:
                    exact.pseudo_deleted = True
                    self._log_key_op(txn, "pseudo_delete", key_value, rid,
                                     undo_action="reactivate")
                    self.system.metrics.incr("index.pseudo_deletes")
                # an already-pseudo-deleted exact match needs no action
            else:
                pos = leaf.position(composite)
                del leaf.entries[pos]
                self._log_key_op(txn, "physical_delete", key_value, rid,
                                 undo_action="insert")
                self.system.metrics.incr("index.physical_deletes")
        finally:
            leaf.latch.release(self.system.sim.current)
        fault_point(self.system.metrics, "btree.txn_delete")
        if not during_build and exact is not None:
            yield from self._next_key_lock(txn, leaf, composite,
                                           instant=False)
        yield Delay(self.system.config.key_op_cost)

    def _next_key_lock(self, txn, leaf: LeafPage, composite: CompositeKey,
                       instant: bool):
        """Phantom protection on the key next above ``composite``.

        Walks the leaf chain from ``leaf`` (which may have split since
        the caller located it) until an entry strictly above
        ``composite`` is found; locks end-of-index otherwise.
        """
        next_entry = None
        node: Optional[LeafPage] = leaf
        while node is not None and next_entry is None:
            for entry in node.entries:
                if entry.composite > composite:
                    next_entry = entry
                    break
            node = (self.pages.get(node.next_leaf)
                    if node.next_leaf is not None else None)
        if next_entry is None:
            lock_name = ("index-eof", self.name)
        else:
            lock_name = self._record_lock_name(next_entry.rid)
        self.system.metrics.incr("index.nextkey_locks")
        yield from txn.lock(lock_name, "X", instant=instant)

    def _record_lock_name(self, rid) -> tuple:
        return ("rec", self.table_name, RID(*rid))

    # ------------------------------------------------------------------
    # IB operations (NSF; generators)
    # ------------------------------------------------------------------

    def ib_insert_batch(self, ib_txn: "Transaction",
                        keys: Sequence[tuple], cursor: IBCursor, *,
                        write_log: bool = True):
        """Generator: NSF's index builder inserts a batch of sorted keys.

        Section 2.2.3: "the index manager will accept multiple keys in a
        single call"; "tree traversals are avoided most of the time by
        remembering the path from the root to the leaf"; "the log record
        can contain multiple keys".  Duplicate keys -- including
        pseudo-deleted ones -- are rejected without any log write.

        The leaf latch is held across every consecutive key that lands in
        the same leaf, and the covering multi-key log record is written
        *before* the latch is released -- WAL ordering demands it: a
        transaction's pseudo-delete of one of these keys must log after
        the insert it observed, or media/restart replay reverses them.

        Returns the number of keys physically inserted.
        """
        inserted = 0
        work = [(kv, RID(*raw_rid)) for kv, raw_rid in keys]
        total = len(work)
        index = 0
        metrics = self.system.metrics
        leaf_covers = self._leaf_covers
        ib_classify = self._ib_classify
        insert_sorted = self._insert_sorted
        while index < total:
            key_value, rid = work[index]
            leaf = self._locate_ib_leaf(cursor, (key_value, rid))
            yield Acquire(leaf.latch, EXCLUSIVE)
            if not leaf_covers(leaf, (key_value, rid)):
                # The leaf split while we waited for its latch (or the
                # cursor went stale); drop it and locate afresh.
                leaf.latch.release(self.system.sim.current)
                cursor.leaf_no = None
                continue
            pending: list[tuple] = []
            rejected = 0
            unique_check: Optional[tuple] = None
            try:
                while index < total:
                    key_value, rid = work[index]
                    composite = (key_value, rid)
                    if not leaf_covers(leaf, composite):
                        break  # next key lives elsewhere; re-locate
                    action = ib_classify(leaf, key_value, rid)
                    if action == "unique-check":
                        unique_check = (key_value, rid)
                        break
                    if action == "reject":
                        rejected += 1
                        index += 1
                        continue
                    target = insert_sorted(
                        leaf, KeyEntry(key_value, rid),
                        specialized_for_ib=True)
                    pending.append((key_value, tuple(rid)))
                    index += 1
                    cursor.leaf_no = target.page_no
                    cursor.version = self.structure_version
                    if target is not leaf:
                        # A split moved the insert frontier to a page we
                        # do not hold; end this latched group.
                        break
                # Counters are bumped once per latched group, not once
                # per key: same totals, a fraction of the dict traffic.
                if rejected:
                    metrics.incr("index.duplicate_rejections.ib", rejected)
                if pending:
                    inserted += len(pending)
                    metrics.incr("index.inserts.ib", len(pending))
                    if write_log:
                        self._log_ib_batch(ib_txn, pending)
            finally:
                leaf.latch.release(self.system.sim.current)
            if pending:
                fault_point(self.system.metrics, "btree.ib_insert")
                yield Delay(self.system.config.key_op_cost
                            * len(pending))
            if unique_check is not None:
                # Latch-free verification; may raise IndexBuildError.
                settled = yield from self._ib_unique_check(
                    ib_txn, *unique_check)
                if not settled:
                    index += 1  # key skipped (record vanished meanwhile)
                # else: retry the same key from the top
        return inserted

    def _leaf_covers(self, leaf: LeafPage,
                     composite: CompositeKey) -> bool:
        """Does ``composite`` belong in ``leaf``'s separator-fenced range?

        The fences come from the *parent separators*, not the leaf chain:
        a leaf emptied by rollbacks still owns its range, and its first
        entry may legally equal its own lower fence -- chain-derived
        bounds get both cases wrong.
        """
        low_fence, high_fence = self._leaf_bounds(leaf.page_no)
        if low_fence is not None and composite < low_fence:
            return False
        if high_fence is not None and composite >= high_fence:
            return False
        return True

    def _leaf_bounds(self, leaf_no: int
                     ) -> tuple[Optional[CompositeKey],
                                Optional[CompositeKey]]:
        """(lower fence, upper fence) of a leaf from its ancestors'
        separators; None means unbounded on that side.  Cached per
        structure version."""
        cache = self._bounds_cache
        if cache.get("version") != self.structure_version:
            cache.clear()
            cache["version"] = self.structure_version
        bounds = cache.get(leaf_no)
        if bounds is not None:
            return bounds
        path = self._path_to_leaf(leaf_no)
        low_fence: Optional[CompositeKey] = None
        high_fence: Optional[CompositeKey] = None
        for branch, slot in path:
            if slot > 0:
                candidate = branch.separators[slot - 1]
                if low_fence is None or candidate > low_fence:
                    low_fence = candidate
            if slot < len(branch.separators):
                candidate = branch.separators[slot]
                if high_fence is None or candidate < high_fence:
                    high_fence = candidate
        cache[leaf_no] = (low_fence, high_fence)
        return low_fence, high_fence

    def _locate_ib_leaf(self, cursor: IBCursor,
                        composite: CompositeKey) -> LeafPage:
        leaf = self._cursor_leaf(cursor, composite)
        if leaf is not None:
            self.system.metrics.incr("index.ib_path_reuses")
            return leaf
        leaf, _path = self._traverse(composite)
        cursor.leaf_no = leaf.page_no
        cursor.version = self.structure_version
        return leaf

    def _cursor_leaf(self, cursor: IBCursor,
                     composite: CompositeKey) -> Optional[LeafPage]:
        if cursor.leaf_no is None or cursor.version != self.structure_version:
            return None
        leaf = self.pages.get(cursor.leaf_no)
        if not isinstance(leaf, LeafPage):
            return None
        if not self._leaf_covers(leaf, composite):
            return None
        return leaf

    def _ib_classify(self, leaf: LeafPage, key_value, rid: RID) -> str:
        """Decide IB's action for one key under the leaf latch.

        Returns "insert", "reject", or "unique-check" (the caller must
        verify committedness with the latch released, then retry).
        """
        if not self.unique:
            if leaf.find_exact((key_value, rid)) is not None:
                # Section 2.2.3: rejected inserts write no log record.
                return "reject"
            return "insert"
        found = leaf.find_key_value(key_value)
        if found is None and leaf.next_leaf is not None:
            successor = self.pages[leaf.next_leaf]
            if successor.entries \
                    and successor.entries[0].key_value == key_value:
                found = successor.entries[0]
        if found is None:
            return "insert"
        if found.rid == rid:
            return "reject"
        return "unique-check"

    def _ib_unique_check(self, ib_txn, key_value, rid: RID):
        """Section 2.2.3: IB locks *both* records in share mode and
        re-verifies whether two committed records share the key value; if
        they do, the build is abnormally terminated.  Generator; returns
        True when the caller should retry the insert, False to skip the
        key (its record no longer exists or no longer has this key).
        """
        self.system.metrics.incr("index.ib_unique_checks")
        table = self.system.tables[self.table_name]
        _leaf, found = self._find_for_key_value(key_value)
        if found is None or found.rid == rid:
            return True
        yield from ib_txn.lock(self._record_lock_name(found.rid), "S",
                               instant=True)
        yield from ib_txn.lock(self._record_lock_name(rid), "S",
                               instant=True)
        # Both records are now settled; re-verify the conflict.
        _leaf, still = self._find_for_key_value(key_value)
        if still is None or still.rid == rid:
            return True
        mine = yield from table.read_latched(rid)
        if mine is None:
            return False  # our record was deleted; drop the key
        descriptor = self.system.indexes.get(self.name)
        if descriptor is not None \
                and descriptor.key_of(mine) != key_value:
            return False  # our record was updated away from this key
        if still.pseudo_deleted:
            # Tombstone of a settled delete: revive it under IB's RID.
            leaf, entry = self._find_for_key_value(key_value)
            if entry is not None and entry.pseudo_deleted:
                entry.rid = rid
                entry.pseudo_deleted = False
                self.system.metrics.incr("index.rid_replacements")
                self.system.metrics.incr("index.inserts.ib")
                return False  # handled here; no retry needed
            return True
        theirs = yield from table.read_latched(RID(*still.rid))
        if theirs is None:
            return True  # entry is stale; retry and re-evaluate
        if descriptor is not None \
                and descriptor.key_of(theirs) != key_value:
            return True
        raise IndexBuildError(
            f"cannot build unique index {self.name}: committed records "
            f"{rid} and {tuple(still.rid)} share key value {key_value!r}")

    def sf_drain_apply(self, ib_txn: "Transaction", operation: str,
                       key_value, rid: RID):
        """Generator: apply one side-file entry to the tree (section 3.2.5).

        IB "traverses the index from the root and, based on the entry in
        the side-file, inserts or deletes the key in the index as a normal
        transaction would do.  That is, IB writes undo-redo log records".
        SF does not need pseudo deletion (section 4), so deletes are
        physical.  Exact-composite matching keeps the drain idempotent; a
        unique index may transiently hold two RIDs for one key value until
        a later DELETE entry drains (final uniqueness is verified by the
        builder when the drain completes).
        """
        rid = RID(*rid)
        composite = (key_value, rid)
        leaf, path = self._traverse(composite)
        yield Acquire(leaf.latch, EXCLUSIVE)
        try:
            self._sf_apply_one(ib_txn, leaf, operation, key_value, rid)
        finally:
            leaf.latch.release(self.system.sim.current)
        fault_point(self.system.metrics, "btree.drain_apply")
        yield Delay(self.system.config.key_op_cost
                    + self.system.config.drain_visit_cost * (len(path) + 1))

    def _sf_apply_one(self, ib_txn, leaf: LeafPage, operation: str,
                      key_value, rid: RID) -> None:
        """Apply one side-file entry to a latched leaf (no yields)."""
        composite = (key_value, rid)
        exact = leaf.find_exact(composite)
        if operation == "insert":
            if exact is None:
                self._insert_sorted(leaf, KeyEntry(key_value, rid))
                self._log_key_op(ib_txn, "insert", key_value, rid,
                                 undo_action="physical_delete")
                self.system.metrics.incr("index.inserts.drain")
            elif exact.pseudo_deleted:
                exact.pseudo_deleted = False
                self._log_key_op(ib_txn, "reactivate", key_value, rid,
                                 undo_action="pseudo_delete")
        else:  # delete
            if exact is not None:
                pos = leaf.position(composite)
                del leaf.entries[pos]
                self._log_key_op(ib_txn, "physical_delete", key_value,
                                 rid, undo_action="insert")
                self.system.metrics.incr("index.deletes.drain")

    def sf_drain_apply_batch(self, ib_txn: "Transaction",
                             entries: Sequence[tuple]):
        """Generator: apply a batch of side-file entries (section 3.2.5).

        Semantically ``sf_drain_apply`` per entry, but one traversal and
        one leaf-latch hold cover every consecutive entry that still falls
        inside the latched leaf's fences; the first entry outside them
        re-traverses.  WAL records are written per entry (unchanged) and
        the per-entry ``btree.drain_apply`` fault site still fires at
        every entry when an injector is installed.  The simulated charge
        per latch hold is ``key_op_cost`` per entry plus
        ``drain_visit_cost`` per page the one descent visited; with a
        nonzero ``drain_visit_cost`` batching shrinks the drain's
        catch-up window by amortizing descents (EXPERIMENTS.md E19) --
        the per-entry path pays that descent for every entry.  At the
        default ``drain_visit_cost = 0`` the total equals the per-entry
        path exactly, preserving the baseline calibration.

        ``entries`` is a sequence of ``(operation, key_value, rid)``.
        Returns the number of entries applied.
        """
        metrics = self.system.metrics
        fp_enabled = fault_points_enabled(metrics)
        key_op_cost = self.system.config.key_op_cost
        visit_cost = self.system.config.drain_visit_cost
        leaf_covers = self._leaf_covers
        apply_one = self._sf_apply_one
        # Side-file entries already carry RID instances; re-wrapping every
        # one allocated a throwaway tuple per key in the drain hot loop.
        work = [(op, kv, rid if type(rid) is RID else RID(*rid))
                for op, kv, rid in entries]
        total = len(work)
        applied = 0
        index = 0
        while index < total:
            operation, key_value, rid = work[index]
            leaf, path = self._traverse((key_value, rid))
            yield Acquire(leaf.latch, EXCLUSIVE)
            group = 0
            try:
                while index < total:
                    operation, key_value, rid = work[index]
                    if not leaf_covers(leaf, (key_value, rid)):
                        # Either the leaf split while we waited for the
                        # latch (group == 0) or the next entry lives
                        # elsewhere; re-traverse.
                        break
                    apply_one(ib_txn, leaf, operation, key_value, rid)
                    index += 1
                    group += 1
                    if fp_enabled:
                        fault_point(metrics, "btree.drain_apply")
            finally:
                leaf.latch.release(self.system.sim.current)
            if group:
                applied += group
                yield Delay(key_op_cost * group
                            + visit_cost * (len(path) + 1))
        return applied

    def verify_unique(self) -> None:
        """Raise :class:`IndexBuildError` if a unique tree holds two live
        entries with one key value (checked when an SF drain finishes)."""
        if not self.unique:
            return
        previous = None
        for entry in self.all_entries():
            if previous is not None and previous.key_value == entry.key_value:
                raise IndexBuildError(
                    f"cannot build unique index {self.name}: records "
                    f"{tuple(previous.rid)} and {tuple(entry.rid)} share "
                    f"key value {entry.key_value!r}")
            previous = entry

    # -- IB batch logging ------------------------------------------------

    def _log_ib_batch(self, ib_txn, keys: list[tuple]) -> None:
        """One undo-redo record covering the keys just inserted under a
        single leaf-latch hold ("the log record can contain multiple
        keys", section 2.2.3).

        Redo and undo share one key list: both handlers are read-only
        over the payload, so one defensive copy of the caller's list is
        enough (the second copy showed up in IB-insert profiles).
        """
        key_list = list(keys)
        ib_txn.log(
            RecordKind.UPDATE,
            redo=("index.apply", {"index": self.name,
                                  "action": "insert_many",
                                  "keys": key_list}),
            undo=("index.undo", {"index": self.name,
                                 "action": "remove_many",
                                 "keys": key_list}),
            info={"index": self.name},
            writer="ib",
        )

    # ------------------------------------------------------------------
    # logging helpers
    # ------------------------------------------------------------------

    def _log_key_op(self, txn, action: str, key_value, rid, *,
                    undo_action: str, extra: Optional[dict] = None) -> None:
        args = {"index": self.name, "action": action,
                "key_value": key_value, "rid": tuple(rid)}
        undo_args = {"index": self.name, "action": undo_action,
                     "key_value": key_value, "rid": tuple(rid)}
        if extra:
            args.update(extra)
            undo_args.update(extra)
        txn.log(RecordKind.UPDATE,
                redo=("index.apply", args),
                undo=("index.undo", undo_args),
                info={"index": self.name})

    # ------------------------------------------------------------------
    # logical apply (shared by redo and undo)
    # ------------------------------------------------------------------

    def apply_logical(self, action: str, key_value, rid, *,
                      extra: Optional[dict] = None) -> None:
        """Apply one logical key operation, idempotently.

        Used by restart-recovery redo and by rollback's logical undo; the
        tree is traversed afresh because the key may have moved pages
        since the log record was written.
        """
        if action in ("insert_many", "remove_many"):
            # remove_many is the undo of IB's insert_many.  A concurrent
            # transaction may have pseudo-deleted one of these keys since
            # IB inserted it (section 2.2.3 direct maintenance); that
            # tombstone is the *deleter's* history and must survive IB's
            # rollback -- physically removing it would let the resumed
            # build re-insert a key whose record is gone.
            inner = ("insert" if action == "insert_many"
                     else "remove_unless_tombstoned")
            for kv, r in extra["keys"]:
                self.apply_logical(inner, kv, r)
            return
        rid = RID(*rid)
        composite = (key_value, rid)
        leaf = self._leaf_holding(composite)
        if leaf is None:
            leaf = self._ensure_root()
        exact = leaf.find_exact(composite)
        if action == "insert":
            if exact is None:
                self._insert_sorted(leaf, KeyEntry(key_value, rid))
            else:
                exact.pseudo_deleted = False
        elif action == "insert_tombstone":
            if exact is None:
                self._insert_sorted(
                    leaf, KeyEntry(key_value, rid, pseudo_deleted=True))
            else:
                exact.pseudo_deleted = True
        elif action == "pseudo_delete":
            if exact is not None:
                exact.pseudo_deleted = True
        elif action == "reactivate":
            if exact is not None:
                exact.pseudo_deleted = False
            else:
                self._insert_sorted(leaf, KeyEntry(key_value, rid))
        elif action == "physical_delete":
            if exact is not None:
                pos = leaf.position(composite)
                del leaf.entries[pos]
        elif action == "remove_unless_tombstoned":
            if exact is not None and not exact.pseudo_deleted:
                pos = leaf.position(composite)
                del leaf.entries[pos]
        elif action == "replace_rid":
            old_rid = RID(*extra["old_rid"])
            old_leaf = self._leaf_holding((key_value, old_rid))
            old_entry = (old_leaf.find_exact((key_value, old_rid))
                         if old_leaf is not None else None)
            if old_entry is not None:
                old_entry.rid = rid
                old_entry.pseudo_deleted = False
            elif exact is not None:
                exact.pseudo_deleted = False
        elif action == "restore_entry":
            # undo of replace_rid: put back <key, old_rid> pseudo-deleted
            old_rid = RID(*extra["old_rid"])
            if exact is not None:
                exact.rid = old_rid
                exact.pseudo_deleted = bool(extra.get("old_pseudo", True))
        else:  # pragma: no cover - exhaustive dispatch
            raise StorageError(f"unknown index action {action!r}")

    def _leaf_holding(self, composite: CompositeKey) -> Optional[LeafPage]:
        if self.root is None:
            return None
        node = self.pages[self.root]
        while isinstance(node, BranchPage):
            child_no, _slot = node.child_for(composite)
            node = self.pages[child_no]
        return node

    # ------------------------------------------------------------------
    # recovery integration
    # ------------------------------------------------------------------

    def _register_operations(self) -> None:
        ops = self.system.log.operations
        if ops.knows("index.apply"):
            return
        ops.register("index.apply", redo=_redo_index)
        ops.register("index.split", redo=_redo_noop)
        ops.register("index.undo", redo=_reject_redo, undo=_undo_index)

    def force(self) -> None:
        """Write a stable snapshot of the whole tree.

        Models "after all the dirty pages of the index have been written
        to disk" (section 3.2.4).  Log records at or below the recorded
        ``durable_lsn`` need no redo after a crash.
        """
        kind = fault_point(self.system.metrics, "btree.force")
        if kind is not None:
            # Torn write: the snapshot lands on disk damaged but
            # detectably so (a checksum mismatch), then power fails.
            self._snapshot = {"__torn__": True}
            self._snapshot_durable_lsn = self.system.log.last_lsn
            raise InjectedCrash(
                f"torn snapshot write of index {self.name}")
        # WAL rule for the snapshot write: the snapshot carries the
        # effects of every record up to last_lsn, so none of them may be
        # lost in a crash or the stable image gets ahead of the log (an
        # unflushed loser's index op would survive while its heap op and
        # its very existence vanish -- found by the crash sweep).
        self.system.log.flush(self.system.log.last_lsn)
        self._snapshot = self._serialize()
        self.durable_lsn = self.system.log.last_lsn
        self._snapshot_durable_lsn = self.durable_lsn
        self.media_damaged = False
        self.system.metrics.incr("index.forces")
        fault_point(self.system.metrics, "btree.force.after")

    def crash(self) -> None:
        """Revert to the last stable snapshot (or empty)."""
        if self._snapshot is not None and self._snapshot.get("__torn__"):
            # The stable image failed its checksum: nothing of the tree
            # is usable.  Flag it so restart picks a rebuild strategy
            # (full log replay for NSF, run re-extraction for SF).
            self.pages.clear()
            self.root = None
            self._next_page_no = 0
            self.structure_version += 1
            self.durable_lsn = 0
            self._snapshot = None
            self._snapshot_durable_lsn = 0
            self.media_damaged = True
            return
        if self._snapshot is None:
            self.pages.clear()
            self.root = None
            self._next_page_no = 0
            self.structure_version += 1
            self.durable_lsn = 0
            return
        self._deserialize(self._snapshot)
        self.structure_version += 1
        self.durable_lsn = self._snapshot_durable_lsn

    def _serialize(self) -> dict:
        pages = {}
        for no, page in self.pages.items():
            if isinstance(page, LeafPage):
                pages[no] = ("leaf", page.capacity, page.next_leaf,
                             [(e.key_value, tuple(e.rid), e.pseudo_deleted)
                              for e in page.entries])
            else:
                pages[no] = ("branch", page.capacity,
                             list(page.separators), list(page.children))
        return {"pages": pages, "root": self.root,
                "next_page_no": self._next_page_no}

    def _deserialize(self, blob: dict) -> None:
        self.pages.clear()
        for no, data in blob["pages"].items():
            if data[0] == "leaf":
                _kind, capacity, next_leaf, entries = data
                leaf = LeafPage(no, capacity, metrics=self.system.metrics)
                leaf.next_leaf = next_leaf
                leaf.entries = [KeyEntry(kv, RID(*r), pd)
                                for kv, r, pd in entries]
                self.pages[no] = leaf
            else:
                _kind, capacity, separators, children = data
                branch = BranchPage(no, capacity,
                                    metrics=self.system.metrics)
                branch.separators = [tuple(s) for s in separators]
                branch.children = list(children)
                self.pages[no] = branch
        self.root = blob["root"]
        self._next_page_no = blob["next_page_no"]

    # ------------------------------------------------------------------
    # read access and audits
    # ------------------------------------------------------------------

    def search(self, key_value, rid: Optional[RID] = None):
        """Generator: latch-and-read one entry (or first for key value)."""
        if rid is not None:
            leaf, _path = self._traverse((key_value, rid))
        else:
            leaf, _entry = self._find_for_key_value(key_value)
            self.system.metrics.incr("index.traversals")
        yield Acquire(leaf.latch, SHARE)
        try:
            if rid is not None:
                entry = leaf.find_exact((key_value, rid))
            else:
                entry = leaf.find_key_value(key_value)
        finally:
            leaf.latch.release(self.system.sim.current)
        yield Delay(self.system.config.tree_visit_cost)
        return entry

    def leaf_chain(self) -> Iterator[LeafPage]:
        """Leaves in key order (audit; no latching)."""
        if self.root is None:
            return
        node = self.pages[self.root]
        while isinstance(node, BranchPage):
            node = self.pages[node.children[0]]
        while node is not None:
            yield node
            node = (self.pages[node.next_leaf]
                    if node.next_leaf is not None else None)

    def all_entries(self, include_pseudo_deleted: bool = False
                    ) -> Iterator[KeyEntry]:
        for leaf in self.leaf_chain():
            for entry in leaf.entries:
                if include_pseudo_deleted or not entry.pseudo_deleted:
                    yield entry

    def key_count(self, include_pseudo_deleted: bool = False) -> int:
        return sum(1 for _ in self.all_entries(include_pseudo_deleted))

    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def height(self) -> int:
        if self.root is None:
            return 0
        depth = 1
        node = self.pages[self.root]
        while isinstance(node, BranchPage):
            node = self.pages[node.children[0]]
            depth += 1
        return depth

    def clustering_factor(self) -> float:
        """Fraction of adjacent leaf pairs stored in physical order.

        Section 4: "consecutive keys being on consecutive pages on disk";
        1.0 means an ascending full scan reads the index file sequentially
        (the bottom-up ideal of section 2.3.1).
        """
        leaves = list(self.leaf_chain())
        if len(leaves) <= 1:
            return 1.0
        in_order = sum(1 for a, b in zip(leaves, leaves[1:])
                       if b.page_no > a.page_no)
        return in_order / (len(leaves) - 1)


# -- recovery handlers (generators) ----------------------------------------


def _redo_index(system: "System", record: LogRecord):
    _op, args = record.redo
    tree = _tree_for(system, args["index"])
    if tree is None or record.lsn <= tree.durable_lsn:
        return
    action = args["action"]
    if action in ("insert_many", "remove_many"):
        tree.apply_logical(action, None, (0, 0), extra=args)
    else:
        tree.apply_logical(action, args["key_value"], args["rid"],
                           extra=args)
    system.metrics.incr("recovery.index_redos")
    return
    yield  # pragma: no cover - generator shape


def _redo_noop(system: "System", record: LogRecord):
    return
    yield  # pragma: no cover


def _reject_redo(system: "System", record: LogRecord):  # pragma: no cover
    raise AssertionError("index undo payloads are never redone")


def _undo_index(system: "System", txn: "Transaction", record: LogRecord):
    _op, args = record.undo
    tree = _tree_for(system, args["index"])
    if tree is not None and tree.media_damaged:
        # A damaged tree is rebuilt wholesale (log replay or run
        # re-extraction); logical undo against the empty shell would
        # plant stale entries.  The CLR is still written below so the
        # undo chain stays well-formed.
        tree = None
    if tree is not None:
        action = args["action"]
        if action in ("insert_many", "remove_many"):
            tree.apply_logical(action, None, (0, 0), extra=args)
        else:
            tree.apply_logical(action, args["key_value"], args["rid"],
                               extra=args)
        system.metrics.incr("index.logical_undos")
    clr_redo = ("index.apply", dict(args))
    yield Delay(system.config.key_op_cost)
    return clr_redo, None


def _tree_for(system: "System", index_name: str):
    descriptor = system.indexes.get(index_name)
    if descriptor is None:
        return None
    return getattr(descriptor, "tree", None)
