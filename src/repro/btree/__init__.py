"""B+-tree index manager with pseudo-delete and online-build support."""

from repro.btree.audit import TreeAuditError, audit_tree
from repro.btree.loader import BulkLoader
from repro.btree.node import BranchPage, KeyEntry, LeafPage
from repro.btree.tree import BTree, IBCursor, InsertOutcome

__all__ = [
    "BTree",
    "BulkLoader",
    "BranchPage",
    "IBCursor",
    "InsertOutcome",
    "KeyEntry",
    "LeafPage",
    "TreeAuditError",
    "audit_tree",
]
