"""Structural audit of a B+-tree.

Section 2.2.3 promises that "the index tree would be in a structurally
consistent state after restart or process recovery".  The audit makes that
promise checkable: it verifies ordering, separator correctness, balance,
leaf-chain integrity, and capacity bounds, raising
:class:`TreeAuditError` with a precise description on the first violation.

Tests and experiments call :func:`audit_tree` after every build, crash,
restart, and adversarial schedule.
"""

from __future__ import annotations

from typing import Optional

from repro.btree.node import BranchPage, CompositeKey, LeafPage
from repro.btree.tree import BTree
from repro.errors import ReproError


class TreeAuditError(ReproError):
    """The B+-tree violates a structural invariant."""


def audit_tree(tree: BTree) -> dict:
    """Verify every structural invariant; returns summary statistics.

    Checks:

    * every leaf's entries are strictly sorted by composite key;
    * all entries under a branch child respect the surrounding separators;
    * all leaves are at the same depth (balance);
    * the leaf chain visits exactly the tree's leaves, in key order;
    * no page exceeds its capacity;
    * a unique tree has at most one entry per key value.
    """
    if tree.root is None:
        return {"leaves": 0, "entries": 0, "height": 0}

    stats = {"leaves": 0, "entries": 0, "branches": 0}
    leaf_depths: set[int] = set()
    leaves_in_tree: list[LeafPage] = []

    def visit(page_no: int, low: Optional[CompositeKey],
              high: Optional[CompositeKey], depth: int) -> None:
        page = tree.pages.get(page_no)
        if page is None:
            raise TreeAuditError(f"{tree.name}: dangling child {page_no}")
        if isinstance(page, LeafPage):
            stats["leaves"] += 1
            leaf_depths.add(depth)
            leaves_in_tree.append(page)
            if len(page.entries) > page.capacity:
                raise TreeAuditError(
                    f"{tree.name}: leaf {page_no} over capacity "
                    f"({len(page.entries)} > {page.capacity})")
            previous = None
            for entry in page.entries:
                composite = entry.composite
                if previous is not None and composite <= previous:
                    raise TreeAuditError(
                        f"{tree.name}: leaf {page_no} out of order at "
                        f"{composite!r}")
                if low is not None and composite < low:
                    raise TreeAuditError(
                        f"{tree.name}: leaf {page_no} entry {composite!r} "
                        f"below separator {low!r}")
                if high is not None and composite >= high:
                    raise TreeAuditError(
                        f"{tree.name}: leaf {page_no} entry {composite!r} "
                        f"not below separator {high!r}")
                previous = composite
                stats["entries"] += 1
            return
        # Branch page.
        stats["branches"] += 1
        if len(page.children) != len(page.separators) + 1:
            raise TreeAuditError(
                f"{tree.name}: branch {page_no} has {len(page.children)} "
                f"children for {len(page.separators)} separators")
        if len(page.children) > page.capacity + 1:
            raise TreeAuditError(
                f"{tree.name}: branch {page_no} over capacity")
        previous = None
        for separator in page.separators:
            if previous is not None and separator <= previous:
                raise TreeAuditError(
                    f"{tree.name}: branch {page_no} separators out of "
                    f"order at {separator!r}")
            if low is not None and separator < low:
                raise TreeAuditError(
                    f"{tree.name}: branch {page_no} separator "
                    f"{separator!r} below bound {low!r}")
            if high is not None and separator > high:
                raise TreeAuditError(
                    f"{tree.name}: branch {page_no} separator "
                    f"{separator!r} above bound {high!r}")
            previous = separator
        bounds = [low] + list(page.separators) + [high]
        for index, child in enumerate(page.children):
            visit(child, bounds[index], bounds[index + 1], depth + 1)

    visit(tree.root, None, None, 1)

    if len(leaf_depths) > 1:
        raise TreeAuditError(
            f"{tree.name}: unbalanced -- leaves at depths {leaf_depths}")

    chained = list(tree.leaf_chain())
    if [leaf.page_no for leaf in chained] \
            != [leaf.page_no for leaf in leaves_in_tree]:
        raise TreeAuditError(
            f"{tree.name}: leaf chain does not match tree order "
            f"(chain {[l.page_no for l in chained]} vs "
            f"tree {[l.page_no for l in leaves_in_tree]})")

    all_composites = [entry.composite
                      for leaf in chained for entry in leaf.entries]
    if all_composites != sorted(all_composites):
        raise TreeAuditError(f"{tree.name}: global key order broken")

    if tree.unique:
        key_values = [entry.key_value
                      for leaf in chained for entry in leaf.entries]
        if len(key_values) != len(set(key_values)):
            raise TreeAuditError(
                f"{tree.name}: unique tree holds duplicate key values")

    stats["height"] = max(leaf_depths) if leaf_depths else 0
    return stats
