"""B+-tree page layouts.

Index pages hold ``<key value, RID>`` entries (section 1.1).  Every key
carries the paper's 1-bit *pseudo-delete* flag (section 2.1.2: "A 1-bit
flag is associated with every key in the index to indicate whether the key
is pseudo deleted or not").

Composite ordering is ``(key value, RID)``: for a nonunique index two
entries may share a key value and are ordered by RID; a unique index keeps
at most one entry per key value (pseudo-deleted or not).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, Optional

from repro.metrics import MetricsRegistry
from repro.sim.latch import Latch

#: A composite key: (key_value, rid) where rid is a RID tuple.
CompositeKey = tuple

#: module-level bisect key extractors: building a closure per ``position``
#: call showed up in the IB-insert hot path, so the extractors are shared.
def _entry_composite(entry: "KeyEntry") -> CompositeKey:
    return (entry.key_value, entry.rid)


def _entry_key_value(entry: "KeyEntry"):
    return entry.key_value


class KeyEntry:
    """One index entry: key value, RID, and the pseudo-delete flag."""

    __slots__ = ("key_value", "rid", "pseudo_deleted")

    def __init__(self, key_value, rid, pseudo_deleted: bool = False) -> None:
        self.key_value = key_value
        self.rid = rid
        self.pseudo_deleted = pseudo_deleted

    @property
    def composite(self) -> CompositeKey:
        return (self.key_value, self.rid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mark = "~" if self.pseudo_deleted else ""
        return f"<{mark}{self.key_value!r}@{self.rid}>"


class IndexPage:
    """Base class for leaf and branch pages of one index tree."""

    __slots__ = ("page_no", "latch")

    def __init__(self, page_no: int,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.page_no = page_no
        self.latch = Latch(f"index:{page_no}", metrics=metrics)


class LeafPage(IndexPage):
    """A leaf: sorted entries plus the next-leaf chain pointer."""

    __slots__ = ("entries", "next_leaf", "capacity")

    def __init__(self, page_no: int, capacity: int,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        super().__init__(page_no, metrics=metrics)
        self.entries: list[KeyEntry] = []
        self.next_leaf: Optional[int] = None
        self.capacity = capacity

    # -- searching ---------------------------------------------------------

    def position(self, composite: CompositeKey) -> int:
        """Insertion point for ``composite`` among the sorted entries."""
        return bisect_left(self.entries, composite, key=_entry_composite)

    def find_exact(self, composite: CompositeKey) -> Optional[KeyEntry]:
        """The entry equal to ``composite``, if present."""
        pos = self.position(composite)
        if pos < len(self.entries) \
                and self.entries[pos].composite == composite:
            return self.entries[pos]
        return None

    def find_key_value(self, key_value) -> Optional[KeyEntry]:
        """First entry with this key value (for unique-index checks)."""
        pos = bisect_left(self.entries, key_value, key=_entry_key_value)
        if pos < len(self.entries) \
                and self.entries[pos].key_value == key_value:
            return self.entries[pos]
        return None

    # -- properties ------------------------------------------------------------

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def low_composite(self) -> Optional[CompositeKey]:
        return self.entries[0].composite if self.entries else None

    @property
    def high_composite(self) -> Optional[CompositeKey]:
        return self.entries[-1].composite if self.entries else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Leaf {self.page_no} n={len(self.entries)} "
                f"next={self.next_leaf}>")


class BranchPage(IndexPage):
    """An internal page: separators and child page numbers.

    ``children[i]`` covers composites < ``separators[i]``;
    ``children[-1]`` covers the rest.  So
    ``len(children) == len(separators) + 1``.
    """

    __slots__ = ("separators", "children", "capacity")

    def __init__(self, page_no: int, capacity: int,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        super().__init__(page_no, metrics=metrics)
        self.separators: list[CompositeKey] = []
        self.children: list[int] = []
        self.capacity = capacity

    def child_for(self, composite: CompositeKey) -> tuple[int, int]:
        """(child page number, child slot) covering ``composite``.

        A separator equals the lowest composite of the child to its right,
        so an exact match routes right: ``bisect_right`` semantics.
        """
        slot = bisect_right(self.separators, composite)
        return self.children[slot], slot

    @property
    def is_full(self) -> bool:
        return len(self.children) > self.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Branch {self.page_no} fanout={len(self.children)}>"
