"""``python -m repro.slo`` -- latency report from a trace JSONL file.

Reads a ``repro.obs`` trace (e.g. written by ``TraceRecorder.to_jsonl``)
and prints the :func:`repro.slo.analyzer.latency_report` as JSON::

    python -m repro.slo build.trace.jsonl
    python -m repro.slo build.trace.jsonl --window 120 850 --all-outcomes
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.slo.analyzer import latency_report, parse_trace


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.slo",
        description="latency-SLO report from a repro.obs trace JSONL")
    parser.add_argument("trace", help="trace JSONL file (- for stdin)")
    parser.add_argument("--span", default="op",
                        help="span name to analyze (default: op)")
    parser.add_argument("--window", nargs=2, type=float, default=None,
                        metavar=("T0", "T1"),
                        help="only operations issued in [T0, T1]")
    parser.add_argument("--all-outcomes", action="store_true",
                        help="include aborted/errored operations")
    args = parser.parse_args(argv)

    if args.trace == "-":
        text = sys.stdin.read()
    else:
        with open(args.trace, "r", encoding="utf-8") as handle:
            text = handle.read()
    events = parse_trace(text)
    try:
        report = latency_report(
            events, span_name=args.span,
            only_outcome=None if args.all_outcomes else "committed",
            window=tuple(args.window) if args.window else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
