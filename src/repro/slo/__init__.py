"""Latency SLOs: percentile analysis of open-loop traces, and the
build-throttle tradeoff suite (``python -m repro.slo.tradeoff``).

The paper's availability claim is about *user-visible* latency: an
online build is only "non-quiescing" if foreground transactions keep
meeting their SLO while IB runs.  :mod:`repro.slo.analyzer` turns a
``repro.obs`` trace (the ``op`` spans stamped by
:class:`repro.workloads.OpenLoopDriver`) into p50/p95/p99 latencies and
queue-depth high-water marks; :mod:`repro.slo.tradeoff` sweeps the
:attr:`repro.system.SystemConfig.build_rate_limit` throttle across all
four builders and emits the build-time-vs-p99 tradeoff curve as
schema-stable JSON gated in CI against ``BENCH_PR6.json``.
"""

from repro.slo.analyzer import (
    latency_report,
    parse_trace,
    percentile,
    queue_high_water,
)

__all__ = [
    "latency_report",
    "parse_trace",
    "percentile",
    "queue_high_water",
]
