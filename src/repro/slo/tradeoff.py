"""Build-time-vs-latency tradeoff suite (``python -m repro.slo.tradeoff``).

The paper removes the *correctness* reason to quiesce updates; this
suite measures the remaining *performance* reason.  Every scenario runs
the same deterministic open-loop traffic (:class:`repro.workloads.
OpenLoopDriver`) against a shared single-channel disk
(``disk_channels=1``) while one builder constructs the index, sweeping
the IB admission-control throttle
(:attr:`repro.system.SystemConfig.build_rate_limit`) from unthrottled
down to the tightest setting.  For each run it records the simulated
build time and the foreground latency report *windowed to operations
issued while the build was running* -- the whole-run p99 would invert
the curve (a slower, throttled build disturbs more of the run), while
the windowed p99 shows what the throttle actually buys: the latency of
the traffic that coexists with the build.

Every headline number is on the simulated clock, so the payload is
machine-independent and CI can gate byte-for-byte against the committed
``BENCH_PR6.json`` (``--check-against``).  The suite also self-gates:

* **monotone build time** -- each online builder's build must take at
  least as long at every tighter throttle step, and strictly longer at
  the tightest step than unthrottled (the throttle does throttle);
* **p99 protection** -- at the tightest throttle each *online*
  builder's windowed p99 must stay within
  :data:`P99_PROTECTION_FACTOR` of the no-build baseline's p99.  The
  offline builder is swept for contrast but excluded from this gate:
  it X-locks the table, so foreground latency during the build is the
  quiesce time, which no admission throttle can fix (sections 1-2 --
  the reason the online algorithms exist).

Usage::

    python -m repro.slo.tradeoff --out BENCH_PR6.json
    python -m repro.slo.tradeoff --smoke --out /tmp/now.json \\
        --check-against BENCH_PR6.json --max-regression 0.30

The smoke mode runs a strict subset of the full scenarios (the
unthrottled and tightest-throttle endpoints) with identical parameters,
so its simulated results must match the committed full baseline's rows
exactly; the tolerance only absorbs deliberate recalibrations.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Optional

from repro.core import BuildOptions, IndexSpec, get_builder
from repro.obs import enable_tracing
from repro.slo.analyzer import latency_report
from repro.system import System, SystemConfig
from repro.workloads import OpenLoopDriver, OpenLoopSpec

SCHEMA_VERSION = 1
SUITE_NAME = "repro.slo.tradeoff"

#: the p99-protection gate: at the tightest throttle, each online
#: builder's windowed foreground p99 must not exceed the no-build
#: baseline's p99 by more than this factor
P99_PROTECTION_FACTOR = 1.2

#: builders swept (offline included for contrast; the p99 gate skips it)
BUILDERS = ("offline", "nsf", "sf", "psf")

#: builders the p99-protection gate applies to
ONLINE_BUILDERS = ("nsf", "sf", "psf")

#: throttle sweep, loosest to tightest (None = unthrottled).  The smoke
#: mode keeps only the endpoints; the values are work items (pages
#: scanned / keys loaded / entries drained) per simulated time unit.
FULL_RATES: tuple[Optional[float], ...] = (None, 0.4, 0.1, 0.05)
SMOKE_RATES: tuple[Optional[float], ...] = (None, 0.05)

#: one fixed traffic/system shape for every scenario -- the sweep
#: varies ONLY the builder and its throttle, so rows are comparable
PARAMS = {
    "seed": 11,
    "rows": 320,
    "operations": 150,
    "arrival_rate": 0.05,
    "key_space": 2000,
    "buffer_frames": 32,
    "disk_channels": 1,
    "partitions": 2,
}

#: bursty-arrival add-on scenarios: the same traffic mean rate, but
#: arrivals alternate between a peak and a trough (coordinated-omission
#: stress -- backlog built during a burst inflates the tail).  Swept for
#: the sf builder at the throttle endpoints against a bursty no-build
#: baseline; the rows are gated when present but are not required, so
#: payloads from before the bursty sweep still validate.
BURSTY_BUILDER = "sf"
BURSTY_RATES: tuple[Optional[float], ...] = (None, 0.05)
BURSTY_PARAMS = {
    "arrivals": "bursty",
    "burst_factor": 4.0,
    "burst_fraction": 0.25,
    "burst_period": 40.0,
}

#: metric counters copied into each scenario (when present)
INTERESTING_COUNTERS = (
    "build.pages_scanned",
    "build.sidefile_drained",
    "build.throttle_charges",
    "build.throttle_waits",
    "sidefile.appends",
    "semaphore.disk.requests",
    "semaphore.disk.waits",
    "index.inserts.ib",
)


def rate_label(rate: Optional[float]) -> str:
    """Stable scenario-name fragment for a throttle rate."""
    return "none" if rate is None else f"{rate:g}"


def _run_traffic(builder: Optional[str], rate: Optional[float],
                 arrivals: str = "poisson") -> dict:
    """One deterministic run: open-loop traffic, optionally one build.

    Returns the scenario body: params, simulated ``build_time`` (absent
    for the baseline), the windowed latency report, and counters.
    """
    config = SystemConfig(
        page_capacity=8, leaf_capacity=8, branch_capacity=8,
        buffer_frames=PARAMS["buffer_frames"],
        sort_workspace=32, merge_fanin=4,
        disk_channels=PARAMS["disk_channels"],
        build_rate_limit=rate)
    system = System(config, seed=PARAMS["seed"])
    recorder = enable_tracing(system)
    table = system.create_table("t", ["k", "p"])
    burst = dict(BURSTY_PARAMS) if arrivals == "bursty" else {}
    spec = OpenLoopSpec(operations=PARAMS["operations"],
                        rate=PARAMS["arrival_rate"],
                        range_weight=0.0,
                        key_space=PARAMS["key_space"],
                        **burst)
    driver = OpenLoopDriver(system, table, spec, seed=PARAMS["seed"],
                            index_name="idx")
    system.spawn(driver.preload(PARAMS["rows"]), name="preload")
    system.run()

    done: dict[str, float] = {}
    if builder is not None:
        opts = {"checkpoint_every_keys": 200, "commit_every_keys": 128,
                "prefetch_pages": 2}
        if builder == "psf":
            opts["partitions"] = PARAMS["partitions"]
        build = get_builder(builder)(system, table,
                                     IndexSpec.of("idx", ["k"]),
                                     BuildOptions(**opts))

        def timed():
            done["start"] = system.sim.now
            yield from build.run()
            done["build_time"] = system.sim.now - done["start"]

        system.spawn(timed(), name="builder")
    dispatcher = driver.spawn()
    system.run()
    if dispatcher.error is not None:
        raise dispatcher.error
    if builder is not None and "build_time" not in done:
        raise AssertionError(f"{builder} build did not finish")

    window = (done["start"], done["start"] + done["build_time"]) \
        if "build_time" in done else None
    report = latency_report(recorder.events, window=window)
    params = dict(PARAMS)
    params["builder"] = builder
    params["build_rate_limit"] = rate
    params["arrivals"] = arrivals
    if burst:
        params.update(burst)
    scenario: dict[str, Any] = {"params": params, "latency": report}
    if builder is not None:
        scenario["build_time"] = done["build_time"]
        scenario["window"] = list(window)
        scenario["counters"] = {
            key: system.metrics.get(key) for key in INTERESTING_COUNTERS
            if system.metrics.get(key)}
    return scenario


def _scenarios(mode: str) -> list[tuple[str, str, Callable[[], dict]]]:
    rates = SMOKE_RATES if mode == "smoke" else FULL_RATES
    entries: list[tuple[str, str, Callable[[], dict]]] = [
        ("baseline", "baseline", lambda: _run_traffic(None, None))]
    for builder in BUILDERS:
        for rate in rates:
            entries.append((
                f"tradeoff/{builder}/rate_{rate_label(rate)}",
                "build",
                lambda b=builder, r=rate: _run_traffic(b, r)))
    entries.append(("bursty/baseline", "baseline",
                    lambda: _run_traffic(None, None, arrivals="bursty")))
    for rate in BURSTY_RATES:
        entries.append((
            f"bursty/{BURSTY_BUILDER}/rate_{rate_label(rate)}",
            "build",
            lambda r=rate: _run_traffic(BURSTY_BUILDER, r,
                                        arrivals="bursty")))
    return entries


# ---------------------------------------------------------------------------
# suite driver, schema, gates, CLI
# ---------------------------------------------------------------------------


def run_suite(mode: str = "full", *, only: Optional[str] = None,
              echo: Callable[[str], None] = lambda line: None) -> dict:
    """Run every scenario; never raises -- failures land in the JSON."""
    scenarios: list[dict] = []
    for name, kind, thunk in _scenarios(mode):
        if only is not None and not name.startswith(only):
            continue
        scenario: dict[str, Any] = {"name": name, "kind": kind,
                                    "ok": True}
        try:
            scenario.update(thunk())
        except Exception as exc:  # noqa: BLE001 - recorded, gated later
            scenario["ok"] = False
            scenario["error"] = f"{type(exc).__name__}: {exc}"
            echo(f"  FAIL {name}: {scenario['error']}")
        else:
            latency = scenario["latency"]
            build = scenario.get("build_time")
            build_part = f"build={build:9.1f}  " if build is not None \
                else " " * 17
            echo(f"  ok   {name:28s} {build_part}"
                 f"p50={latency['p50']:6.2f} p99={latency['p99']:6.2f} "
                 f"(n={latency['ops']})")
        scenarios.append(scenario)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "mode": mode,
        "python": sys.version.split()[0],
        "p99_protection_factor": P99_PROTECTION_FACTOR,
        "scenarios": scenarios,
    }
    if only is not None:
        payload["only"] = only
    return payload


def find_scenario(payload: dict, name: str) -> Optional[dict]:
    for scenario in payload.get("scenarios", []):
        if scenario.get("name") == name:
            return scenario
    return None


def _latency_ok(scenario: dict) -> bool:
    latency = scenario.get("latency")
    return isinstance(latency, dict) and all(
        isinstance(latency.get(field), (int, float))
        for field in ("p50", "p95", "p99", "max", "mean", "ops"))


def validate_payload(payload: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    if payload.get("suite") != SUITE_NAME:
        problems.append("suite name mismatch")
    if payload.get("mode") not in ("full", "smoke"):
        problems.append("mode must be 'full' or 'smoke'")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        return problems + ["scenarios must be a non-empty list"]
    names = set()
    for scenario in scenarios:
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            problems.append("scenario without a name")
            continue
        if name in names:
            problems.append(f"duplicate scenario {name}")
        names.add(name)
        if scenario.get("kind") not in ("baseline", "build"):
            problems.append(f"{name}: bad kind")
        if not isinstance(scenario.get("ok"), bool):
            problems.append(f"{name}: ok must be a bool")
        if not scenario.get("ok"):
            continue
        if not _latency_ok(scenario):
            problems.append(f"{name}: malformed latency report")
        if scenario.get("kind") == "build" \
                and not isinstance(scenario.get("build_time"),
                                   (int, float)):
            problems.append(f"{name}: missing build_time")
    if payload.get("only") is None:
        rates = SMOKE_RATES if payload.get("mode") == "smoke" \
            else FULL_RATES
        if "baseline" not in names:
            problems.append("baseline scenario missing")
        for builder in BUILDERS:
            for rate in rates:
                expected = f"tradeoff/{builder}/rate_{rate_label(rate)}"
                if expected not in names:
                    problems.append(f"{expected} scenario missing")
    return problems


def _tradeoff_gates(payload: dict) -> list[str]:
    """The suite's own acceptance gates (no reference needed)."""
    problems: list[str] = []
    rates = SMOKE_RATES if payload.get("mode") == "smoke" else FULL_RATES
    baseline = find_scenario(payload, "baseline")
    baseline_p99 = None
    if baseline is not None and baseline.get("ok"):
        baseline_p99 = baseline["latency"]["p99"]

    for builder in BUILDERS:
        times: list[tuple[Optional[float], float]] = []
        for rate in rates:
            name = f"tradeoff/{builder}/rate_{rate_label(rate)}"
            scenario = find_scenario(payload, name)
            if scenario is None or not scenario.get("ok"):
                continue
            times.append((rate, scenario["build_time"]))
        if len(times) < 2:
            continue  # failures already reported by check_payload
        # monotone: tighter throttle (later in the sweep) never builds
        # faster, and the tightest is strictly slower than unthrottled
        for (loose, t_loose), (tight, t_tight) in zip(times, times[1:]):
            if t_tight < t_loose:
                problems.append(
                    f"{builder}: build_time fell from {t_loose:.1f} to "
                    f"{t_tight:.1f} when tightening rate "
                    f"{rate_label(loose)} -> {rate_label(tight)}")
        if times[0][0] is None and not times[-1][1] > times[0][1]:
            problems.append(
                f"{builder}: tightest throttle build_time "
                f"{times[-1][1]:.1f} not above unthrottled "
                f"{times[0][1]:.1f} -- the throttle is not throttling")

    if baseline_p99 is not None:
        ceiling = baseline_p99 * P99_PROTECTION_FACTOR
        tightest = rates[-1]
        for builder in ONLINE_BUILDERS:
            name = f"tradeoff/{builder}/rate_{rate_label(tightest)}"
            scenario = find_scenario(payload, name)
            if scenario is None or not scenario.get("ok"):
                continue
            p99 = scenario["latency"]["p99"]
            if p99 > ceiling:
                problems.append(
                    f"{builder} at rate {rate_label(tightest)}: windowed "
                    f"p99 {p99:.2f} exceeds {P99_PROTECTION_FACTOR}x "
                    f"baseline ({ceiling:.2f})")

    # Bursty add-on: same p99-protection contract, but against the
    # *bursty* no-build baseline (burst backlog raises the floor for
    # everyone; the gate is on what the build adds on top).  Applies
    # only when the bursty rows ran -- older payloads predate them.
    bursty_baseline = find_scenario(payload, "bursty/baseline")
    if bursty_baseline is not None and bursty_baseline.get("ok"):
        ceiling = bursty_baseline["latency"]["p99"] * P99_PROTECTION_FACTOR
        tightest = BURSTY_RATES[-1]
        name = f"bursty/{BURSTY_BUILDER}/rate_{rate_label(tightest)}"
        scenario = find_scenario(payload, name)
        if scenario is not None and scenario.get("ok"):
            p99 = scenario["latency"]["p99"]
            if p99 > ceiling:
                problems.append(
                    f"bursty {BURSTY_BUILDER} at rate "
                    f"{rate_label(tightest)}: windowed p99 {p99:.2f} "
                    f"exceeds {P99_PROTECTION_FACTOR}x bursty baseline "
                    f"({ceiling:.2f})")
    return problems


def _compare_scenario(name: str, scenario: dict, reference: dict,
                      max_regression: float) -> list[str]:
    """Row-by-row simulated-clock comparison (both directions).

    Everything compared is on the simulated clock, so matching
    parameters must reproduce matching numbers on any machine; the
    tolerance exists for deliberate recalibrations, not noise.
    """
    problems = []
    fields = [("build_time", scenario.get("build_time"),
               reference.get("build_time")),
              ("latency.p99", (scenario.get("latency") or {}).get("p99"),
               (reference.get("latency") or {}).get("p99"))]
    for field, new, ref in fields:
        if not isinstance(new, (int, float)) \
                or not isinstance(ref, (int, float)) or ref == 0:
            continue
        drift = abs(new - ref) / ref
        if drift > max_regression:
            problems.append(
                f"{name}: {field} {new:.2f} drifted "
                f"{drift:.0%} from reference {ref:.2f} "
                f"(tolerance {max_regression:.0%})")
    return problems


def check_payload(payload: dict, reference: Optional[dict] = None, *,
                  max_regression: float = 0.30) -> list[str]:
    """Full gate: schema + scenario failures + tradeoff gates + drift.

    Reference rows are compared by scenario name wherever both payloads
    ran the scenario, regardless of mode -- the smoke sweep is a strict
    subset of the full one with identical parameters.
    """
    problems = validate_payload(payload)
    for scenario in payload.get("scenarios", []):
        if not scenario.get("ok"):
            problems.append(
                f"scenario {scenario.get('name')} failed: "
                f"{scenario.get('error', 'unknown error')}")
    problems.extend(_tradeoff_gates(payload))
    if reference is not None:
        for scenario in payload.get("scenarios", []):
            if not scenario.get("ok"):
                continue
            ref = find_scenario(reference, scenario["name"])
            if ref is None or not ref.get("ok"):
                continue
            problems.extend(_compare_scenario(
                scenario["name"], scenario, ref, max_regression))
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.slo.tradeoff",
        description="build-throttle vs foreground-latency tradeoff suite")
    parser.add_argument("--out", required=True,
                        help="write the results JSON here")
    parser.add_argument("--smoke", action="store_true",
                        help="endpoint rates only (CI)")
    parser.add_argument("--only", metavar="PREFIX", default=None,
                        help="run only scenarios whose name starts with "
                             "PREFIX (skips completeness validation)")
    parser.add_argument("--check-against", metavar="REF",
                        help="reference JSON to gate drift against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed relative drift vs the reference "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    suffix = f", only={args.only}" if args.only else ""
    print(f"slo tradeoff suite ({mode}{suffix})")
    payload = run_suite(mode, only=args.only, echo=print)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.only:
        problems = [] if payload["scenarios"] else \
            [f"--only {args.only} matched no scenarios"]
        for scenario in payload["scenarios"]:
            if not scenario.get("ok"):
                problems.append(
                    f"scenario {scenario.get('name')} failed: "
                    f"{scenario.get('error', 'unknown error')}")
    else:
        reference = None
        if args.check_against:
            with open(args.check_against, "r", encoding="utf-8") as handle:
                reference = json.load(handle)
        problems = check_payload(payload, reference,
                                 max_regression=args.max_regression)
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        baseline = find_scenario(payload, "baseline")
        tail = ""
        if baseline is not None and baseline.get("ok"):
            tail = f" (baseline p99 {baseline['latency']['p99']:.2f})"
        print(f"ok: {len(payload['scenarios'])} scenario(s){tail}")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
