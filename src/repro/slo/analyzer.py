"""Latency-SLO analysis of ``repro.obs`` traces.

Works on the recorder's event dicts directly (``recorder.events``) or on
trace JSONL text via :func:`parse_trace`.  The unit of analysis is the
``op`` span emitted by :class:`repro.workloads.OpenLoopDriver`: one span
per operation, issue to completion, with ``attrs.op`` naming the
operation and ``attrs.outcome`` (on the end event) recording how it
finished.

Percentiles use the **nearest-rank** definition:
``p_q = sorted_values[ceil(q/100 * N) - 1]`` -- no interpolation, so
every reported percentile is a latency that actually occurred, and test
expectations are exact by hand (p50 of 1..10 is 5, p99 of 1..100 is 99).

A ``span_begin`` with no matching ``span_end`` was cut short by a crash;
those spans are *excluded* from the latency population (their duration is
unknowable, not zero) and counted in the report's ``excluded`` field.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Optional

#: the percentiles every report carries
REPORT_QUANTILES = (50.0, 95.0, 99.0)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 < q <= 100).

    ``values`` need not be sorted.  Raises on an empty population --
    an SLO over nothing is a bug, not a zero.
    """
    if not values:
        raise ValueError("percentile of an empty population")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"q must be in (0, 100], got {q!r}")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank, 1) - 1]


def parse_trace(text: str) -> list[dict]:
    """Trace JSONL -> event dicts (the meta line is dropped)."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        if event.get("kind") != "meta":
            events.append(event)
    return events


def op_latencies(events: Iterable[dict], span_name: str = "op"
                 ) -> tuple[list[tuple[float, dict, dict]], int]:
    """Pair ``span_name`` begin/end events by span id.

    Returns ``(pairs, excluded)`` where each pair is ``(latency,
    begin_event, end_event)`` in completion order and ``excluded``
    counts crash-cut spans (begin with no end).
    """
    begins: dict[int, dict] = {}
    pairs: list[tuple[float, dict, dict]] = []
    for event in events:
        if event.get("name") != span_name:
            continue
        if event.get("kind") == "span_begin":
            begins[event["span"]] = event
        elif event.get("kind") == "span_end":
            begin = begins.pop(event["span"], None)
            if begin is not None:
                pairs.append((event["t"] - begin["t"], begin, event))
    return pairs, len(begins)


def queue_high_water(events: Iterable[dict],
                     gauge_name: str = "openloop.inflight",
                     window: Optional[tuple[float, float]] = None) -> int:
    """Highest sampled value of the in-flight gauge (0 if never gauged)."""
    high = 0
    for event in events:
        if event.get("kind") == "gauge" \
                and event.get("name") == gauge_name:
            if window is not None \
                    and not window[0] <= event.get("t", 0.0) <= window[1]:
                continue
            value = int(event.get("value") or 0)
            if value > high:
                high = value
    return high


def _quantile_block(latencies: list[float]) -> dict:
    block = {"ops": len(latencies)}
    for q in REPORT_QUANTILES:
        block[f"p{q:g}"] = percentile(latencies, q)
    block["max"] = max(latencies)
    block["mean"] = sum(latencies) / len(latencies)
    return block


def latency_report(events: Iterable[dict], span_name: str = "op",
                   only_outcome: Optional[str] = "committed",
                   window: Optional[tuple[float, float]] = None) -> dict:
    """The SLO summary of one trace.

    ``only_outcome`` restricts the population to spans whose end attrs
    carry that outcome (default: committed operations only -- an aborted
    operation's latency is not a service-level number); pass ``None`` to
    keep everything.  ``window=(t0, t1)`` restricts it to operations
    *issued* in that simulated-time interval (their completions may fall
    outside) -- how the tradeoff suite isolates "foreground latency
    while the build is running".  Returns::

        {"ops": N, "excluded": crash_cut, "dropped": off_outcome,
         "p50": ..., "p95": ..., "p99": ..., "max": ..., "mean": ...,
         "queue_high_water": int,
         "by_op": {op_name: {"ops", "p50", "p95", "p99", "max",
                             "mean"}}}

    Raises :class:`ValueError` when no spans qualify (an SLO report
    over an empty population would gate nothing).
    """
    events = list(events)
    pairs, excluded = op_latencies(events, span_name)
    dropped = 0
    latencies: list[float] = []
    by_op: dict[str, list[float]] = {}
    for latency, begin, end in pairs:
        if window is not None \
                and not window[0] <= begin.get("t", 0.0) <= window[1]:
            continue
        end_attrs = end.get("attrs") or {}
        if only_outcome is not None \
                and end_attrs.get("outcome") != only_outcome:
            dropped += 1
            continue
        begin_attrs = begin.get("attrs") or {}
        latencies.append(latency)
        by_op.setdefault(str(begin_attrs.get("op", "?")),
                         []).append(latency)
    if not latencies:
        raise ValueError(
            f"no completed {span_name!r} spans in the trace "
            f"({excluded} crash-cut, {dropped} off-outcome)")
    report = _quantile_block(latencies)
    report["excluded"] = excluded
    report["dropped"] = dropped
    report["queue_high_water"] = queue_high_water(events, window=window)
    report["by_op"] = {name: _quantile_block(values)
                       for name, values in sorted(by_op.items())}
    return report
