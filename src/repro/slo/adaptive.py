"""Adaptive IB throttling: a feedback controller on windowed p99.

PR 6 added static admission control (``SystemConfig.build_rate_limit``,
a :class:`~repro.core.throttle.TokenBucket` shared by every builder
batch loop) and an offline tradeoff curve.  This module closes the
loop: :class:`AdaptiveThrottleController` is a simulated process that
periodically measures the foreground p99 over a sliding window and
retunes the live bucket via :meth:`TokenBucket.set_rate` --
multiplicative backoff when the SLO is violated, gentle additive-style
opening when there is headroom.  AIMD is the classic stable choice for
this kind of congestion controller; the asymmetry (fast backoff, slow
recovery) keeps the build from oscillating the foreground latency
around the target.

The default latency source is the live ``openloop.latency`` streaming
histogram (:mod:`repro.metrics.hist`) that the open-loop driver feeds
on every committed operation: each tick the controller diffs the
cumulative histogram against the newest snapshot mark older than the
window, so the p99 it steers on covers (approximately -- mark
granularity is one tick) just the trailing window, with no raw-sample
retention anywhere.  An injected ``latencies`` callback overrides the
histogram (unit tests feed synthetic populations; anything with exact
``(completion_time, latency)`` pairs windows exactly).  The controller
only ever touches the bucket's rate, so the crash-safety story is
unchanged -- the rate is volatile tuning state, and a post-crash
resume simply starts again from the configured ``build_rate_limit``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.throttle import TokenBucket
from repro.sim.kernel import Delay
from repro.slo.analyzer import percentile

#: sample a (time, latency) population; the controller windows it itself
LatencySource = Callable[[], list[tuple[float, float]]]


@dataclass
class AdaptiveThrottleConfig:
    """Tuning knobs for :class:`AdaptiveThrottleController`."""

    #: windowed foreground p99 the controller steers toward
    p99_target: float
    #: how often (simulated time) the controller re-evaluates
    interval: float = 20.0
    #: sliding-window width; completions older than this are ignored
    window: float = 40.0
    #: multiplicative backoff applied while p99 exceeds the target
    backoff: float = 0.5
    #: multiplicative opening applied while p99 is under the target
    step_up: float = 1.25
    #: rate clamp: the build is never starved below this
    min_rate: float = 0.01
    #: rate clamp: nor opened beyond this
    max_rate: float = 1_000.0
    #: need at least this many window samples to act on a measurement
    min_samples: int = 5
    #: streaming histogram steered on when no ``latencies`` callback is
    #: injected (the open-loop driver feeds this one)
    hist_name: str = "openloop.latency"


class AdaptiveThrottleController:
    """Feedback loop tuning a live token bucket toward a p99 target.

    By default the controller measures the live
    ``config.hist_name`` streaming histogram via windowed snapshot
    deltas.  An injected ``latencies`` callback overrides it: the
    callback returns ``(completion_time, latency)`` pairs for
    foreground ops observed so far, and each tick the controller keeps
    the pairs completed within the trailing ``window``.  Either way the
    windowed p99 is compared to the target: too slow -> the bucket rate
    is multiplied by ``backoff``; under target (or no traffic at all --
    an idle system has no reason to hold the build back) -> multiplied
    by ``step_up``, always clamped to ``[min_rate, max_rate]``.
    """

    def __init__(self, system, bucket: TokenBucket,
                 latencies: Optional[LatencySource] = None,
                 config: Optional[AdaptiveThrottleConfig] = None) -> None:
        if config is None:
            raise ValueError("an AdaptiveThrottleConfig is required")
        if config.p99_target <= 0:
            raise ValueError("p99_target must be positive")
        self.system = system
        self.bucket = bucket
        self.latencies = latencies
        self.config = config
        self.stop_requested = False
        #: (time, p99-or-None, new_rate) per tick, for tests and reports
        self.history: list[tuple[float, Optional[float], float]] = []
        #: cumulative histogram snapshots ``(t, copy)``, newest-last;
        #: the newest mark at or before ``now - window`` is the baseline
        #: each windowed-quantile delta is taken against
        self._marks: deque = deque()

    def stop(self) -> None:
        """Ask the controller loop to exit at its next tick."""
        self.stop_requested = True

    def measure(self) -> Optional[float]:
        """Windowed p99 of the latency source, or None when too sparse."""
        now = self.system.sim.now
        cutoff = now - self.config.window
        if self.latencies is not None:
            sample = [latency for completed, latency in self.latencies()
                      if completed >= cutoff]
            if len(sample) < self.config.min_samples:
                return None
            return percentile(sample, 99.0)
        return self._measure_hist(now, cutoff)

    def _measure_hist(self, now: float, cutoff: float) -> Optional[float]:
        """Histogram-source measurement: the delta between the current
        cumulative histogram and the newest snapshot mark at or before
        the window cutoff.  Mark granularity is one controller tick, so
        the window is approximate (it can over-cover by up to one
        interval, and the first tick sees everything since t=0) -- the
        AIMD loop only needs the trend, not exact edges.
        """
        hist = self.system.metrics.histograms.get(self.config.hist_name)
        if hist is None:
            return None
        marks = self._marks
        # drop marks superseded as baseline (a newer one also predates
        # the cutoff); the survivor in front is the baseline
        while len(marks) >= 2 and marks[1][0] <= cutoff:
            marks.popleft()
        baseline = marks[0][1] if marks and marks[0][0] <= cutoff \
            else None
        window = hist.delta(baseline) if baseline is not None else hist
        marks.append((now, hist.copy()))
        if window.count < self.config.min_samples:
            return None
        return window.quantile(99.0)

    def tick(self) -> Optional[float]:
        """One control decision: measure, retune, record.  Returns p99."""
        cfg = self.config
        p99 = self.measure()
        if p99 is not None and p99 > cfg.p99_target:
            proposed = self.bucket.rate * cfg.backoff
            self.system.metrics.incr("throttle.backoffs")
        else:
            # Under target, or idle: open the build back up.
            proposed = self.bucket.rate * cfg.step_up
            self.system.metrics.incr("throttle.step_ups")
        new_rate = min(cfg.max_rate, max(cfg.min_rate, proposed))
        if new_rate != self.bucket.rate:
            self.bucket.set_rate(new_rate)
        now = self.system.sim.now
        self.history.append((now, p99, new_rate))
        tracer = getattr(self.system.metrics, "tracer", None)
        if tracer is not None:
            tracer.gauge("throttle.rate", new_rate,
                         p99=p99 if p99 is not None else -1.0)
        return p99

    def run(self):
        """The controller process body; spawn on the system's simulator."""
        while not self.stop_requested:
            yield Delay(self.config.interval)
            if self.stop_requested:
                return
            self.tick()

    def spawn(self):
        return self.system.spawn(self.run(), name="adaptive-throttle")
