"""Choice-strings: a compact, replayable record of scheduling decisions.

The kernel consults the installed policy once per dispatch (see the
schedule-exploration section of :mod:`repro.sim.kernel`).  Consults are
numbered from 1; because the kernel is deterministic *given* the
choices, the consult sequence itself is a pure function of the choice
history, so recording only the *non-default* choices by consult number
is enough to reproduce the whole schedule:

* ``<step>:<index>`` -- at consult ``step``, tie candidate ``index``
  (> 0) was dispatched instead of the FIFO head;
* ``<step>!`` -- at consult ``step``, the FIFO head was preempted.

Numbers are base-36 (digits then lowercase letters; the separators
``:`` ``!`` ``.`` are deliberately outside that alphabet) and tokens
are joined with ``"."``.  The empty string is the pure-FIFO schedule.
Example: ``"4:1.a!.12:3"`` -- consult 4 picked candidate 1, consult 10
preempted, consult 38 picked candidate 3.
"""

from __future__ import annotations

_DIGITS = "0123456789abcdefghijklmnopqrstuvwxyz"

#: parse_choice_string value meaning "preempt the FIFO head"
PREEMPT = -1


def to_base36(value: int) -> str:
    """Non-negative int -> base-36 string."""
    if value < 0:
        raise ValueError(f"negative value {value}")
    if value == 0:
        return "0"
    out = []
    while value:
        value, digit = divmod(value, 36)
        out.append(_DIGITS[digit])
    return "".join(reversed(out))


def from_base36(text: str) -> int:
    """Base-36 string -> int (strict: lowercase alphanumerics only)."""
    if not text or any(ch not in _DIGITS for ch in text):
        raise ValueError(f"bad base-36 literal {text!r}")
    return int(text, 36)


class ChoiceRecorder:
    """Accumulates one run's scheduling choices.

    Policies call :meth:`note_consult` on every ``choose`` invocation
    (whether or not they perturb) so consult numbering stays aligned
    between the recording run and a replay, then :meth:`record_tie` /
    :meth:`record_preempt` for non-default choices only.
    """

    __slots__ = ("consults", "ties_perturbed", "preemptions", "_tokens")

    def __init__(self) -> None:
        self.consults = 0
        self.ties_perturbed = 0
        self.preemptions = 0
        self._tokens: list[str] = []

    def note_consult(self) -> int:
        """Count one ``choose`` call; returns its 1-based consult number."""
        self.consults += 1
        return self.consults

    def record_tie(self, step: int, index: int) -> None:
        """Record a non-FIFO tie pick (``index > 0``) at ``step``."""
        if index <= 0:
            return  # index 0 is the FIFO default; nothing to record
        self.ties_perturbed += 1
        self._tokens.append(f"{to_base36(step)}:{to_base36(index)}")

    def record_preempt(self, step: int) -> None:
        """Record a FIFO-head preemption at ``step``."""
        self.preemptions += 1
        self._tokens.append(f"{to_base36(step)}!")

    def choice_string(self) -> str:
        return ".".join(self._tokens)


def parse_choice_string(choices: str) -> dict[int, int]:
    """Choice-string -> ``{consult number: action}``.

    The action is :data:`PREEMPT` for a preemption token, else the tie
    candidate index.  Raises ``ValueError`` on malformed input
    (including out-of-order or duplicate consult numbers, which a real
    recording can never produce).
    """
    actions: dict[int, int] = {}
    if not choices:
        return actions
    last_step = 0
    for token in choices.split("."):
        if token.endswith("!"):
            step, action = from_base36(token[:-1]), PREEMPT
        elif ":" in token:
            step_text, _sep, index_text = token.partition(":")
            step = from_base36(step_text)
            action = from_base36(index_text)
            if action <= 0:
                raise ValueError(f"tie token {token!r} picks the FIFO "
                                 "default; it would never be recorded")
        else:
            raise ValueError(f"bad choice token {token!r}")
        if step <= last_step:
            raise ValueError(f"choice token {token!r} out of order")
        last_step = step
        actions[step] = action
    return actions
