"""Schedule-exploration sweep: adversarial interleavings of the build.

The crash sweep (:mod:`repro.faultinject`) proves the algorithms recover
from a failure at every instant; this package proves they are *correct
under every interleaving* the kernel could legally produce -- the claim
sections 1.2, 2.1, and 3.1 of the paper actually make.  Seeded
:class:`~repro.schedsweep.policy.RandomTiePolicy` objects perturb the
kernel's same-timestamp ready-queue ties and inject bounded preemptions
at yield points; every choice is recorded as a compact choice-string
(:mod:`repro.schedsweep.recorder`) so a failing schedule replays
deterministically (:class:`~repro.schedsweep.policy.ReplayPolicy`) and
shrinks with the generic shrinker from :mod:`repro.faultinject.shrink`.

Entry point: ``python -m repro.schedsweep`` (see
:mod:`repro.schedsweep.sweep`).
"""

from repro.schedsweep.oracle import check_run
from repro.schedsweep.policy import (
    FifoPolicy,
    RandomTiePolicy,
    ReplayMismatch,
    ReplayPolicy,
    SchedulePolicy,
)
from repro.schedsweep.recorder import (
    ChoiceRecorder,
    parse_choice_string,
)
from repro.schedsweep.sweep import (
    ScheduleConfig,
    SchedulePlan,
    ScheduleResult,
    run_plan,
    run_sweep,
)

__all__ = [
    "ChoiceRecorder",
    "FifoPolicy",
    "RandomTiePolicy",
    "ReplayMismatch",
    "ReplayPolicy",
    "ScheduleConfig",
    "SchedulePlan",
    "ScheduleResult",
    "SchedulePolicy",
    "check_run",
    "parse_choice_string",
    "run_plan",
    "run_sweep",
]
