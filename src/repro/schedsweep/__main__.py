"""``python -m repro.schedsweep`` entry point."""

import sys

from repro.schedsweep.sweep import main

sys.exit(main())
