"""Schedule-sweep driver: explore N seeded interleavings per builder.

Mirrors the crash sweep's shape (:mod:`repro.faultinject.sweep`):

1. **Baseline** -- run each builder once with the explicit FIFO policy
   and prove the oracle passes (a broken baseline is reported as such,
   not as a wall of schedule failures).
2. **Explore** -- run N schedules per builder, each under a seeded
   :class:`~repro.schedsweep.policy.RandomTiePolicy` that perturbs
   same-timestamp ties and injects bounded preemptions.
3. **Prove** -- after every run, apply the full oracle
   (:func:`repro.schedsweep.oracle.check_run`): structural audit,
   index/table audit, serial-reference equivalence, metrics sanity,
   hang detection.
4. **Shrink + replay** -- a failing schedule is shrunk with the generic
   shrinker from :mod:`repro.faultinject.shrink` (same greedy halving,
   schedule runner instead of fault runner) and reported with its
   choice-string, which replays the exact schedule via ``--replay``.

CLI::

    python -m repro.schedsweep --schedules 50            # all builders
    python -m repro.schedsweep --builder psf --partitions 3
    python -m repro.schedsweep --builder sf --schedule-seed 123 \
        --replay '4:1.a!' --records 60
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core import BuildOptions, IndexSpec, get_builder
from repro.faultinject.shrink import shrink_failure
from repro.schedsweep.oracle import check_run
from repro.schedsweep.policy import (
    FifoPolicy,
    RandomTiePolicy,
    ReplayMismatch,
    ReplayPolicy,
)
from repro.system import System, SystemConfig
from repro.workloads import WorkloadDriver, WorkloadSpec

INDEX_NAME = "idx"

#: builder rows the default sweep explores; psf runs at P in {1, 2, 3}
#: (the paper's interleaving arguments must hold per shard count) and
#: multi builds K=3 indexes off one shared scan (section 6.2)
DEFAULT_ROWS: tuple[tuple[str, int], ...] = (
    ("offline", 1), ("nsf", 1), ("sf", 1),
    ("psf", 1), ("psf", 2), ("psf", 3),
    ("multi", 1),
)


def _index_specs(builder: str) -> list:
    """The specs one schedule run builds: K=3 for multi, else one."""
    if builder == "multi":
        from repro.faultinject.sweep import MULTI_SPECS
        return list(MULTI_SPECS)
    return [IndexSpec.of(INDEX_NAME, ["k"])]


@dataclass(frozen=True)
class ScheduleConfig:
    """One schedule run's fully deterministic build recipe.

    Field names ``records``/``operations``/``workers`` deliberately
    match :class:`repro.faultinject.sweep.SweepConfig` so the generic
    shrinker's default floors apply unchanged.
    """

    builder: str = "sf"
    records: int = 120          # heap rows preloaded before the build
    operations: int = 40        # concurrent update ops per worker
    workers: int = 2
    seed: int = 7               # workload/system seed (not the schedule)
    partitions: int = 2         # psf shard count (ignored by nsf/sf)
    preempt_prob: float = 0.1
    max_preemptions: int = 16
    buffer_frames: int = 64
    checkpoint_every_pages: int = 8
    checkpoint_every_keys: int = 48
    commit_every_keys: int = 24
    #: IB admission control (work items / time unit); None = unthrottled.
    #: A throttled build's delays reshuffle ties, so every interleaving
    #: the sweep explores must still pass the full oracle.
    build_rate_limit: Optional[float] = None
    #: compressed-key sort (experiment E25): every interleaving the
    #: sweep explores must produce the same audited tree with the codec
    #: on as off.
    compressed_keys: bool = False

    def system_config(self) -> SystemConfig:
        return SystemConfig(page_capacity=8, leaf_capacity=8,
                            buffer_frames=self.buffer_frames,
                            sort_workspace=16, merge_fanin=4,
                            build_rate_limit=self.build_rate_limit)

    def build_options(self) -> BuildOptions:
        return BuildOptions(
            checkpoint_every_pages=self.checkpoint_every_pages,
            checkpoint_every_keys=self.checkpoint_every_keys,
            commit_every_keys=self.commit_every_keys,
            partitions=self.partitions,
            compressed_keys=self.compressed_keys)

    def make_policy(self, plan: "SchedulePlan"):
        if plan.choices is not None:
            return ReplayPolicy(plan.choices)
        if plan.schedule_seed is None:
            return FifoPolicy()
        return RandomTiePolicy(plan.schedule_seed,
                               preempt_prob=self.preempt_prob,
                               max_preemptions=self.max_preemptions)


@dataclass(frozen=True)
class SchedulePlan:
    """What to run: a seeded exploration, a replay, or the FIFO baseline."""

    #: RandomTiePolicy seed; None = explicit FIFO baseline
    schedule_seed: Optional[int] = None
    #: recorded choice-string; when set, replays it instead of exploring
    choices: Optional[str] = None

    def describe(self) -> str:
        if self.choices is not None:
            return (f"replay[{self.choices or '(fifo)'}] "
                    f"seed={self.schedule_seed}")
        if self.schedule_seed is None:
            return "fifo-baseline"
        return f"schedule-seed={self.schedule_seed}"


@dataclass
class ScheduleResult:
    """Outcome of one explored schedule."""

    plan: SchedulePlan
    passed: bool = False
    detail: str = ""
    #: the run's recorded choice-string (the reproduction recipe)
    choices: str = ""
    consults: int = 0
    ties_perturbed: int = 0
    preemptions: int = 0
    sim_time: float = 0.0

    @property
    def failed(self) -> bool:
        return not self.passed


# -- one deterministic run ----------------------------------------------------


def _start_build(config: ScheduleConfig, policy):
    """Preload the table, install the policy, launch builder + workload.

    The policy is installed *after* the preload (mirroring the crash
    sweep's injector), so consult numbering covers exactly the
    build-era schedule and the preloaded table is identical across all
    schedules of one config.
    """
    system = System(config.system_config(), seed=config.seed)
    table = system.create_table("t", ["k", "p"])
    spec = WorkloadSpec(operations=config.operations,
                        workers=config.workers,
                        think_time=1.0, rollback_fraction=0.2)
    driver = WorkloadDriver(system, table, spec, seed=config.seed)
    preload = system.spawn(driver.preload(config.records), name="preload")
    system.run()
    if preload.error is not None:  # pragma: no cover - setup bug
        raise preload.error
    system.sim.schedule_policy = policy
    builder_cls = get_builder(config.builder)
    builder = builder_cls(system, table, _index_specs(config.builder),
                          options=config.build_options())
    proc = system.spawn(builder.run(), name="builder")
    driver.spawn_workers()
    return system, driver, proc


def run_plan(config: ScheduleConfig, plan: SchedulePlan) -> ScheduleResult:
    """Run one schedule to completion and apply the full oracle."""
    result = ScheduleResult(plan=plan)
    policy = config.make_policy(plan)
    system, driver, proc = _start_build(config, policy)
    failure = ""
    try:
        system.run()
    except ReplayMismatch as exc:
        failure = f"replay diverged: {exc}"
    except Exception as exc:  # noqa: BLE001 - a process died; report it
        failure = f"schedule raised: {exc!r}"
    recorder = getattr(policy, "recorder", None)
    if recorder is not None:
        result.choices = recorder.choice_string()
        result.consults = recorder.consults
        result.ties_perturbed = recorder.ties_perturbed
        result.preemptions = recorder.preemptions
    result.sim_time = system.sim.now
    if not failure:
        names = tuple(spec.name for spec in _index_specs(config.builder))
        failure = check_run(system, driver, proc, INDEX_NAME,
                            index_names=names)
    result.detail = failure
    result.passed = not failure
    return result


# -- failure reporting --------------------------------------------------------


def schedule_dump(plan: SchedulePlan, config: ScheduleConfig,
                  result: ScheduleResult, attempts: int = 1) -> str:
    """Render a deterministic reproduction recipe for a failing schedule."""
    replay_flags = (
        f"--builder {config.builder} --partitions {config.partitions} "
        f"--records {config.records} --operations {config.operations} "
        f"--workers {config.workers} --seed {config.seed} "
        f"--replay {result.choices or plan.choices or ''!r}")
    lines = [
        f"schedule    : {plan.describe()}",
        f"failure     : {result.detail or '(passed)'}",
        f"choices     : {result.choices or plan.choices or '(fifo)'}",
        f"perturbed   : {result.ties_perturbed} ties, "
        f"{result.preemptions} preemptions over {result.consults} consults",
        f"reproduce   : python -m repro.schedsweep {replay_flags}",
        f"shrink runs : {attempts}",
    ]
    return "\n".join(lines)


def shrink_schedule_failure(config: ScheduleConfig, plan: SchedulePlan,
                            max_attempts: int = 16):
    """Shrink a failing seeded schedule via the generic shrinker.

    The *seeded* plan (not its choice-string) is re-run at each smaller
    config: the same seed explores an analogous schedule over the
    smaller workload, and the shrunk run's own recorded choice-string
    becomes the final reproduction recipe.
    """
    return shrink_failure(config, plan, max_attempts,
                          runner=run_plan, dump=schedule_dump)


# -- the sweep ----------------------------------------------------------------


@dataclass
class BuilderCensus:
    """All explored schedules for one (builder, partitions) row."""

    builder: str
    partitions: int
    baseline: ScheduleResult
    results: list = field(default_factory=list)

    @property
    def label(self) -> str:
        if self.builder == "psf":
            return f"psf(P={self.partitions})"
        return self.builder

    @property
    def failures(self) -> list:
        rows = [] if self.baseline.passed else [self.baseline]
        rows.extend(r for r in self.results if r.failed)
        return rows

    def totals(self) -> tuple[int, int, int]:
        return (sum(r.consults for r in self.results),
                sum(r.ties_perturbed for r in self.results),
                sum(r.preemptions for r in self.results))


@dataclass
class ScheduleSweepReport:
    """Census + failures for a whole sweep."""

    config: ScheduleConfig
    schedules: int
    rows: list

    @property
    def failures(self) -> list:
        return [(census, result) for census in self.rows
                for result in census.failures]

    @property
    def all_passed(self) -> bool:
        return not self.failures

    def to_text(self) -> str:
        lines = [
            f"schedule sweep: records={self.config.records} "
            f"operations={self.config.operations} "
            f"workers={self.config.workers} seed={self.config.seed} "
            f"preempt_prob={self.config.preempt_prob}",
            f"{self.schedules} seeded schedules per builder "
            f"(+1 FIFO baseline each)",
            "",
            f"{'builder':<10} {'schedules':>9} {'consults':>10} "
            f"{'tie-perturb':>11} {'preempts':>9}  result",
        ]
        for census in self.rows:
            consults, ties, preempts = census.totals()
            bad = census.failures
            verdict = "PASS" if not bad else f"FAIL ({len(bad)})"
            lines.append(
                f"{census.label:<10} {len(census.results):>9} "
                f"{consults:>10} {ties:>11} {preempts:>9}  {verdict}")
        total = sum(len(census.results) + 1 for census in self.rows)
        failed = len(self.failures)
        lines.append("")
        lines.append(f"{total - failed}/{total} schedules passed the "
                     "full oracle")
        for census, result in self.failures:
            lines.append(f"  FAIL {census.label} {result.plan.describe()}: "
                         f"{result.detail}")
        return "\n".join(lines)


def schedule_seed_for(base_seed: int, row_index: int, n: int) -> int:
    """Deterministic per-run policy seed (stable across sweep shapes)."""
    return (base_seed * 1_000_003) ^ (row_index << 20) ^ n


def run_sweep(config: ScheduleConfig, schedules: int,
              rows: Optional[list] = None, progress=None,
              shrink: bool = True) -> ScheduleSweepReport:
    """Explore ``schedules`` seeded runs per builder row; report.

    ``rows``: list of ``(builder, partitions)`` pairs; defaults to
    :data:`DEFAULT_ROWS`.  When ``shrink`` is true, each failing seeded
    schedule is additionally shrunk and its minimized reproduction
    recipe appended to the result's detail.
    """
    rows = list(DEFAULT_ROWS) if rows is None else rows
    censuses = []
    for row_index, (builder, partitions) in enumerate(rows):
        row_config = replace(config, builder=builder,
                             partitions=partitions)
        baseline = run_plan(row_config, SchedulePlan())
        census = BuilderCensus(builder=builder, partitions=partitions,
                               baseline=baseline)
        censuses.append(census)
        if progress is not None:
            status = "ok" if baseline.passed else \
                f"FAIL: {baseline.detail}"
            progress(f"[{census.label}] baseline {status}")
        if baseline.failed:
            # The FIFO schedule itself fails: exploring perturbations
            # of a broken baseline would just repeat the same failure.
            continue
        for n in range(schedules):
            seed = schedule_seed_for(config.seed, row_index, n)
            plan = SchedulePlan(schedule_seed=seed)
            result = run_plan(row_config, plan)
            if result.failed and shrink:
                shrunk = shrink_schedule_failure(row_config, plan)
                result.detail += "\n" + shrunk.report()
            census.results.append(result)
            if progress is not None and (result.failed
                                         or (n + 1) % 10 == 0
                                         or n + 1 == schedules):
                status = "ok" if result.passed else \
                    f"FAIL: {result.detail.splitlines()[0]}"
                progress(f"[{census.label}] {n + 1}/{schedules} "
                         f"{status}")
    return ScheduleSweepReport(config=config, schedules=schedules,
                               rows=censuses)


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Explore seeded adversarial schedules of an online "
                    "index build and prove the full oracle on each.")
    parser.add_argument("--builder",
                        choices=("all", "offline", "nsf", "sf", "psf",
                                 "multi"),
                        default="all")
    parser.add_argument("--partitions", type=int, default=None,
                        help="psf shard count; default sweeps P in "
                             "{1,2,3}")
    parser.add_argument("--schedules", type=int, default=50,
                        help="seeded schedules per builder row")
    parser.add_argument("--records", type=int, default=120)
    parser.add_argument("--operations", type=int, default=40)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--preempt-prob", type=float, default=0.1)
    parser.add_argument("--max-preemptions", type=int, default=16)
    parser.add_argument("--build-rate-limit", type=float, default=None,
                        help="IB admission-control rate (work items per "
                             "simulated time unit; default unthrottled)")
    parser.add_argument("--codec", action="store_true",
                        help="sort with compressed keys (experiment E25); "
                             "every explored interleaving must still pass "
                             "the full oracle")
    parser.add_argument("--schedule-seed", type=int, default=None,
                        help="run exactly one seeded schedule and exit")
    parser.add_argument("--replay", default=None, metavar="CHOICES",
                        help="replay one recorded choice-string and exit")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking failing schedules")
    parser.add_argument("--failures-out", default=None, metavar="DIR",
                        help="write one reproduction recipe per failing "
                             "schedule here (CI artifact)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    config = ScheduleConfig(
        builder=args.builder if args.builder != "all" else "sf",
        records=args.records,
        operations=args.operations,
        workers=args.workers,
        seed=args.seed,
        partitions=args.partitions if args.partitions is not None else 2,
        preempt_prob=args.preempt_prob,
        max_preemptions=args.max_preemptions,
        build_rate_limit=args.build_rate_limit,
        compressed_keys=args.codec,
    )

    if args.replay is not None or args.schedule_seed is not None:
        # Single-run mode: replay a recorded schedule or explore one seed.
        plan = SchedulePlan(schedule_seed=args.schedule_seed,
                            choices=args.replay)
        result = run_plan(config, plan)
        print(schedule_dump(plan, config, result))
        return 0 if result.passed else 1

    if args.builder == "all":
        rows = list(DEFAULT_ROWS)
    elif args.builder == "psf" and args.partitions is None:
        rows = [("psf", p) for p in (1, 2, 3)]
    else:
        rows = [(args.builder, config.partitions)]

    progress = None if args.quiet else \
        (lambda line: print(line, file=sys.stderr, flush=True))
    report = run_sweep(config, args.schedules, rows=rows,
                       progress=progress, shrink=not args.no_shrink)
    if args.failures_out is not None:
        import os
        os.makedirs(args.failures_out, exist_ok=True)
        for index, (census, result) in enumerate(report.failures):
            path = os.path.join(args.failures_out,
                                f"{census.label}-{index}.txt")
            with open(path, "w") as handle:
                handle.write(schedule_dump(result.plan,
                                           replace(config,
                                                   builder=census.builder,
                                                   partitions=census.partitions),
                                           result))
                handle.write("\n")
            print(f"failure written: {path}", file=sys.stderr)
    print(report.to_text())
    return 0 if report.all_passed else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
