"""The full correctness oracle applied after every explored schedule.

A schedule passes only if *all* of the following hold -- the union of
every check the repo knows how to make:

1. no process died with a Python error and the run did not crash;
2. every process finished (a live process after the event queue drains
   is a hang: a lost wakeup, stuck latch queue, or leaked waiter);
3. the index reached AVAILABLE;
4. the tree passes the structural audit (:mod:`repro.btree.audit`);
5. the index agrees with the table (:mod:`repro.verify.consistency`);
6. *serial-reference equivalence*: the tree's entry sequence is
   entry-for-entry what a quiesced offline build over the final table
   would produce (order-exact, not just set-equal -- catches ordering
   corruption that set-based audits miss);
7. metrics sanity: counters non-negative, zero crashes, and the
   workload's committed/rolledback/aborted counters conserve against
   the driver's operation timeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.btree.audit import audit_tree
from repro.verify import audit_index

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Process
    from repro.system import System
    from repro.workloads import WorkloadDriver

#: workload outcome counters that must conserve against the op timeline
_OUTCOMES = ("committed", "rolledback", "aborted")


def check_run(system: "System", driver: "WorkloadDriver",
              builder_proc: "Process", index_name: str = "idx",
              index_names=None) -> str:
    """Apply the full oracle; returns '' when clean, else failure text.

    ``index_names`` (a sequence) checks several indexes built by one
    utility run -- the multi-index shared-scan build (section 6.2) must
    satisfy the per-index oracle for *every* index it produced.  The
    default checks just ``index_name``.
    """
    if builder_proc.error is not None:
        return f"builder error: {builder_proc.error!r}"
    if system.sim.crashed:
        return f"unexpected simulated crash: {system.sim.crash_error!r}"
    if not builder_proc.finished:
        return "builder never finished (hang)"
    if system.sim.live_processes != 0:
        stuck = [row["name"] for row in system.sim.processes()
                 if not row["finished"]]
        return (f"{system.sim.live_processes} live processes after the "
                f"queue drained (lost wakeup): {stuck}")
    from repro.core.descriptor import IndexState
    for name in tuple(index_names) if index_names else (index_name,):
        descriptor = system.indexes.get(name)
        if descriptor is None:
            return f"index {name!r} missing after build"
        if descriptor.state is not IndexState.AVAILABLE:
            return f"index {name} state {descriptor.state!r} after build"
        try:
            audit_tree(descriptor.tree)
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            return f"{name}: structural audit failed: {exc!r}"
        try:
            audit_index(system, descriptor)
        except Exception as exc:  # noqa: BLE001 - report, don't mask
            return f"{name}: index/table audit failed: {exc!r}"
        failure = _serial_reference_check(descriptor)
        if failure:
            return f"{name}: {failure}" if index_names else failure
    return _metrics_sanity(system, driver)


def _serial_reference_check(descriptor) -> str:
    """Order-exact comparison against the serial reference.

    The reference is what a quiesced offline build over the *final*
    table state produces: every live ``(key, rid)`` pair, sorted.  The
    online build under an adversarial schedule must converge to exactly
    that sequence.
    """
    reference = sorted(
        (descriptor.key_of(record), rid)
        for rid, record in descriptor.table.audit_records())
    actual = [(entry.key_value, entry.rid)
              for entry in descriptor.tree.all_entries()]
    if actual != reference:
        for position, (got, want) in enumerate(zip(actual, reference)):
            if got != want:
                return (f"serial-reference divergence at entry "
                        f"{position}: tree has {got!r}, reference has "
                        f"{want!r}")
        return (f"serial-reference length mismatch: tree has "
                f"{len(actual)} entries, reference has {len(reference)}")
    return ""


def _metrics_sanity(system: "System", driver: "WorkloadDriver") -> str:
    snapshot = system.metrics.snapshot()
    negative = {name: value for name, value in snapshot.items()
                if value < 0}
    if negative:
        return f"negative counters: {negative!r}"
    if snapshot.get("system.crashes", 0) != 0:
        return f"system.crashes = {snapshot['system.crashes']}"
    timeline: dict[str, int] = {outcome: 0 for outcome in _OUTCOMES}
    for record in driver.op_timeline:
        if record.outcome in timeline:
            timeline[record.outcome] += 1
    for outcome in _OUTCOMES:
        counted = snapshot.get(f"workload.{outcome}", 0)
        if counted != timeline[outcome]:
            return (f"workload.{outcome} counter {counted} != "
                    f"{timeline[outcome]} timeline records (lost or "
                    "double-counted operations)")
    return ""
