"""Schedule policies: the objects plugged into ``Simulator.schedule_policy``.

The kernel contract (see :mod:`repro.sim.kernel`)::

    choose(time, procs, can_defer) -> int

``procs`` are the processes runnable at the current instant, FIFO
order; index 0 is the historical choice, a positive index dispatches a
different tie candidate, and a negative return (honoured only when
``can_defer``) preempts the FIFO head to the next occupied instant.

All policies here perturb *only* same-timestamp ties and bounded
preemptions, so every schedule they produce is one a legal scheduler
could have produced -- no new timestamps, no starved processes.
"""

from __future__ import annotations

import random

from repro.errors import ReproError
from repro.schedsweep.recorder import ChoiceRecorder, PREEMPT, \
    parse_choice_string


class ReplayMismatch(ReproError):
    """A recorded choice no longer applies at its consult.

    Raised when a replayed run diverges from the recording run -- a
    recorded tie index exceeding the candidate count, or a preemption
    where deferral is impossible.  Since the kernel is deterministic
    given the choices, this always indicates nondeterminism *outside*
    the kernel (e.g. iteration over an unordered container) and is
    itself a reportable bug.
    """


class SchedulePolicy:
    """Base policy: always the FIFO head, never a preemption.

    Installing this must leave every schedule byte-identical to running
    with no policy at all (the golden-output guarantee).
    """

    def choose(self, time: float, procs: list, can_defer: bool) -> int:
        return 0


#: readable alias for the explicit default
FifoPolicy = SchedulePolicy


class RandomTiePolicy(SchedulePolicy):
    """Seeded perturbation: random tie picks + bounded preemptions.

    ``preempt_prob`` is evaluated on every consult where deferral is
    possible, up to ``max_preemptions`` times per run (the bound the
    kernel contract demands for progress).  Every decision is recorded
    on :attr:`recorder`, so a failing run's
    ``recorder.choice_string()`` is a complete reproduction recipe for
    :class:`ReplayPolicy`.
    """

    def __init__(self, seed: int, preempt_prob: float = 0.1,
                 max_preemptions: int = 16) -> None:
        self.seed = seed
        self.preempt_prob = preempt_prob
        self.max_preemptions = max_preemptions
        self.rng = random.Random(seed)
        self.recorder = ChoiceRecorder()

    def choose(self, time: float, procs: list, can_defer: bool) -> int:
        step = self.recorder.note_consult()
        if (can_defer
                and self.recorder.preemptions < self.max_preemptions
                and self.rng.random() < self.preempt_prob):
            self.recorder.record_preempt(step)
            return PREEMPT
        if len(procs) > 1:
            index = self.rng.randrange(len(procs))
            self.recorder.record_tie(step, index)
            return index
        return 0


class ReplayPolicy(SchedulePolicy):
    """Replay a recorded choice-string, consult by consult.

    Consults not named in the string take the FIFO default, exactly as
    during recording.  The policy re-records onto its own
    :attr:`recorder`; after a faithful replay,
    ``recorder.choice_string()`` equals the input string -- a cheap
    end-to-end determinism check callers can assert.
    """

    def __init__(self, choices: str) -> None:
        self.choices = choices
        self.actions = parse_choice_string(choices)
        self.recorder = ChoiceRecorder()

    def choose(self, time: float, procs: list, can_defer: bool) -> int:
        step = self.recorder.note_consult()
        action = self.actions.get(step)
        if action is None:
            return 0
        if action == PREEMPT:
            if not can_defer:
                raise ReplayMismatch(
                    f"consult {step}: recorded preemption but deferral "
                    "is impossible in the replay")
            self.recorder.record_preempt(step)
            return PREEMPT
        if action >= len(procs):
            raise ReplayMismatch(
                f"consult {step}: recorded tie index {action} but the "
                f"replay offers only {len(procs)} candidates")
        self.recorder.record_tie(step, action)
        return action
