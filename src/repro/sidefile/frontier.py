"""Per-partition scan frontier for the partitioned parallel SF build.

Serial SF keeps a single ``Current-RID``: a record's maintenance is
routed to the side-file iff ``Target-RID < Current-RID`` (section 3.1),
because everything behind the scan position has already been extracted.

The parallel build (:mod:`repro.parallel`) range-partitions the table's
page space into P shards and scans them with one worker each, so there is
no single scan position.  The visibility test generalizes to a *frontier
vector*: one Current-RID per shard, advanced by that shard's worker under
the data-page latch.  A record is "scanned" iff it is behind the frontier
of the shard *owning its page* -- each record belongs to exactly one
shard, so the paper's correctness argument (an update is either extracted
by the scan or routed to the side-file, never both, never neither)
carries over shard by shard.

Pages appended beyond the partitioned range (file extensions during the
build) belong to the last shard, which chases the end of file exactly
like serial SF's scan does (section 3.2.2); once it finishes, its
frontier is infinity and later extensions still reach the side-file.

With P = 1 the vector degenerates to the paper's single Current-RID.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from repro.storage.rid import INFINITY_RID, RID


@dataclass(frozen=True)
class Partition:
    """One shard's contiguous page range ``[start, end)``.

    ``chases_eof`` marks the last shard, whose scan limit is the live end
    of file rather than the range noted at build start.
    """

    index: int
    start: int
    end: int
    chases_eof: bool = False

    @property
    def pages(self) -> int:
        return self.end - self.start


def partition_pages(page_count: int, shards: int) -> list[Partition]:
    """Split ``[0, page_count)`` into ``shards`` near-equal ranges.

    Every shard is non-empty when ``page_count >= shards``; an
    over-partitioned tiny table degenerates to fewer useful shards (the
    empty tail shards scan nothing and arrive at the barrier at once).
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    base, extra = divmod(max(page_count, 0), shards)
    partitions: list[Partition] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        end = start + size
        partitions.append(Partition(index=index, start=start, end=end,
                                    chases_eof=(index == shards - 1)))
        start = end
    return partitions


class ScanFrontier:
    """The frontier vector: one Current-RID per shard.

    All mutations are synchronous (no yields), so each advance is atomic
    with the caller's visibility decision, preserving the latch protocol
    that makes ``Target-RID != Current-RID`` impossible (section 3.1).
    """

    __slots__ = ("partitions", "current", "_ends")

    def __init__(self, partitions: Sequence[Partition]) -> None:
        if not partitions:
            raise ValueError("frontier needs at least one partition")
        self.partitions = list(partitions)
        #: per-shard Current-RID; starts at the shard's first page
        self.current: list[RID] = [RID(p.start, 0) for p in self.partitions]
        #: exclusive page-range ends of all shards but the last, for the
        #: binary-searched ownership test (partition ranges never change
        #: after construction; only frontiers move)
        self._ends: list[int] = [p.end for p in self.partitions[:-1]]

    # -- the generalized visibility test -----------------------------------

    def shard_of(self, page_no: int) -> int:
        """The shard owning ``page_no`` (extensions go to the last shard).

        Runs on *every* visibility test concurrent updaters perform, so
        it binary-searches the precomputed range ends instead of scanning
        them: ``bisect_right`` returns the first shard whose end exceeds
        ``page_no`` -- identical to the linear answer, including for
        empty shards (duplicate ends) and pages past the partitioned
        range (which fall through to the last, EOF-chasing shard).
        """
        return bisect_right(self._ends, page_no)

    def scanned(self, rid: RID) -> bool:
        """Generalized ``Target-RID < Current-RID``: behind the owning
        shard's frontier."""
        return rid < self.current[self.shard_of(rid.page_no)]

    # -- worker-side maintenance -------------------------------------------

    def advance(self, shard: int, rid: RID) -> None:
        """Advance one shard's frontier (called under the page latch)."""
        if rid < self.current[shard]:
            raise ValueError(
                f"shard {shard} frontier moving backwards: "
                f"{rid} < {self.current[shard]}")
        self.current[shard] = rid

    def finish(self, shard: int) -> None:
        """Shard scan complete: everything it owns is now visible."""
        self.current[shard] = INFINITY_RID

    def finish_all(self) -> None:
        for shard in range(len(self.current)):
            self.current[shard] = INFINITY_RID

    @property
    def done(self) -> bool:
        return all(rid == INFINITY_RID for rid in self.current)

    # -- checkpoint round-trip ---------------------------------------------

    def to_manifest(self) -> dict:
        return {
            "partitions": [(p.start, p.end) for p in self.partitions],
            "current": [tuple(rid) for rid in self.current],
        }

    @classmethod
    def from_manifest(cls, manifest: dict) -> "ScanFrontier":
        ranges = manifest["partitions"]
        partitions = [Partition(index=i, start=start, end=end,
                                chases_eof=(i == len(ranges) - 1))
                      for i, (start, end) in enumerate(ranges)]
        frontier = cls(partitions)
        frontier.current = [RID(*raw) for raw in manifest["current"]]
        return frontier

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        spans = ", ".join(
            f"[{p.start},{p.end}){'+' if p.chases_eof else ''}"
            f"@{'inf' if rid == INFINITY_RID else rid.page_no}"
            for p, rid in zip(self.partitions, self.current))
        return f"<ScanFrontier {spans}>"
