"""The side-file: SF's append-only change table.

Section 3.1: "A side-file is an append-only (sequential) table in which
the transactions insert tuples of the form <operation, key>, where
operation is insert or delete.  Transactions append entries without doing
any locking of the appended entries" and "transactions write redo-only log
records for the appends that they make to the side-file".

Appends are therefore:

* unlocked -- concurrent transactions interleave freely (each append is
  one atomic step in the simulator);
* redo-only logged -- a crash replays lost appends from the WAL; a
  transaction *rollback does not remove its appends* (that is the point of
  redo-only), instead rollback appends a *compensating entry* per
  Figure 2's "make entry in SF for index under construction".

IB drains the file sequentially and checkpoints its drain position
(section 3.2.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, TYPE_CHECKING

from repro.faultinject.sites import fault_point
from repro.sim.kernel import Delay
from repro.storage.rid import RID
from repro.wal.records import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System
    from repro.txn.transaction import Transaction

INSERT = "insert"
DELETE = "delete"


@dataclass(frozen=True)
class SideFileEntry:
    """One logged change destined for the index under construction."""

    operation: str          # INSERT or DELETE
    key_value: tuple
    rid: RID
    lsn: int                # LSN of the redo-only append record
    txn_id: Optional[int]


class SideFile:
    """Append-only change table for one index build."""

    #: entries per "page" for durability accounting: a crash keeps the
    #: forced prefix, loses the volatile tail (restored by WAL redo)
    def __init__(self, system: "System", index_name: str) -> None:
        self.system = system
        self.index_name = index_name
        self.entries: list[SideFileEntry] = []
        self.durable_length = 0
        #: how far the drain (section 3.2.5) has applied entries; kept by
        #: the drainer so observers (trace gauges) can read the backlog
        #: ``len(entries) - drain_position`` without touching the builder
        self.drain_position = 0
        #: LSNs of every present entry; keeps :meth:`redo_append`'s
        #: already-present test O(1) (the linear scan made restart redo
        #: quadratic in side-file length)
        self._lsn_set: set[int] = set()

    # -- appending (generator) ----------------------------------------------

    def append_sync(self, txn: "Transaction", operation: str, key_value,
                    rid: RID) -> SideFileEntry:
        """Append one entry with its redo-only log record.

        Synchronous (no yields): callers invoke it atomically with the
        visibility decision, under the data-page latch.  "Transactions
        append entries without doing any locking of the appended entries"
        (section 3.1).
        """
        record = txn.log(
            RecordKind.UPDATE,
            redo=("sidefile.append", {
                "index": self.index_name,
                "operation": operation,
                "key_value": key_value,
                "rid": tuple(rid),
            }),
            info={"sidefile": self.index_name},
        )
        entry = SideFileEntry(
            operation=operation,
            key_value=key_value,
            rid=RID(*rid),
            lsn=record.lsn,
            txn_id=txn.txn_id,
        )
        self.entries.append(entry)
        self._lsn_set.add(record.lsn)
        fault_point(self.system.metrics, "sidefile.append")
        self.system.metrics.incr("sidefile.appends")
        return entry

    def append(self, txn: "Transaction", operation: str, key_value,
               rid: RID):
        """Generator variant of :meth:`append_sync` charging CPU cost."""
        entry = self.append_sync(txn, operation, key_value, rid)
        yield Delay(self.system.config.record_op_cost * 0.5)
        return entry

    def append_during_undo(self, txn: "Transaction", operation: str,
                           key_value, rid: RID):
        """Generator-free variant used inside undo handlers (the CLR the
        caller writes covers durability); still counted separately."""
        record = txn.system.log.append(
            txn.txn_id, RecordKind.UPDATE,
            prev_lsn=None,  # CLR chain is maintained by the caller
            redo=("sidefile.append", {
                "index": self.index_name,
                "operation": operation,
                "key_value": key_value,
                "rid": tuple(rid),
            }),
            info={"sidefile": self.index_name, "during": "undo"},
        )
        self.entries.append(SideFileEntry(
            operation=operation,
            key_value=key_value,
            rid=RID(*rid),
            lsn=record.lsn,
            txn_id=txn.txn_id,
        ))
        self._lsn_set.add(record.lsn)
        self.system.metrics.incr("sidefile.appends")
        self.system.metrics.incr("sidefile.appends.during_undo")

    # -- durability ------------------------------------------------------------

    def force(self) -> None:
        """Make every current entry crash-survivable (IB drain checkpoint).

        WAL rule: the redo-only append records must reach stable storage
        *before* the durable prefix is advanced.  Advancing first (the
        original order) left a window -- a crash inside the log flush
        produced "durable" entries whose append records never made the
        log, so a restarted drain consumed entries that redo could not
        re-create and the post-crash audit diverged.
        """
        fault_point(self.system.metrics, "sidefile.force")
        length = len(self.entries)
        if length:
            self.system.log.flush(self.entries[-1].lsn)
        self.durable_length = length

    def crash(self) -> None:
        del self.entries[self.durable_length:]
        self._lsn_set = {entry.lsn for entry in self.entries}

    def redo_append(self, record: LogRecord) -> None:
        """Replay one append from the WAL if it was lost in the crash."""
        _op, args = record.redo
        if record.lsn in self._lsn_set:
            return  # already present in the stable prefix
        self.entries.append(SideFileEntry(
            operation=args["operation"],
            key_value=args["key_value"],
            rid=RID(*args["rid"]),
            lsn=record.lsn,
            txn_id=record.txn_id,
        ))
        self._lsn_set.add(record.lsn)
        self.system.metrics.incr("recovery.sidefile_redos")

    # -- reading -----------------------------------------------------------------

    def read_from(self, position: int) -> Iterator[tuple[int, SideFileEntry]]:
        """Entries starting at ``position`` with their positions."""
        for index in range(position, len(self.entries)):
            yield index, self.entries[index]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SideFile {self.index_name} n={len(self.entries)} "
                f"durable={self.durable_length}>")


def register_sidefile_operations(system: "System") -> None:
    """Install the WAL redo handler for side-file appends."""
    ops = system.log.operations
    if ops.knows("sidefile.append"):
        return
    ops.register("sidefile.append", redo=_redo_sidefile_append)


def _redo_sidefile_append(system: "System", record: LogRecord):
    _op, args = record.redo
    sidefile = system.sidefiles.get(args["index"])
    if sidefile is not None:
        sidefile.redo_append(record)
    return
    yield  # pragma: no cover - generator shape
