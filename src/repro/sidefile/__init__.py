"""Append-only side-file (SF algorithm, section 3)."""

from repro.sidefile.frontier import Partition, ScanFrontier, partition_pages
from repro.sidefile.sidefile import (
    DELETE,
    INSERT,
    SideFile,
    SideFileEntry,
    register_sidefile_operations,
)

__all__ = [
    "DELETE",
    "INSERT",
    "Partition",
    "ScanFrontier",
    "SideFile",
    "SideFileEntry",
    "partition_pages",
    "register_sidefile_operations",
]
