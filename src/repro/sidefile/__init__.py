"""Append-only side-file (SF algorithm, section 3)."""

from repro.sidefile.sidefile import (
    DELETE,
    INSERT,
    SideFile,
    SideFileEntry,
    register_sidefile_operations,
)

__all__ = [
    "DELETE",
    "INSERT",
    "SideFile",
    "SideFileEntry",
    "register_sidefile_operations",
]
