"""Media recovery: image copies plus archived-log replay.

Section 2.2.3 motivates NSF's logging with exactly this: "Logging by IB
ensures that ... (2) media recovery can be supported without the user
being forced to take an image (dump) copy of the index immediately after
the index build completes."  The flip side (section 3.1) is that SF's IB
"does not write log records for the inserts of keys that it extracts",
so an SF-built index is *not* reconstructible from a pre-build image copy
plus the log -- its owner must dump it after the build.

:func:`take_image_copy` captures the stable state (a fuzzy copy is
unnecessary at simulator fidelity); :func:`media_restore` rebuilds a
system from the copy and replays the *entire* archived log from the copy
point, then rolls back losers -- standard ARIES media recovery, reusing
the restart machinery.  Footnote 8 of the paper (log records may be
discarded once image copies cover them) is the retention policy this
enables.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.storage.disk import Disk
from repro.system import System, SystemConfig
from repro.wal.manager import LogManager

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass
class ImageCopy:
    """A point-in-time dump of stable storage."""

    #: LSN up to which this copy reflects the database
    copy_lsn: int
    #: stable page images, cloned
    pages: dict = field(default_factory=dict)
    #: per-index (snapshot blob, durable_lsn); indexes created after the
    #: copy are simply absent
    trees: dict = field(default_factory=dict)
    #: per-side-file durable entries
    sidefiles: dict = field(default_factory=dict)
    #: catalog description so restore can rebuild schema
    catalog: dict = field(default_factory=dict)


def take_image_copy(system: System) -> ImageCopy:
    """Dump the current *stable* state (disk, forced index snapshots,
    durable side-file prefixes) plus the catalog."""
    image = ImageCopy(copy_lsn=system.log.flushed_lsn)
    for page_id in list(system.disk._images):
        image.pages[page_id] = system.disk._images[page_id].clone()
    for name, descriptor in system.indexes.items():
        tree = descriptor.tree
        if tree._snapshot is not None:
            image.trees[name] = (_copy.deepcopy(tree._snapshot),
                                 tree._snapshot_durable_lsn)
    for name, sidefile in system.sidefiles.items():
        image.sidefiles[name] = [
            sidefile.entries[i] for i in range(sidefile.durable_length)]
    image.catalog = {
        "tables": {
            table.name: {
                "columns": list(table.columns),
                "page_capacity": getattr(table, "page_capacity", None),
            }
            for table in system.tables.values()
            if hasattr(table, "page_capacity")
        },
        "indexes": {
            name: {
                "table": descriptor.table.name,
                "key_columns": list(descriptor.key_columns),
                "unique": descriptor.unique,
                "state": descriptor.state.value,
            }
            for name, descriptor in system.indexes.items()
        },
    }
    system.metrics.incr("media.image_copies")
    return image


def media_restore(image: ImageCopy, log: LogManager,
                  config: Optional[SystemConfig] = None,
                  current_system: Optional[System] = None) -> System:
    """Rebuild a system from ``image`` + the archived ``log``.

    Replays every logged, redoable change with an LSN above what the
    image reflects (page-level and tree-level gating make the replay
    idempotent), then rolls back transactions that never committed.
    ``current_system``, when given, supplies catalog entries created
    after the image was taken (a real system reads them from recovered
    catalog tables).
    """
    from repro.core.descriptor import IndexDescriptor, IndexState
    from repro.core.maintenance import install_maintenance
    from repro.recovery.restart import (_analysis, _recover_page_counts,
                                        _redo_then_undo)
    from repro.sidefile import SideFile, register_sidefile_operations

    disk = Disk()
    for page_id, page in image.pages.items():
        disk._images[page_id] = page.clone()
    system = System(config or SystemConfig(), disk=disk, log=log)

    catalog = dict(image.catalog)
    if current_system is not None:
        for table in current_system.tables.values():
            if hasattr(table, "page_capacity"):
                catalog["tables"].setdefault(table.name, {
                    "columns": list(table.columns),
                    "page_capacity": table.page_capacity,
                })
        for name, descriptor in current_system.indexes.items():
            catalog["indexes"].setdefault(name, {
                "table": descriptor.table.name,
                "key_columns": list(descriptor.key_columns),
                "unique": descriptor.unique,
                "state": descriptor.state.value,
            })

    for name, info in catalog["tables"].items():
        system.create_table(name, info["columns"],
                            page_capacity=info["page_capacity"])
    for name, info in catalog["indexes"].items():
        table = system.tables[info["table"]]
        descriptor = IndexDescriptor(system, table, name,
                                     info["key_columns"],
                                     unique=info["unique"])
        descriptor.state = IndexState(info["state"])
        snapshot = image.trees.get(name)
        if snapshot is not None:
            blob, durable_lsn = snapshot
            descriptor.tree._deserialize(_copy.deepcopy(blob))
            descriptor.tree.durable_lsn = durable_lsn
        descriptor.attach()
    for name, entries in image.sidefiles.items():
        sidefile = SideFile(system, name)
        sidefile.entries = list(entries)
        sidefile.durable_length = len(entries)
        system.sidefiles[name] = sidefile
    register_sidefile_operations(system)
    for table in system.tables.values():
        if table.indexes:
            install_maintenance(system, table)

    checkpoint = log.latest_checkpoint()
    txn_table, _redo_start = _analysis(system, checkpoint)
    _recover_page_counts(system)
    # Media recovery replays from the beginning of the archived log;
    # Page-LSN / durable_lsn gating skips whatever the image already has.
    proc = system.spawn(_redo_then_undo(system, txn_table, redo_start=1),
                        name="media-recovery")
    system.run()
    if proc.error is not None:  # pragma: no cover - recovery bug
        raise proc.error
    _recover_page_counts(system)
    system.metrics.incr("media.restores")
    return system
