"""ARIES-lite restart recovery.

After a crash, :func:`restart` rebuilds a consistent system from the
surviving stable state (disk pages, forced log prefix, forced index
snapshots, forced side-file prefixes):

1. **Analysis** -- from the latest checkpoint, reconstruct the transaction
   table (who was active, their last LSN) and pick the redo starting point.
2. **Redo** -- repeat history: every redo payload from the starting point
   is re-applied through the operation registry.  Idempotence is per
   resource: heap pages gate on Page-LSN, index trees on their snapshot
   watermark (``durable_lsn``), side-files on entry LSNs.
3. **Undo** -- roll back loser transactions with compensation log records,
   exactly as live rollback does (section 2.2.3: "the index would be in a
   structurally consistent state after restart recovery").

The function returns the new :class:`~repro.system.System` plus the
``utility_state`` of the latest checkpoint, which the interrupted
index-build utility uses to resume (sections 2.2.3, 3.2.4, 5).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.sidefile import register_sidefile_operations
from repro.system import System, SystemConfig
from repro.txn.transaction import Transaction
from repro.wal.records import RecordKind

if TYPE_CHECKING:  # pragma: no cover
    pass

PreUndoHook = Callable[[System, dict], None]


def restart(crashed: System, config: Optional[SystemConfig] = None,
            pre_undo: Optional[PreUndoHook] = None
            ) -> tuple[System, dict]:
    """Run restart recovery; returns ``(new_system, utility_state)``.

    ``pre_undo`` runs after redo and before the undo pass -- index-build
    resume logic uses it to reinstall the build context (scan position,
    Index_Build flag) that Figure 2's undo logic consults.
    """
    crashed.crash()  # idempotent: ensures volatile state is gone
    system = System(config or crashed.config,
                    disk=crashed.disk, log=crashed.log)
    txn_table, redo_start, utility_state = \
        _prepare_restart(crashed, system, pre_undo)

    proc = system.spawn(_redo_then_undo(system, txn_table, redo_start),
                        name="restart-recovery")
    system.run()
    if proc.error is not None:  # pragma: no cover - recovery bug
        raise proc.error

    _recover_page_counts(system)
    system.metrics.incr("recovery.restarts")
    return system, utility_state


def restart_on(crashed: System, sim,
               config: Optional[SystemConfig] = None,
               pre_undo: Optional[PreUndoHook] = None):
    """Generator form of :func:`restart` for an already-running simulator.

    A cluster node recovers *while the rest of the cluster keeps
    running*: the new system joins the shared ``sim`` and the redo/undo
    pass executes inline in the calling process instead of draining a
    private simulator.  Returns ``(new_system, utility_state)``.
    """
    crashed.crash()
    system = System(config or crashed.config,
                    disk=crashed.disk, log=crashed.log, sim=sim)
    txn_table, redo_start, utility_state = \
        _prepare_restart(crashed, system, pre_undo)
    yield from _redo_then_undo(system, txn_table, redo_start)
    _recover_page_counts(system)
    system.metrics.incr("recovery.restarts")
    return system, utility_state


def _prepare_restart(crashed: System, system: System,
                     pre_undo: Optional[PreUndoHook]
                     ) -> tuple[dict, int, dict]:
    """Synchronous recovery prep shared by :func:`restart`/:func:`restart_on`.

    Carries the tracer across the crash boundary, rebuilds the catalog,
    runs analysis, and plans torn-tree strategies; returns the
    ``(txn_table, redo_start, utility_state)`` inputs the redo/undo pass
    needs.
    """
    # Carry the trace recorder across the crash boundary: one trace tells
    # the whole build-crash-recover story.  Re-binding advances the
    # recorder's time base so the new simulator's t=0 lands at the crash
    # instant (see repro.obs.recorder.TraceRecorder.bind).
    tracer = getattr(crashed.metrics, "tracer", None)
    if tracer is not None:
        tracer.bind(system.sim)
        system.metrics.tracer = tracer
        tracer.instant("system.restart",
                       stable_lsn=crashed.log.flushed_lsn)
    # Progress tracking survives the same way: the tracker re-attaches so
    # the resumed build reports resumed progress, not 0%.
    progress = getattr(crashed.metrics, "progress", None)
    if progress is not None:
        system.metrics.progress = progress
        progress.bind(system)
    _rebuild_catalog(crashed, system)

    checkpoint = system.log.latest_checkpoint()
    utility_state = dict(checkpoint.info.get("utility_state", {})) \
        if checkpoint is not None else {}
    system.utility_states = _collect_utility_states(checkpoint,
                                                    utility_state)
    _discard_orphan_builds(system, utility_state)

    txn_table, redo_start = _analysis(system, checkpoint)
    redo_start = _plan_damaged_trees(system, utility_state, redo_start)
    _recover_page_counts(system)  # undo handlers need valid page bounds

    if pre_undo is not None:
        pre_undo(system, utility_state)
    return txn_table, redo_start, utility_state


def _collect_utility_states(checkpoint, utility_state: dict) -> dict:
    """Rebuild the per-table build registry from the checkpoint.

    Concurrent builds mirror the whole registry into each checkpoint
    record (``utility_states``); older or single-build records carry
    only the writer's own payload, which becomes a one-entry registry.
    Finished ("done") builds need no resume and are dropped.
    """
    states: dict[str, dict] = {}
    raw = checkpoint.info.get("utility_states") \
        if checkpoint is not None else None
    if raw:
        states = {name: dict(state) for name, state in raw.items()
                  if state.get("phase") != "done"}
    name = utility_state.get("table")
    if name and utility_state.get("phase") != "done" \
            and name not in states:
        states[name] = utility_state
    return states


def _known_build_indexes(system: System, utility_state: dict) -> set:
    """Index names recorded by *any* build in the surviving checkpoint."""
    known = set(utility_state.get("indexes", []))
    for state in getattr(system, "utility_states", {}).values():
        known.update(state.get("indexes", []))
    return known


# -- catalog ------------------------------------------------------------------


def _rebuild_catalog(crashed: System, system: System) -> None:
    """Recreate tables and adopt the stable index trees and side-files.

    A real DBMS reads its catalog tables here; we transliterate the
    crashed system's catalog, re-pointing the surviving stable structures
    (tree snapshots, side-file prefixes) at the new system.
    """
    from repro.core.descriptor import IndexDescriptor  # lazy: avoid cycle
    from repro.core.maintenance import install_maintenance

    for table in crashed.tables.values():
        if not hasattr(table, "page_capacity"):
            continue  # index-organized tables re-register themselves
        system.create_table(table.name, table.columns,
                            page_capacity=table.page_capacity)
    for name, old_descriptor in crashed.indexes.items():
        table = system.tables[old_descriptor.table.name]
        descriptor = IndexDescriptor(
            system, table, name,
            old_descriptor.key_columns,
            unique=old_descriptor.unique)
        # Adopt the crashed tree object: its pages were already reverted
        # to the stable snapshot by System.crash().
        tree = old_descriptor.tree
        tree.system = system
        descriptor.tree = tree
        descriptor.state = old_descriptor.state
        descriptor.attach()
    for name, sidefile in crashed.sidefiles.items():
        sidefile.system = system
        system.sidefiles[name] = sidefile
    for name, store in crashed.run_stores.items():
        system.run_stores[name] = store
    # Sealed-run manifests ride with their stores: the runs themselves
    # were just carried across (crash() already truncated each to its
    # stable prefix -- sealed runs are forced at seal time, so a valid
    # seal survives intact and a torn one fails rebuild validation).
    for name, manifest in crashed.sealed_runs.items():
        system.sealed_runs[name] = manifest
    register_sidefile_operations(system)
    for table in system.tables.values():
        if table.indexes:
            install_maintenance(system, table)


def _discard_orphan_builds(system: System, utility_state: dict) -> None:
    """Drop BUILDING descriptors the surviving checkpoint never recorded.

    A crash between descriptor creation and the build's first utility
    checkpoint leaves a descriptor (plus side-file and sort-run store)
    with no resume information; the build must be reissued from scratch,
    so detach the orphans instead of recovering into them.
    """
    from repro.core.descriptor import IndexState  # lazy: avoid cycle

    known = _known_build_indexes(system, utility_state)
    for name, descriptor in list(system.indexes.items()):
        if descriptor.state is not IndexState.BUILDING or name in known:
            continue
        descriptor.detach()
        system.sidefiles.pop(name, None)
        system.run_stores.pop(f"sort:{name}", None)
        # A sealed store under an orphan's name can only be a leftover
        # from an earlier same-named index; rebuilding the orphan from it
        # would resurrect the wrong tree.
        system.run_stores.pop(f"sealed:{name}", None)
        system.sealed_runs.pop(name, None)
        system.metrics.incr("recovery.orphan_builds_discarded")
        if system.metrics.tracer is not None:
            system.metrics.tracer.instant("recovery.orphan_discard",
                                          index=name)


def _plan_damaged_trees(system: System, utility_state: dict,
                        redo_start: int) -> int:
    """Choose a rebuild strategy for trees whose stable snapshot was torn.

    An SF build's tree cannot be redone from the log -- the bulk load is
    unlogged (section 3.1) -- so redo and undo skip it entirely
    (``media_damaged`` stays set) and the resumed build re-extracts the
    index from the forced, closed sort runs (section 6).  Any other tree
    is fully logged: reset its redo watermark and replay the whole log.
    """
    from repro.core.maintenance import SF_LIKE_MODES  # lazy: avoid cycle

    sf_indexes = set(utility_state.get("indexes", [])) \
        if utility_state.get("builder") in SF_LIKE_MODES else set()
    for state in getattr(system, "utility_states", {}).values():
        if state.get("builder") in SF_LIKE_MODES:
            sf_indexes.update(state.get("indexes", []))
    for name, descriptor in system.indexes.items():
        tree = descriptor.tree
        if not tree.media_damaged:
            continue
        if name in sf_indexes:
            tree.durable_lsn = float("inf")  # nothing to redo into it
            system.metrics.incr("recovery.torn_trees.sf")
            strategy = "sf-reextract"
        else:
            tree.media_damaged = False
            tree.durable_lsn = 0
            redo_start = 1
            system.metrics.incr("recovery.torn_trees.replayed")
            strategy = "log-replay"
        if system.metrics.tracer is not None:
            system.metrics.tracer.instant("recovery.torn_tree",
                                          index=name, strategy=strategy)
    return redo_start


# -- analysis --------------------------------------------------------------------


def _analysis(system: System, checkpoint) -> tuple[dict, int]:
    """Reconstruct the transaction table; choose the redo start LSN."""
    txn_table: dict[int, dict] = {}
    if checkpoint is not None:
        for txn_id, state in checkpoint.info.get("txn_table", {}).items():
            txn_table[int(txn_id)] = dict(state)
        scan_from = checkpoint.lsn
        dirty = checkpoint.info.get("dirty_pages", {})
        rec_lsns = [int(lsn) for lsn in dirty.values()]
        redo_start = min(rec_lsns + [checkpoint.lsn])
    else:
        scan_from = 1
        redo_start = 1

    max_txn_id = 0
    for record in system.log.scan(from_lsn=scan_from):
        if record.txn_id is None:
            continue
        max_txn_id = max(max_txn_id, record.txn_id)
        if record.kind is RecordKind.END:
            txn_table.pop(record.txn_id, None)
            continue
        entry = txn_table.setdefault(
            record.txn_id, {"first_lsn": record.lsn, "last_lsn": record.lsn,
                            "committed": False})
        entry["last_lsn"] = record.lsn
        if record.kind is RecordKind.COMMIT:
            entry["committed"] = True
    system.txns._next_id = max(max_txn_id,
                               _max_txn_id(system, scan_from))
    system.metrics.incr("recovery.analysis_passes")
    return txn_table, redo_start


def _max_txn_id(system: System, scan_from: int) -> int:
    highest = 0
    for record in system.log.scan():
        if record.txn_id is not None:
            highest = max(highest, record.txn_id)
    return highest


# -- redo and undo -------------------------------------------------------------------


def _redo_then_undo(system: System, txn_table: dict, redo_start: int):
    registry = system.log.operations
    redo_upto = system.log.last_lsn  # CLRs we write go beyond this
    for record in list(system.log.scan(from_lsn=redo_start,
                                       to_lsn=redo_upto)):
        if record.redo is None:
            continue
        op_name, _args = record.redo
        handler = registry.redo(op_name)
        yield from handler(system, record)
    system.metrics.incr("recovery.redo_passes")
    # Redo may have re-created pages the crash lost; refresh the bounds
    # before undo touches them.
    _recover_page_counts(system)

    # Undo losers: uncommitted transactions, youngest first.
    losers = [(txn_id, state) for txn_id, state in txn_table.items()
              if not state.get("committed")]
    losers.sort(reverse=True)
    for txn_id, state in losers:
        txn = Transaction(system, txn_id, name=f"loser-{txn_id}")
        txn.first_lsn = state.get("first_lsn")
        txn.last_lsn = state.get("last_lsn")
        system.txns.active[txn_id] = txn
        yield from txn.rollback()
        system.metrics.incr("recovery.losers_rolled_back")

    # Committed-but-unended transactions need only an END record.
    for txn_id, state in txn_table.items():
        if state.get("committed"):
            system.log.append(txn_id, RecordKind.END, writer="recovery")

    # Bound the next recovery with a fresh (empty) checkpoint.
    system.log.write_checkpoint({}, dict(system.buffer.dirty), {})


# -- post-recovery fixups ----------------------------------------------------------------


def _recover_page_counts(system: System) -> None:
    """Recompute each table's page count from disk and resident frames."""
    for table in system.tables.values():
        highest = -1
        for page_id in system.disk.file_pages(table.name):
            highest = max(highest, page_id.page_no)
        for frame in system.buffer.resident_pages():
            if frame.page_id.file == table.name:
                highest = max(highest, frame.page_id.page_no)
        table.page_count = highest + 1
