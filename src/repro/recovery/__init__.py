"""Restart recovery and crash injection."""

from repro.recovery.crash import crash_process, run_until_crash
from repro.recovery.media import ImageCopy, media_restore, take_image_copy
from repro.recovery.restart import restart

__all__ = [
    "ImageCopy",
    "crash_process",
    "media_restore",
    "restart",
    "run_until_crash",
    "take_image_copy",
]
