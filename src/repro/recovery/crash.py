"""Crash-injection helpers for experiments and tests.

Two styles:

* :func:`run_until_crash` -- run the simulator to a wall-clock instant and
  power the system off there (mid-flight processes are simply abandoned;
  their volatile work is what recovery must cope with);
* :func:`crash_process` -- a spawnable process that raises
  :class:`~repro.errors.SystemCrash` at a chosen simulated time, stopping
  the kernel from inside.

Both are followed by :func:`repro.recovery.restart.restart`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SystemCrash
from repro.sim.kernel import Delay

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System


def run_until_crash(system: "System", at_time: float) -> None:
    """Run the simulator until ``at_time``, then cut the power.

    After this call, volatile state is gone and the system is ready for
    :func:`~repro.recovery.restart.restart`.
    """
    system.run(until=at_time)
    system.crash()


def crash_process(at_time: float):
    """A process body that crashes the whole system at ``at_time``."""
    yield Delay(at_time)
    raise SystemCrash(f"injected power failure at t={at_time}")
