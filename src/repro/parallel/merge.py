"""Simulated-cost, crash-safe merge passes for the parallel build.

The serial builders merge eagerly inside :func:`repro.sort.final_merger`
with no yields: the whole pass is one atomic simulator step, so it is
trivially crash-safe and free on the simulated clock (its cost is folded
into the pipelined load).  The parallel build runs one merge worker per
shard *concurrently*, so each worker must charge simulated time -- which
introduces yield points -- while preserving the crash invariant:

    at every yield, the set of closed+forced runs in the store holds each
    key exactly once.

:func:`sim_merge_pass` keeps that invariant the same way the serial
:func:`repro.sort.merge_pass` does, just spread over time: the output run
stays volatile (never forced) while the merge is in flight, and the
completion step -- close + force the output, discard the inputs -- is
synchronous.  A crash mid-merge therefore drops the partial output
(:meth:`RunStore.crash` discards never-forced runs) and leaves the closed
inputs intact; a crash after completion sees only the merged output.
Either way the resumed build rebuilds its final merger from exactly the
surviving closed runs (section 5.2's restart argument, applied at pass
granularity instead of the counter vector).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import SortRestartError
from repro.faultinject.sites import fault_point
from repro.sim.kernel import Delay
from repro.sort.merge import RestartableMerger
from repro.sort.runs import RunStore, SortRun

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

#: keys merged between two simulated-time charges
MERGE_BATCH = 256


def sim_merge_pass(system: "System", store: RunStore,
                   runs: list[SortRun], fanin: int,
                   shard: Optional[int] = None):
    """Generator: one merge pass charging ``merge_key_cost`` per key.

    Groups of ``fanin`` runs collapse into one run each, exactly like
    :func:`repro.sort.merge_pass`; returns the merged run list.
    """
    if fanin < 2:
        raise SortRestartError("merge fan-in must be at least 2")
    cost = system.config.merge_key_cost
    merged: list[SortRun] = []
    for start in range(0, len(runs), fanin):
        group = runs[start:start + fanin]
        if len(group) == 1:
            merged.append(group[0])
            continue
        output = store.new_run()
        merger = RestartableMerger(group, output)
        while True:
            batch = merger.pop_many(MERGE_BATCH)
            if not batch:
                break
            yield Delay(len(batch) * cost)
            if shard is not None:
                system.metrics.incr(f"psf.merge_keys.{shard}", len(batch))
            fault_point(system.metrics, "psf.merge_batch")
        # Atomic completion (no yields): the output becomes the one
        # stable copy of these keys in the same step the inputs vanish.
        output.closed = True
        output.force()
        for run in group:
            store.discard(run.name)
        merged.append(output)
        fault_point(system.metrics, "psf.merge_run_done")
    return merged


def sim_merge_until(system: "System", store: RunStore,
                    runs: list[SortRun], fanin: int, target: int,
                    shard: Optional[int] = None):
    """Generator: repeat simulated merge passes until ``target`` runs
    remain (or one pass can no longer shrink the list)."""
    current = list(runs)
    while len(current) > max(1, target):
        before = len(current)
        current = yield from sim_merge_pass(system, store, current, fanin,
                                            shard=shard)
        if len(current) >= before:  # pragma: no cover - fanin >= 2
            break
    return current
