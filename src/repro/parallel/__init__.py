"""Partitioned parallel online index build (algorithm PSF).

SF's scan+sort phase, range-partitioned into P shards running as
concurrent kernel processes; see :mod:`repro.parallel.builder` for the
full phase walkthrough.  Import cycle note: :mod:`repro.core` must never
import this package at module level -- lookups go through
:func:`repro.core.get_builder` instead.
"""

from repro.parallel.builder import (
    DEFAULT_PARTITIONS,
    ParallelSFBuilder,
    psf_pre_undo,
)
from repro.parallel.merge import sim_merge_pass, sim_merge_until

__all__ = [
    "DEFAULT_PARTITIONS",
    "ParallelSFBuilder",
    "psf_pre_undo",
    "sim_merge_pass",
    "sim_merge_until",
]
