"""Algorithm PSF: partitioned parallel side-file index build.

The paper's SF (section 3) is single-scanner: one IB process scans the
heap, feeds a pipelined sort, bulk-loads bottom-up, drains the side-file.
Its own cost analysis (section 6) shows the scan+sort phase dominating --
exactly the part that partitions cleanly.  PSF range-partitions the
table's page space into P shards and runs the paper's phase 2 once per
shard, concurrently:

1. **Descriptor creation without quiesce** -- as SF, plus a
   :class:`~repro.sidefile.ScanFrontier` (one Current-RID per shard)
   installed in the build context.  Updaters route maintenance with the
   generalized test ``Target-RID < frontier[shard_of(page)]`` (Figure 1,
   applied shard-wise).
2. **Parallel scan + run formation** -- one kernel process per shard
   scans its page range (the last shard chases end of file, section
   3.2.2), pushes keys into that shard's replacement-selection sorter,
   and advances its own frontier entry under the page latch.  Each worker
   checkpoints *independently*: it updates its slot in a shared build
   manifest (per-shard sort checkpoints + scan positions) and writes the
   whole manifest as one utility checkpoint, so a crash resumes only the
   unfinished shards.  Workers rendezvous at a kernel
   :class:`~repro.sim.kernel.Barrier`.
3. **Parallel shard merge** -- one worker per shard collapses its runs to
   ``merge_fanin // P`` runs (simulated merge cost, crash-safe at pass
   granularity -- see :mod:`repro.parallel.merge`), then the coordinator
   builds the usual streaming final merger over all shards' survivors.
4. **Bulk load + side-file drain** -- byte-for-byte SF's phases 3 and 4,
   inherited from :class:`~repro.core.sf.SFIndexBuilder` and the shared
   :class:`~repro.core.drain.SideFileDrainer`.

Because ``Delay`` models I/O, shard scans overlap on the simulated clock
and the scan+sort phase shortens near-linearly in P until the serial
load+drain tail dominates (Amdahl); ``bench/perf.py``'s ``parallel_sf``
scenarios record the sweep.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.maintenance import BuildContext, PSF_MODE, \
    install_maintenance
from repro.core.sf import SFIndexBuilder
from repro.core.base import IndexSpec
from repro.faultinject.sites import fault_point, fault_points_enabled
from repro.parallel.merge import sim_merge_until
from repro.sidefile import ScanFrontier, SideFile, partition_pages, \
    register_sidefile_operations
from repro.sim.kernel import Acquire, Barrier, Delay, ProcessGroup
from repro.sim.latch import SHARE
from repro.sort import RunFormation
from repro.storage.rid import INFINITY_RID, RID

if TYPE_CHECKING:  # pragma: no cover
    from repro.system import System

#: default shard count when neither the constructor nor the options say
DEFAULT_PARTITIONS = 2


class ParallelSFBuilder(SFIndexBuilder):
    """Partitioned parallel Side-File online index builder."""

    mode = PSF_MODE

    def __init__(self, system, table, specs, options=None,
                 partitions: Optional[int] = None):
        super().__init__(system, table, specs, options)
        if partitions is None:
            partitions = self.options.partitions or DEFAULT_PARTITIONS
        if partitions < 1:
            raise ValueError(f"need at least one partition, got {partitions}")
        self.partitions = partitions
        #: shard id -> {"done", "next_page", "ckpt_page", "sort", "runs"};
        #: the shared build manifest every worker checkpoint rewrites
        self._shard_states: dict[int, dict] = {}
        #: shard id -> {index name -> RunFormation}
        self._shard_sorters: dict[int, dict[str, RunFormation]] = {}

    @property
    def _shard_workspace(self) -> int:
        """Replacement-selection slots per shard: the serial workspace is
        split across shards so total sort memory stays comparable."""
        return max(2, self.sort_workspace // self.partitions)

    # -- main process ------------------------------------------------------

    def run(self):
        """Generator process body (the coordinator)."""
        self._mark("start")
        self._trace_begin("build", mode=self.mode, table=self.table.name,
                          indexes=[s.name for s in self.specs],
                          partitions=self.partitions,
                          resumed=self._resume_state is not None)
        if self._resume_state is None:
            self._descriptor_phase()
            phase = "pscan"
            loaded: list[str] = []
            drained: list[str] = []
            mergers: dict = {}
            drain_positions: dict[str, int] = {}
        else:
            (phase, _scan_start, loaded, drained, mergers,
             drain_positions) = self._prepare_resume()

        if phase == "pscan":
            yield from self._parallel_scan_phase()
            # Every shard frontier is at infinity now; keep the scalar
            # Current-RID in sync for the serial-path consumers (§3.2.2).
            self.context.current_rid = INFINITY_RID
            self._mark("scan_done")
            self._progress_phase_done("scan")
            fault_point(self.system.metrics, "psf.scan_done")
            # Transition checkpoint, exactly as SF: from here a crash
            # resumes by rebuilding the merge from forced, closed runs --
            # which is also the crash contract of the parallel shard
            # merges below (see repro.parallel.merge).
            self._write_utility_checkpoint({
                "phase": "load-start", "loaded_indexes": []})
            mergers = yield from self._parallel_merge_phase()
            self._mark("pmerge_done")
            self._progress_phase_done("merge")
            phase = "load"

        yield from self._load_and_drain(phase, loaded, drained, mergers,
                                        drain_positions)

        self._remove_context()
        self._write_utility_checkpoint({"phase": "done"})
        self._mark("done")
        self._progress_finish()
        self._trace_end("build")
        return self.descriptors

    # -- phase 1: descriptor + frontier without quiesce ---------------------

    def _descriptor_phase(self) -> None:
        self._create_descriptors()
        register_sidefile_operations(self.system)
        for descriptor in self.descriptors:
            self.system.sidefiles[descriptor.name] = SideFile(
                self.system, descriptor.name)
        frontier = ScanFrontier(
            partition_pages(self.table.page_count, self.partitions))
        self._install_context(current_rid=RID(0, 0), index_build=True,
                              frontier=frontier)
        self.system.metrics.observe("build.quiesce_wait", 0.0)
        self.system.metrics.observe("build.quiesce_hold", 0.0)
        for partition in frontier.partitions:
            state = {"done": False, "next_page": partition.start,
                     "ckpt_page": partition.start, "sort": {}, "runs": {}}
            self._shard_states[partition.index] = state
            self._shard_sorters[partition.index] = {
                d.name: self._new_sorter(d, workspace=self._shard_workspace)
                for d in self.descriptors}
            self.system.metrics.observe(
                f"psf.shard_pages.{partition.index}", partition.pages)
        self._checkpoint_shards()
        self._mark("descriptor_done")
        fault_point(self.system.metrics, "psf.descriptor_done")

    # -- phase 2: partitioned parallel scan ---------------------------------

    def _parallel_scan_phase(self):
        """Spawn one scan worker per unfinished shard; rendezvous at the
        barrier, then join (propagating worker errors)."""
        sim = self.system.sim
        pending = [shard for shard, state in sorted(self._shard_states.items())
                   if not state["done"]]
        if not pending:
            return
        self._progress_scan(0, self.table.page_count)
        barrier = Barrier(sim, parties=len(pending) + 1)
        group = ProcessGroup(sim, name="psf-scan")
        self._trace_begin("scan", workers=len(pending))
        for shard in pending:
            group.spawn(self._shard_worker(shard, barrier),
                        name=f"psf-worker-{shard}")
        self.system.metrics.incr("psf.scan_workers", len(pending))
        yield from barrier.wait()
        fault_point(self.system.metrics, "psf.barrier")
        yield from group.join_all()
        self._trace_end("scan")

    def _shard_worker(self, shard: int, barrier: Barrier):
        """One shard's process: scan -> seal runs -> checkpoint -> barrier."""
        started = self.system.sim.now
        self._trace_begin("shard-scan", key=f"shard-scan:{shard}",
                          parent=self._trace_span_id("scan"), shard=shard)
        yield from self._shard_scan(shard)
        state = self._shard_states[shard]
        sorters = self._shard_sorters[shard]
        # Seal this shard's sort: runs closed + forced, names into the
        # manifest; the shard's frontier jumps to infinity (its whole
        # range is now extracted) -- all synchronous, then checkpointed.
        state["runs"] = {name: [run.name for run in sorter.finish()]
                         for name, sorter in sorters.items()}
        state["sort"] = {}
        state["done"] = True
        self.context.frontier.finish(shard)
        first = next(iter(sorters.values()), None)
        metrics = self.system.metrics
        metrics.observe(f"psf.shard_keys.{shard}",
                        first.keys_pushed if first is not None else 0)
        metrics.observe(f"psf.shard_scan_time.{shard}",
                        self.system.sim.now - started)
        fault_point(metrics, "psf.worker_done")
        self._checkpoint_shards()
        arrived = self.system.sim.now
        yield from barrier.wait()
        # The gap between arriving at the rendezvous and the barrier
        # releasing is pure skew: straggler shards show up as near-zero
        # barrier_wait, early finishers as large ones.
        self._trace_end(f"shard-scan:{shard}",
                        barrier_wait=self.system.sim.now - arrived)

    def _shard_scan(self, shard: int):
        """The per-shard copy of the paper's scan loop (section 3.2.2):
        prefetch batches, share-latch each page, extract keys into this
        shard's sorters, advance this shard's frontier under the latch."""
        frontier = self.context.frontier
        partition = frontier.partitions[shard]
        table = self.table
        state = self._shard_states[shard]
        page_no = state["next_page"]
        checkpoint_every = self.options.checkpoint_every_pages
        pages_since_checkpoint = 0
        metrics = self.system.metrics
        extractors = [(d.key_of, self._shard_sorters[shard][d.name].push)
                      for d in self.descriptors]
        fp_enabled = fault_points_enabled(metrics)
        while True:
            # The last shard chases the end of file: extensions made ahead
            # of its frontier produced no side-file entries (§3.2.2).
            limit = table.page_count if partition.chases_eof \
                else partition.end
            if page_no >= limit:
                break
            upto = min(page_no + self.prefetch_pages, limit)
            batch_ids = [table.page_id(p) for p in range(page_no, upto)]
            # Shard workers share the coordinator's one bucket, so the
            # build's *total* scan rate is limited, not each shard's.
            yield from self._throttle(len(batch_ids))
            pages = yield from self.system.buffer.fetch_sequential(batch_ids)
            for page in pages:
                yield Acquire(page.latch, SHARE)
                try:
                    records = page.live_records()
                    for rid, record in records:
                        raw = tuple(rid)
                        for key_of, push in extractors:
                            push((key_of(record), raw))
                        if fp_enabled:
                            fault_point(metrics, "build.sort_push")
                    if records:
                        yield Delay(len(records)
                                    * self.options.key_extract_cost)
                    # Advance this shard's Current-RID, still under the
                    # page latch (section 3.1's protocol, per shard).
                    frontier.advance(
                        shard, RID(page.page_id.page_no + 1, 0))
                finally:
                    page.latch.release(self.system.sim.current)
                metrics.incr("build.pages_scanned")
                metrics.incr(f"psf.pages_scanned.{shard}")
                self._progress_scan(1, 0)
                fault_point(metrics, "psf.worker.scan_page")
                if fp_enabled and self._codecs:
                    self._codec_fault_points(metrics)
            pages_since_checkpoint += len(batch_ids)
            page_no = upto
            state["next_page"] = page_no
            if checkpoint_every is not None \
                    and pages_since_checkpoint >= checkpoint_every \
                    and page_no < limit:
                self._checkpoint_shard_progress(shard, page_no)
                pages_since_checkpoint = 0
        return page_no

    # -- independent worker checkpoints -------------------------------------

    def _checkpoint_shard_progress(self, shard: int, next_page: int) -> None:
        """One worker's sort-phase checkpoint (section 5.1, per shard):
        drain + force this shard's runs, record the manifests and the
        restart scan position, rewrite the shared build manifest."""
        fault_point(self.system.metrics, "psf.worker.checkpoint")
        state = self._shard_states[shard]
        state["sort"] = {
            name: sorter.checkpoint(scan_position=next_page)
            for name, sorter in self._shard_sorters[shard].items()}
        state["next_page"] = next_page
        state["ckpt_page"] = next_page
        self._checkpoint_shards()
        self.system.metrics.incr("build.scan_checkpoints")

    def _checkpoint_shards(self) -> None:
        """Write the whole build manifest as one utility checkpoint.

        Synchronous, so the manifest is globally consistent: every other
        shard's slot is exactly its own last checkpoint (slots only
        change inside a worker's synchronous checkpoint step).
        """
        shards = {
            shard: {"done": state["done"],
                    "next_page": state["next_page"],
                    "ckpt_page": state["ckpt_page"],
                    "sort": dict(state["sort"]),
                    "runs": {name: list(names)
                             for name, names in state["runs"].items()}}
            for shard, state in self._shard_states.items()}
        self._write_utility_checkpoint({
            "phase": "pscan",
            "partitions": self.partitions,
            "shards": shards,
        })
        self.system.metrics.incr("psf.manifest_checkpoints")
        fault_point(self.system.metrics, "psf.manifest_checkpoint")

    # -- phase 3a: parallel shard merge -------------------------------------

    def _parallel_merge_phase(self):
        """Collapse each shard's runs concurrently, then build the final
        streaming merger per index over all shards' survivors."""
        sim = self.system.sim
        shards = sorted(self._shard_states)
        per_shard = max(1, self.merge_fanin // max(1, len(shards)))
        group = ProcessGroup(sim, name="psf-merge")
        self._trace_begin("merge", workers=len(shards))
        for shard in shards:
            group.spawn(self._shard_merge_worker(shard, per_shard),
                        name=f"psf-merge-{shard}")
        yield from group.join_all()
        self._trace_end("merge")
        fault_point(self.system.metrics, "psf.merge_done")
        mergers = {}
        for descriptor in self.descriptors:
            store = self._store_for(descriptor)
            runs = []
            for shard in shards:
                names = self._shard_states[shard]["runs"].get(
                    descriptor.name, [])
                runs.extend(store.get(name) for name in names)
            mergers[descriptor.name] = self._final_merger(descriptor, runs)
        return mergers

    def _shard_merge_worker(self, shard: int, target: int):
        """One shard's merge process: reduce its runs per index down to
        ``target`` with simulated-cost, crash-safe passes."""
        state = self._shard_states[shard]
        self._trace_begin("shard-merge", key=f"shard-merge:{shard}",
                          parent=self._trace_span_id("merge"), shard=shard)
        for descriptor in self.descriptors:
            store = self._store_for(descriptor)
            runs = [store.get(name)
                    for name in state["runs"].get(descriptor.name, [])]
            merged = yield from sim_merge_until(
                self.system, store, runs, self.merge_fanin, target,
                shard=shard)
            state["runs"][descriptor.name] = [run.name for run in merged]
        self._trace_end(f"shard-merge:{shard}")
        fault_point(self.system.metrics, "psf.merge_shard_done")

    # -- restart ------------------------------------------------------------

    @classmethod
    def resume(cls, system: "System", utility_state: dict
               ) -> "ParallelSFBuilder":
        table = system.tables[utility_state["table"]]
        specs = [IndexSpec(name, tuple(cols), unique)
                 for name, cols, unique in utility_state["specs"]]
        builder = cls(system, table, specs,
                      partitions=utility_state.get("partitions")
                      or _manifest_partitions(utility_state) or 1)
        builder.descriptors = [system.indexes[name]
                               for name in utility_state["indexes"]]
        register_sidefile_operations(system)
        install_maintenance(system, table)
        context = system.builds.get(table.name)
        if context is None:
            context = psf_pre_undo(system, utility_state) \
                or BuildContext(mode=PSF_MODE,
                                descriptors=list(builder.descriptors))
            system.builds[table.name] = context
        builder.context = context
        builder._resume_state = utility_state
        builder._restore_throttle(utility_state)
        builder._restore_progress(utility_state)
        builder._restore_codec(utility_state)
        return builder

    def _prepare_resume(self):
        state = self._resume_state
        if state.get("phase") != "pscan":
            # load-start / load / drain / done: SF's resume path applies
            # verbatim (rebuild mergers from surviving closed runs, torn
            # fallback, drain positions); just seal the frontier first.
            result = super()._prepare_resume()
            if self.context is not None \
                    and self.context.frontier is not None:
                self.context.frontier.finish_all()
            return result
        # pscan: restore only the unfinished shards.  The frontier in the
        # context was rebuilt by psf_pre_undo from each shard's own last
        # checkpoint, so visibility during recovery matched the scan
        # restart positions computed here.
        for descriptor in self.descriptors:
            if descriptor.tree.media_damaged:
                self._reset_tree(descriptor.tree)
        frontier = self.context.frontier
        if frontier is None:
            frontier = _frontier_from_state(state)
            self.context.frontier = frontier
        keep: list[str] = []
        self._shard_states = {}
        self._shard_sorters = {}
        resumed_shards = 0
        for shard_key, raw in state.get("shards", {}).items():
            shard = int(shard_key)
            shard_state = {"done": bool(raw.get("done")),
                           "next_page": raw.get("next_page", 0),
                           "ckpt_page": raw.get("ckpt_page", 0),
                           "sort": dict(raw.get("sort", {})),
                           "runs": {name: list(names) for name, names
                                    in raw.get("runs", {}).items()}}
            self._shard_states[shard] = shard_state
            if shard_state["done"]:
                frontier.finish(shard)
                for names in shard_state["runs"].values():
                    keep.extend(names)
                continue
            resumed_shards += 1
            sorters: dict[str, RunFormation] = {}
            restart_page = frontier.partitions[shard].start
            for descriptor in self.descriptors:
                manifest = shard_state["sort"].get(descriptor.name)
                if manifest is not None:
                    sorter, restart_page = self._restore_sorter(
                        descriptor, manifest,
                        workspace=self._shard_workspace, prune=False)
                    keep.extend(manifest["runs"])
                else:
                    sorter = self._new_sorter(
                        descriptor, workspace=self._shard_workspace)
                sorters[descriptor.name] = sorter
            self._shard_sorters[shard] = sorters
            shard_state["next_page"] = restart_page
            shard_state["ckpt_page"] = restart_page
            frontier.current[shard] = RID(restart_page, 0)
        # One union prune per store: discard runs no checkpointed shard
        # references ("discard any output sorted streams that did not
        # exist as of the last checkpoint", section 5.1, shard-wise).
        for descriptor in self.descriptors:
            self._store_for(descriptor).keep_only(keep)
        self.system.metrics.incr("build.resumes.scan")
        self.system.metrics.incr("psf.resumed_shards", resumed_shards)
        self.system.metrics.incr(
            "psf.skipped_shards", len(self._shard_states) - resumed_shards)
        return "pscan", 0, [], [], {}, {}


def _manifest_partitions(utility_state: dict) -> int:
    manifest = utility_state.get("frontier")
    if manifest is None:
        return 0
    return len(manifest.get("partitions", ()))


def _frontier_from_state(utility_state: dict) -> ScanFrontier:
    """Rebuild the frontier vector from a PSF utility checkpoint.

    For the scan phase each shard's Current-RID comes from *that shard's*
    last checkpointed scan position, NOT the live frontier at manifest
    write time: keys scanned past a shard's checkpoint died with the
    crash and will be re-extracted, so recovery-time visibility must
    treat them as unscanned (the shard-wise version of resuming the
    serial scan from its checkpoint, section 5.1).
    """
    manifest = utility_state.get("frontier")
    if manifest is not None:
        frontier = ScanFrontier.from_manifest(manifest)
    else:  # pre-frontier checkpoint: degenerate single shard
        frontier = ScanFrontier(partition_pages(0, 1))
    phase = utility_state.get("phase")
    if phase != "pscan":
        frontier.finish_all()
        return frontier
    for shard_key, raw in utility_state.get("shards", {}).items():
        shard = int(shard_key)
        if shard >= len(frontier.current):
            continue
        if raw.get("done"):
            frontier.finish(shard)
        else:
            start = frontier.partitions[shard].start
            frontier.current[shard] = RID(raw.get("ckpt_page", start), 0)
    return frontier


def psf_pre_undo(system: "System", utility_state: dict
                 ) -> Optional[BuildContext]:
    """Reinstall the PSF build context before recovery's undo pass.

    The parallel analogue of :func:`repro.core.sf.sf_pre_undo`: Figure
    2's count comparison needs the checkpointed frontier vector and
    Index_Build flag to classify visibility during loser rollback.
    """
    if utility_state.get("builder") != PSF_MODE:
        return None
    if utility_state.get("phase") == "done":
        return None
    table = system.tables[utility_state["table"]]
    descriptors = [system.indexes[name]
                   for name in utility_state["indexes"]
                   if name in system.indexes]
    frontier = _frontier_from_state(utility_state)
    current_rid = INFINITY_RID if frontier.done else RID(0, 0)
    context = BuildContext(
        mode=PSF_MODE,
        descriptors=descriptors,
        current_rid=current_rid,
        index_build=bool(utility_state.get("index_build", True)),
        frontier=frontier,
    )
    system.builds[table.name] = context
    return context
