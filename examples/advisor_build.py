"""Advisor-driven multi-index build: pick, build in one scan, watch p99.

The pipeline the paper's section 6.2 makes cheap: a workload-aware
advisor (:mod:`repro.advisor`) reads the *traffic spec itself* -- which
columns the range queries filter on, how often, how selectively -- and
picks the index set with the best estimated benefit per storage page.
The picks are then built by ONE shared-scan
:class:`~repro.multibuild.MultiIndexBuilder` while the very traffic that
justified them keeps running.

Each index flips AVAILABLE independently (load -> drain -> flip, one
index at a time after the shared scan), so the foreground improves in
steps: every flip moves one column's range reads off the full table
scan and onto the new index.  The output shows the flip instants, the
range-read latency before / during / after the flips (the open-loop
backlog that piles up behind full scans drains once the indexes serve
them), and the per-column via-index / via-scan counters -- each column's
reads switch paths as its index arrives.

Run:  python examples/advisor_build.py
"""

from repro.advisor import AdvisorConfig, TableStats, recommend, \
    templates_from_spec
from repro.core import BuildOptions
from repro.multibuild import MultiIndexBuilder
from repro.system import System, SystemConfig
from repro.workloads import OpenLoopDriver, OpenLoopSpec

SEED = 11
ROWS = 320
OPERATIONS = 400
BUILD_RATE_LIMIT = 0.25
KEY_SPACE = 2000


def row_factory(key, tag):
    # Extra columns are deterministic functions of the key, so replays
    # and serial-equivalence audits stay exact.
    return (key, tag, (key * 7) % KEY_SPACE, (key * 13) % KEY_SPACE)


def percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def main():
    system = System(SystemConfig(page_capacity=8, leaf_capacity=8,
                                 branch_capacity=8, buffer_frames=32,
                                 sort_workspace=32, merge_fanin=4,
                                 disk_channels=1,
                                 build_rate_limit=BUILD_RATE_LIMIT),
                    seed=SEED)
    table = system.create_table("orders", ["k", "p", "a", "b"])
    spec = OpenLoopSpec(operations=OPERATIONS, rate=0.02,
                        read_weight=1.0, range_weight=2.0,
                        insert_weight=0.3, update_weight=0.3,
                        delete_weight=0.1,
                        range_span=100, key_space=KEY_SPACE,
                        range_columns=(("k", 2.0), ("a", 1.0),
                                       ("b", 1.0)))
    driver = OpenLoopDriver(system, table, spec, seed=SEED)
    driver.row_factory = row_factory
    system.spawn(driver.preload(ROWS), name="preload")
    system.run()

    # 1. Advise: what-if cost the query mix against candidate indexes.
    templates = templates_from_spec(spec)
    stats = TableStats.from_table(system, table)
    report = recommend(templates, stats,
                       AdvisorConfig(storage_budget_pages=400,
                                     max_index_width=2))
    print(report.to_text())
    print()

    # 2. Build every pick off ONE table scan, under the live traffic.
    build = MultiIndexBuilder(system, table, report.specs(),
                              BuildOptions(checkpoint_every_keys=200,
                                           commit_every_keys=128,
                                           prefetch_pages=2))
    start = {}

    def timed():
        start["at"] = system.sim.now
        yield from build.run()

    proc = system.spawn(timed(), name="builder")
    driver.spawn()
    system.run()
    assert proc.error is None, proc.error

    pages = system.metrics.get("build.pages_scanned")
    print(f"built {len(report.specs())} indexes from one scan "
          f"({pages} pages scanned)")
    flips = sorted((at - start["at"], name.split(":", 1)[1])
                   for name, at in build.timings.items()
                   if name.startswith("drain_done:"))
    for at, name in flips:
        print(f"  t={at:7.1f}  {name} flips AVAILABLE")
    print()

    # 3. The staircase: range-read latency before / during / after the
    # flips.  Full scans cost more than the arrival gap, so backlog
    # piles up while no index exists and drains once every range read
    # goes through an index.
    edges = [0.0, flips[0][0], flips[-1][0], float("inf")]
    labels = ["before first flip", "while flipping", "all indexes up"]
    print(f"{'window':<18s} {'range reads':>11s} {'mean':>9s} {'p99':>9s}")
    for label, low, high in zip(labels, edges, edges[1:]):
        lats = [record.latency for record in driver.op_timeline
                if record.op == "range" and record.outcome == "committed"
                and record.issued >= 0
                and low <= record.issued - start["at"] < high]
        mean = sum(lats) / len(lats) if lats else 0.0
        p99 = percentile(lats, 0.99) if lats else 0.0
        print(f"{label:<18s} {len(lats):>11d} {mean:>9.2f} {p99:>9.2f}")
    print()

    # 4. Each column's reads switch from the heap scan to its index.
    print(f"{'column':<8s} {'via index':>9s} {'via scan':>9s}")
    for column, _weight in spec.range_columns:
        via_index = system.metrics.get(
            f"openloop.range_via_index.{column}")
        via_scan = system.metrics.get(
            f"openloop.range_via_scan.{column}")
        print(f"{column:<8s} {via_index:>9d} {via_scan:>9d}")


if __name__ == "__main__":
    main()
