"""Traced build: watch an NSF build crash, recover, and resume.

This is the observability tour (see README "Observability"): an NSF
online index build runs under a live update workload with a
:class:`repro.obs.TraceRecorder` attached, the power fails in the middle
of the key-insertion phase, restart recovery carries the *same* trace
recorder over to the recovered system, and the resumed build finishes.
One trace therefore tells the whole story -- scan and insert spans cut
short by the crash, the restart instant, the checkpoint the resume read,
and the second build span picking up from the checkpointed key.

Run:  python examples/traced_build.py
      python examples/traced_build.py --trace-out build.jsonl
"""

import argparse

from repro import (
    BuildOptions,
    IndexSpec,
    NSFIndexBuilder,
    System,
    SystemConfig,
    WorkloadDriver,
    WorkloadSpec,
    audit_index,
    build_pre_undo,
    restart,
    resume_build,
    run_until_crash,
)
from repro.obs import enable_tracing, render_report

ROWS = 1_200
CRASH_AFTER = 260.0  # sim time after the build starts; lands mid-insert


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="also write the raw JSONL trace here")
    args = parser.parse_args(argv)

    system = System(SystemConfig(page_capacity=8, leaf_capacity=8,
                                 sort_workspace=32), seed=11)
    tracer = enable_tracing(system, sample_every=25.0)
    table = system.create_table("events", ["ts", "payload"])
    spec = WorkloadSpec(operations=60, workers=2, think_time=0.8,
                        rollback_fraction=0.15)
    driver = WorkloadDriver(system, table, spec, seed=11)
    preload = system.spawn(driver.preload(ROWS), name="preload")
    system.run()
    assert preload.error is None

    options = BuildOptions(checkpoint_every_pages=16,
                           checkpoint_every_keys=128,
                           commit_every_keys=64)
    builder = NSFIndexBuilder(system, table,
                              IndexSpec.of("events_by_ts", ["ts"]),
                              options=options)
    system.spawn(builder.run(), name="builder")
    driver.spawn_workers()
    print(f"NSF build of events_by_ts over {ROWS} rows, "
          f"crash in t+{CRASH_AFTER:.0f}")

    # -- pull the plug mid-build ------------------------------------------
    run_until_crash(system, system.now() + CRASH_AFTER)

    # -- restart recovery: the trace recorder rides along -----------------
    recovered, utility_state = restart(system, pre_undo=build_pre_undo)
    highest = utility_state.get("highest_key")
    print(f"crashed in phase {utility_state.get('phase')!r}; "
          f"checkpoint resumes from key "
          f"{highest[0] if highest else '(phase start)'}")

    resumed = resume_build(recovered, utility_state)
    assert resumed is not None
    # Re-arm the gauge sampler on the recovered system (the recorder
    # itself was carried over by restart).
    enable_tracing(recovered, tracer, sample_every=25.0)
    proc = recovered.spawn(resumed.run(), name="resumed-builder")
    recovered.run()
    assert proc.error is None

    report = audit_index(recovered, recovered.indexes["events_by_ts"])
    print(f"resumed build finished and audited clean: "
          f"{report['entries']} entries, height {report['height']}\n")

    print(render_report(tracer.events))
    if args.trace_out:
        tracer.write_jsonl(args.trace_out)


if __name__ == "__main__":
    main()
