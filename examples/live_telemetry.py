"""Live telemetry: a build that observes itself well enough to steer.

This is the telemetry tour (see README "Live telemetry" and
EXPERIMENTS.md E24): an SF online build runs under a hot insert/delete
stream with every layer of the telemetry stack attached --

* a progress tracker computing phase fractions, an ETA on the simulated
  clock, and a drain convergence verdict;
* a health monitor alerting on a deliberately tight side-file backlog
  threshold;
* the adaptive AIMD throttle steering on the live latency histogram
  (its default source -- no callback injected here);

-- and the build starts admission-throttled at a rate that cannot keep
up with the appends.  The tracker flags it ``diverging``, the backlog
alert fires, the controller opens the throttle, and the same run ends
converged with the alert cleared.  The final ASCII dashboard frame and
a slice of the Prometheus export show the whole arc.

Run:  python examples/live_telemetry.py
"""

from repro import (
    BuildOptions,
    IndexSpec,
    System,
    SystemConfig,
    WorkloadDriver,
    WorkloadSpec,
    audit_index,
)
from repro.core import get_builder
from repro.obs import AlertRule, enable_health, enable_progress, \
    enable_tracing
from repro.obs.dashboard import render_live
from repro.obs.export import export_prometheus
from repro.sim.kernel import Delay
from repro.slo.adaptive import AdaptiveThrottleConfig, \
    AdaptiveThrottleController

ROWS = 300
START_RATE = 3.0  # too slow for the drain while the stream runs


def main() -> None:
    system = System(SystemConfig(page_capacity=8, leaf_capacity=8,
                                 sort_workspace=32,
                                 build_rate_limit=START_RATE), seed=7)
    recorder = enable_tracing(system)
    tracker = enable_progress(system)
    table = system.create_table("t", ["k", "p"])
    spec = WorkloadSpec(operations=120, workers=3, think_time=0.4,
                        rollback_fraction=0.0, update_weight=0.0)
    driver = WorkloadDriver(system, table, spec, seed=7)
    preload = system.spawn(driver.preload(ROWS), name="preload")
    system.run()
    assert preload.error is None

    # The monitor's sampler exits with the simulation, so arm it after
    # the preload run, alongside the processes it will watch.
    monitor = enable_health(
        system,
        rules=[AlertRule("drain-backlog", "sidefile.backlog", op=">",
                         threshold=8.0, for_ticks=2, clear_ticks=2)],
        sample_every=10.0)
    controller = AdaptiveThrottleController(
        system, system.build_bucket(START_RATE),
        config=AdaptiveThrottleConfig(p99_target=5.0, interval=80.0,
                                      window=160.0, min_samples=3,
                                      min_rate=1.0, max_rate=64.0))
    controller.spawn()
    builder = get_builder("sf")(
        system, table, IndexSpec.of("idx", ["k"]),
        options=BuildOptions(checkpoint_every_keys=64, drain_batch=4))
    proc = system.spawn(builder.run(), name="builder")
    driver.spawn_workers()
    print(f"SF build of idx over {ROWS} rows, throttled to "
          f"{START_RATE:.0f} ops/t, adaptive controller attached")

    def narrate():
        while not proc.finished:
            yield Delay(20.0)
            state = tracker.snapshot().get("idx")
            if state is None:
                continue
            eta = "?" if state["eta"] is None \
                else f"{state['eta']:.0f}"
            firing = ",".join(monitor.firing) or "-"
            print(f"t={system.now():6.1f}  {state['fraction']:6.1%}  "
                  f"phase={state['phase']:<11} "
                  f"verdict={state['verdict']:<10} eta={eta:>4} "
                  f"rate={controller.bucket.rate:5.1f} "
                  f"alerts={firing}")
        controller.stop()

    system.spawn(narrate(), name="narrator")
    system.run()
    assert proc.error is None

    report = audit_index(system, system.indexes["idx"])
    diverging = sum(1 for e in recorder.events
                    if e["name"] == "build.diverging")
    fired = system.metrics.get("health.alerts_fired")
    cleared = system.metrics.get("health.alerts_cleared")
    print(f"\nbuild done at t={system.now():.1f}: {report['entries']} "
          f"entries audited clean; flagged diverging {diverging}x, "
          f"alerts fired/cleared {fired}/{cleared}, throttle opened "
          f"{START_RATE:.0f} -> {controller.bucket.rate:.1f}\n")

    print(render_live(system, tracker, monitor))
    print("prometheus export (build + alert families):")
    for line in export_prometheus(system, monitor).splitlines():
        if line.startswith(("repro_build_progress",
                            "repro_build_eta_seconds",
                            "repro_alert_firing")):
            print(f"  {line}")


if __name__ == "__main__":
    main()
