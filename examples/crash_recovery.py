"""Crash an online index build in every phase, restart, resume, verify.

The paper devotes sections 2.2.3, 3.2.4 and 5 to making the index build
*restartable*: a failure should not throw away days of scanning and
sorting.  This example crashes an SF build at increasing points in its
life -- during the scan, during the bottom-up load, during the side-file
drain, and after completion -- then runs ARIES-lite restart recovery,
resumes the build from its checkpoints, and audits the final index.

Run:  python examples/crash_recovery.py
"""

from repro import (
    BuildOptions,
    IndexSpec,
    SFIndexBuilder,
    System,
    SystemConfig,
    WorkloadDriver,
    WorkloadSpec,
    audit_index,
    build_pre_undo,
    restart,
    resume_build,
    run_until_crash,
)

ROWS = 1_200


def run_with_crash(crash_after: float):
    system = System(SystemConfig(page_capacity=8, leaf_capacity=8,
                                 sort_workspace=32), seed=13)
    table = system.create_table("events", ["ts", "payload"])
    spec = WorkloadSpec(operations=60, workers=2, think_time=0.8,
                        rollback_fraction=0.15)
    driver = WorkloadDriver(system, table, spec, seed=13)
    preload = system.spawn(driver.preload(ROWS), name="preload")
    system.run()
    assert preload.error is None

    options = BuildOptions(checkpoint_every_pages=16,
                           checkpoint_every_keys=128,
                           commit_every_keys=64)
    builder = SFIndexBuilder(system, table,
                             IndexSpec.of("events_by_ts", ["ts"]),
                             options=options)
    system.spawn(builder.run(), name="builder")
    driver.spawn_workers()

    # pull the plug
    run_until_crash(system, system.now() + crash_after)
    log_at_crash = system.log.flushed_lsn

    # restart recovery + build resume
    recovered, utility_state = restart(system, pre_undo=build_pre_undo)
    phase = utility_state.get("phase", "-")
    resumed = resume_build(recovered, utility_state)
    if resumed is not None:
        proc = recovered.spawn(resumed.run(), name="resumed-builder")
        recovered.run()
        assert proc.error is None

    report = audit_index(recovered, recovered.indexes["events_by_ts"])
    return {
        "phase": phase,
        "stable_lsn": log_at_crash,
        "losers": recovered.metrics.get("recovery.losers_rolled_back"),
        "redos": (recovered.metrics.get("recovery.redos")
                  + recovered.metrics.get("recovery.index_redos")),
        "entries": report["entries"],
        "resumed": resumed is not None,
    }


def main() -> None:
    print(f"SF build over a {ROWS}-row table under a live update "
          f"workload; power failures at increasing times\n")
    print(f"{'crash at':>9} {'phase at crash':>16} {'losers':>7} "
          f"{'redo ops':>9} {'resumed':>8} {'final entries':>14} "
          f"{'audit':>6}")
    print("-" * 78)
    for crash_after in (30, 120, 350, 700, 100_000):
        outcome = run_with_crash(crash_after)
        label = f"{crash_after}" if crash_after < 100_000 else "(never)"
        print(f"{label:>9} {outcome['phase']:>16} "
              f"{outcome['losers']:>7} {outcome['redos']:>9} "
              f"{str(outcome['resumed']):>8} {outcome['entries']:>14} "
              f"{'OK':>6}")
    print("\nevery run ends with index == table; work done before the "
          "last checkpoint\n(scan pages, sorted runs, loaded keys, "
          "drained entries) is never repeated.")


if __name__ == "__main__":
    main()
