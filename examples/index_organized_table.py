"""Secondary index build over an index-organized table (paper §6.2).

Some engines (IMS fast path descendants, clustered-index SQL Server
tables, InnoDB) store rows inside the primary index rather than a heap.
Section 6.2 of the paper extends SF to that model: the scan position is
the *current primary key* instead of Current-RID, and secondary entries
are ``<key value, primary key>``.

This example builds a city index over a live, primary-key-organized
customer table while an order-entry workload inserts, updates, and
deletes customers.

Run:  python examples/index_organized_table.py
"""

import random

from repro import (
    IOTable,
    SFIotBuilder,
    System,
    SystemConfig,
    audit_iot_index,
)
from repro.sim import Delay

CITIES = ["amsterdam", "berlin", "chicago", "delhi", "evanston",
          "fukuoka", "galway"]


def main() -> None:
    system = System(SystemConfig(leaf_capacity=16, sort_workspace=64),
                    seed=99)
    table = IOTable(system, "customers", ["cust_id", "city", "ltv"])
    system.tables["customers"] = table

    def preload():
        txn = system.txns.begin("preload")
        for cust_id in range(1_000):
            yield from table.insert(
                txn, (cust_id, CITIES[cust_id % len(CITIES)],
                      cust_id * 3))
        yield from txn.commit()

    proc = system.spawn(preload(), name="preload")
    system.run()
    assert proc.error is None
    print(f"customers table: {len(table.rows)} rows stored in the "
          f"primary index (height {table.primary.height})")

    builder = SFIotBuilder(system, table, "customers_by_city", ["city"])

    def order_entry():
        rng = random.Random(99)
        changed = 0
        for step in range(200):
            yield Delay(rng.uniform(0.1, 0.5))
            txn = system.txns.begin()
            roll = rng.random()
            live = sorted(table.rows)
            if roll < 0.35 or not live:
                yield from table.insert(
                    txn, (10_000 + step, rng.choice(CITIES), step))
            elif roll < 0.6:
                yield from table.delete(txn, rng.choice(live))
            else:
                pk = rng.choice(live)
                row = table.rows[pk]
                yield from table.update(
                    txn, pk, (pk, rng.choice(CITIES), row.values[2]))
            if rng.random() < 0.1:
                yield from txn.rollback()
            else:
                yield from txn.commit()
                changed += 1
        return changed

    build = system.spawn(builder.run(), name="index-builder")
    orders = system.spawn(order_entry(), name="order-entry")
    system.run()
    assert build.error is None and orders.error is None

    report = audit_iot_index(table, builder.index)
    print(f"\nonline build finished at t={system.now():.0f}")
    print(f"  committed changes during build: {orders.result}")
    print(f"  side-file entries drained:      "
          f"{system.metrics.get('iot.sidefile_drained')}")
    print(f"  audit OK: {report['entries']} <city, primary-key> entries, "
          f"clustering {report['clustering']:.2f}")
    sample = next(iter(builder.index.tree.all_entries()))
    print(f"  sample entry: <{sample.key_value[0]!r}, "
          f"pk={sample.rid.page_no}>")


if __name__ == "__main__":
    main()
