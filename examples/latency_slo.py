"""Latency SLOs under an online index build, with and without throttling.

An online build never blocks updates for correctness, but it still
*competes* with them -- for the disk, the log, and the locks.  This
example drives deterministic open-loop traffic (arrivals pre-scheduled,
issued regardless of backlog -- so queueing shows up as latency, not as
silently reduced throughput) at a one-channel disk while the Side-File
builder constructs an index, then reads the latency percentiles back
out of the build-window trace:

* unthrottled: the build finishes fast, but the foreground p99 climbs;
* throttled (``SystemConfig.build_rate_limit``): the build takes far
  longer and the foreground barely notices it.

That is the tradeoff curve ``python -m repro.slo.tradeoff`` sweeps and
gates; this is the two-point version.

Run:  python examples/latency_slo.py
"""

from repro.core import BuildOptions, IndexSpec, get_builder
from repro.obs import enable_tracing
from repro.slo import latency_report
from repro.system import System, SystemConfig
from repro.workloads import OpenLoopDriver, OpenLoopSpec

SEED = 11
ROWS = 320
OPERATIONS = 150


def run(rate_limit):
    system = System(SystemConfig(page_capacity=8, leaf_capacity=8,
                                 branch_capacity=8, buffer_frames=32,
                                 sort_workspace=32, merge_fanin=4,
                                 disk_channels=1,
                                 build_rate_limit=rate_limit), seed=SEED)
    recorder = enable_tracing(system)
    table = system.create_table("accounts", ["acct", "balance"])
    spec = OpenLoopSpec(operations=OPERATIONS, rate=0.05,
                        range_weight=0.0, key_space=2000)
    driver = OpenLoopDriver(system, table, spec, seed=SEED,
                            index_name="accounts_by_acct")
    system.spawn(driver.preload(ROWS), name="preload")
    system.run()

    builder = get_builder("sf")(
        system, table, IndexSpec.of("accounts_by_acct", ["acct"]),
        BuildOptions(checkpoint_every_keys=200, commit_every_keys=128,
                     prefetch_pages=2))
    window = {}

    def timed():
        window["start"] = system.sim.now
        yield from builder.run()
        window["end"] = system.sim.now

    build = system.spawn(timed(), name="builder")
    driver.spawn()
    system.run()
    assert build.error is None
    report = latency_report(recorder.events,
                            window=(window["start"], window["end"]))
    return window["end"] - window["start"], report


def main():
    print(f"open-loop traffic: {OPERATIONS} ops at rate 0.05 over "
          f"{ROWS} preloaded rows, one disk channel")
    print()
    print(f"{'build_rate_limit':>17s} {'build_time':>11s} "
          f"{'p50':>7s} {'p95':>7s} {'p99':>8s} {'ops':>4s}")
    for rate in (None, 0.1):
        build_time, report = run(rate)
        label = "unthrottled" if rate is None else f"{rate:g}"
        print(f"{label:>17s} {build_time:11.1f} "
              f"{report['p50']:7.2f} {report['p95']:7.2f} "
              f"{report['p99']:8.2f} {report['ops']:4d}")
    print()
    print("(latencies are for operations issued while the build ran;")
    print(" the throttle trades build time for foreground p99)")


if __name__ == "__main__":
    main()
