"""Online schema migration: adding an index to a production table.

The scenario from the paper's introduction: a large table serving a
transaction workload needs a new secondary index, and taking the table
offline is unacceptable ("the so-called batch window is rapidly
shrinking").  This example runs the same migration three ways --

* ``offline``: the pre-1992 state of the art (X-lock the table),
* ``nsf``:     Mohan & Narang's No-Side-File algorithm,
* ``sf``:      their Side-File algorithm --

and prints the workload's commit timeline around the build, so the
availability difference is visible at a glance.

Run:  python examples/online_migration.py
"""

from repro import (
    IndexSpec,
    NSFIndexBuilder,
    OfflineIndexBuilder,
    SFIndexBuilder,
    System,
    SystemConfig,
    WorkloadDriver,
    WorkloadSpec,
    audit_index,
)

BUILDERS = {
    "offline": OfflineIndexBuilder,
    "nsf": NSFIndexBuilder,
    "sf": SFIndexBuilder,
}

ROWS = 1_500
BUCKET = 25.0


def run_migration(algorithm: str):
    system = System(SystemConfig(page_capacity=16, leaf_capacity=16),
                    seed=7)
    table = system.create_table("accounts", ["acct", "balance"])
    spec = WorkloadSpec(operations=120, workers=4, think_time=0.6,
                        rollback_fraction=0.08, key_space=10_000_000)
    driver = WorkloadDriver(system, table, spec, seed=7)
    preload = system.spawn(driver.preload(ROWS), name="preload")
    system.run()
    assert preload.error is None

    builder = BUILDERS[algorithm](
        system, table, IndexSpec.of("accounts_by_acct", ["acct"]))
    build = system.spawn(builder.run(), name="builder")
    driver.spawn_workers()
    system.run()
    assert build.error is None
    audit_index(system, system.indexes["accounts_by_acct"])
    return system, driver, builder


def sparkline(series, width=40):
    """A crude text histogram of committed ops per time bucket."""
    if not series:
        return ""
    peak = max(count for _t, count in series) or 1
    blocks = " .:-=+*#"
    chars = []
    for _t, count in series[:width]:
        level = round(count / peak * (len(blocks) - 1))
        chars.append(blocks[level])
    return "".join(chars)


def main() -> None:
    print(f"migrating a {ROWS}-row accounts table: "
          f"CREATE INDEX accounts_by_acct ON accounts(acct)\n")
    header = (f"{'algo':8} {'build time':>10} {'quiesce':>8} "
              f"{'longest stall':>14} {'committed':>10}  commit timeline "
              f"({BUCKET:.0f}-unit buckets)")
    print(header)
    print("-" * len(header))
    for algorithm in ("offline", "nsf", "sf"):
        system, driver, builder = run_migration(algorithm)
        build_time = builder.timings["done"] - builder.timings["start"]
        quiesce = system.metrics.stat("build.quiesce_hold").maximum
        print(f"{algorithm:8} {build_time:>10.0f} {quiesce:>8.1f} "
              f"{driver.longest_stall():>14.1f} "
              f"{system.metrics.get('workload.committed'):>10}  "
              f"|{sparkline(driver.throughput_series(BUCKET))}|")
    print("\nreading the timeline: blanks are stalls; the offline build "
          "freezes the workload\nuntil it finishes, NSF pauses only for "
          "descriptor creation, SF never pauses.")


if __name__ == "__main__":
    main()
