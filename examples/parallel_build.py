"""Partitioned parallel online index build: the P-sweep.

Section 7 of the paper sketches how the SF algorithm extends to multiple
concurrent scanners; ``repro.parallel`` implements that sketch.  The
page space is range-partitioned into P shards, one simulated worker
process scans and sorts each shard (rendezvousing at a kernel barrier),
the per-shard runs are merged in parallel, and the usual bottom-up load
plus logged side-file drain finishes the build.  Updaters never block:
each update routes against the *per-partition scan frontier* -- the
vector generalization of the serial Target-RID < Current-RID test.

This example builds the same index over the same table at P = 1, 2, 4
and 8 under a live update workload, and prints how the (simulated)
scan+sort phase shrinks while the result stays identical.

Run:  python examples/parallel_build.py
"""

from repro import (
    IndexSpec,
    ParallelSFBuilder,
    System,
    SystemConfig,
    WorkloadDriver,
    WorkloadSpec,
    audit_index,
)
from repro.metrics import partition_values

ROWS = 1_500
PARTITIONS = (1, 2, 4, 8)


def run_build(partitions: int):
    system = System(SystemConfig(page_capacity=16, leaf_capacity=16),
                    seed=7)
    table = system.create_table("accounts", ["acct", "balance"])
    spec = WorkloadSpec(operations=120, workers=4, think_time=0.6,
                        rollback_fraction=0.08, key_space=10_000_000)
    driver = WorkloadDriver(system, table, spec, seed=7)
    preload = system.spawn(driver.preload(ROWS), name="preload")
    system.run()
    assert preload.error is None

    builder = ParallelSFBuilder(
        system, table, IndexSpec.of("accounts_by_acct", ["acct"]),
        partitions=partitions)
    build = system.spawn(builder.run(), name="builder")
    driver.spawn_workers()
    system.run()
    assert build.error is None
    audit_index(system, system.indexes["accounts_by_acct"])
    return system, builder


def vector(values) -> str:
    return "/".join(f"{value:.0f}" for value in values)


def main() -> None:
    print(f"parallel online index build over a {ROWS}-row accounts "
          f"table, P = {', '.join(map(str, PARTITIONS))}\n")
    header = (f"{'P':>2} {'scan+sort':>10} {'speedup':>8} {'build':>8} "
              f"{'merge%':>7} {'entries':>8}  pages/shard "
              f"(side-file/shard)")
    print(header)
    print("-" * len(header))
    baseline = None
    for partitions in PARTITIONS:
        system, builder = run_build(partitions)
        scan = builder.timings["scan_done"] - builder.timings["start"]
        total = builder.timings["done"] - builder.timings["start"]
        merge = builder.timings.get("pmerge_done", 0.0) \
            - builder.timings.get("scan_done", 0.0)
        baseline = baseline or scan
        pages = partition_values(system.metrics, "psf.pages_scanned",
                                 partitions)
        sidefile = partition_values(system.metrics,
                                    "psf.sidefile_appends", partitions)
        entries = system.indexes["accounts_by_acct"].tree.key_count()
        print(f"{partitions:>2} {scan:>10.1f} {baseline / scan:>7.2f}x "
              f"{total:>8.1f} {100 * merge / total:>6.1f}% "
              f"{entries:>8}  {vector(pages)} ({vector(sidefile)})")
    print("\nevery row audited clean against the table; the scan+sort "
          "phase scales with P\nwhile updaters keep running -- the "
          "barrier hands the per-shard runs to parallel\nmergers, and "
          "the side-file drain replays the updates each shard's "
          "frontier had\nalready passed.")


if __name__ == "__main__":
    main()
