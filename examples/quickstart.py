"""Quickstart: build an index online while transactions keep updating.

This walks the happy path of the library in ~60 lines of user code:

1. stand up a simulated DBMS (:class:`repro.System`),
2. create a table and preload it,
3. start an OLTP-ish update workload,
4. build a B+-tree index on the live table with the SF algorithm
   (Mohan & Narang, SIGMOD 1992) -- no update is ever blocked,
5. audit the finished index against the table, key for key.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace-out build.jsonl
      python -m repro.obs.report build.jsonl

``--trace-out`` records the build's structured trace (phase spans, the
side-file flag flip, checkpoints) as JSONL.  Tracing is passive, so the
run -- and the printed output -- is byte-identical with or without it.
"""

import argparse

from repro import (
    IndexSpec,
    SFIndexBuilder,
    System,
    SystemConfig,
    WorkloadDriver,
    WorkloadSpec,
    audit_index,
)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write the build's JSONL trace here")
    args = parser.parse_args(argv)

    config = SystemConfig(page_capacity=16, leaf_capacity=16)
    system = System(config, seed=2026)
    tracer = None
    if args.trace_out:
        from repro.obs import enable_tracing
        tracer = enable_tracing(system)
    table = system.create_table("orders", ["order_id", "payload"])

    # -- preload 2,000 committed rows -----------------------------------
    spec = WorkloadSpec(operations=150, workers=4, think_time=0.5,
                        rollback_fraction=0.1, key_space=1_000_000)
    driver = WorkloadDriver(system, table, spec, seed=2026)
    preload = system.spawn(driver.preload(2_000), name="preload")
    system.run()
    assert preload.error is None
    print(f"preloaded {len(driver.pool)} rows "
          f"across {table.page_count} data pages")

    # -- build the index online, under live updates ---------------------
    builder = SFIndexBuilder(system, table,
                             IndexSpec.of("orders_by_id", ["order_id"]))
    build = system.spawn(builder.run(), name="index-builder")
    driver.spawn_workers()
    system.run()
    assert build.error is None

    # -- what happened ---------------------------------------------------
    metrics = system.metrics
    print(f"\nbuild finished at simulated t={system.now():.0f}")
    print(f"  update txns committed during build+run: "
          f"{metrics.get('workload.committed')}")
    print(f"  update txns rolled back:                "
          f"{metrics.get('workload.rolledback')}")
    print(f"  side-file entries appended/drained:     "
          f"{metrics.get('sidefile.appends')}/"
          f"{metrics.get('build.sidefile_drained')}")
    print(f"  quiesce time: 0.0 (SF never blocks updates)")

    report = audit_index(system, system.indexes["orders_by_id"])
    print(f"\naudit: index == table, {report['entries']} entries, "
          f"height {report['height']}, "
          f"clustering {report['clustering']:.2f}")

    if tracer is not None:
        tracer.write_jsonl(args.trace_out)


if __name__ == "__main__":
    main()
