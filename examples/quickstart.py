"""Quickstart: build an index online while transactions keep updating.

This walks the happy path of the library in ~60 lines of user code:

1. stand up a simulated DBMS (:class:`repro.System`),
2. create a table and preload it,
3. start an OLTP-ish update workload,
4. build a B+-tree index on the live table with the SF algorithm
   (Mohan & Narang, SIGMOD 1992) -- no update is ever blocked,
5. audit the finished index against the table, key for key.

Run:  python examples/quickstart.py
"""

from repro import (
    IndexSpec,
    SFIndexBuilder,
    System,
    SystemConfig,
    WorkloadDriver,
    WorkloadSpec,
    audit_index,
)


def main() -> None:
    config = SystemConfig(page_capacity=16, leaf_capacity=16)
    system = System(config, seed=2026)
    table = system.create_table("orders", ["order_id", "payload"])

    # -- preload 2,000 committed rows -----------------------------------
    spec = WorkloadSpec(operations=150, workers=4, think_time=0.5,
                        rollback_fraction=0.1, key_space=1_000_000)
    driver = WorkloadDriver(system, table, spec, seed=2026)
    preload = system.spawn(driver.preload(2_000), name="preload")
    system.run()
    assert preload.error is None
    print(f"preloaded {len(driver.pool)} rows "
          f"across {table.page_count} data pages")

    # -- build the index online, under live updates ---------------------
    builder = SFIndexBuilder(system, table,
                             IndexSpec.of("orders_by_id", ["order_id"]))
    build = system.spawn(builder.run(), name="index-builder")
    driver.spawn_workers()
    system.run()
    assert build.error is None

    # -- what happened ---------------------------------------------------
    metrics = system.metrics
    print(f"\nbuild finished at simulated t={system.now():.0f}")
    print(f"  update txns committed during build+run: "
          f"{metrics.get('workload.committed')}")
    print(f"  update txns rolled back:                "
          f"{metrics.get('workload.rolledback')}")
    print(f"  side-file entries appended/drained:     "
          f"{metrics.get('sidefile.appends')}/"
          f"{metrics.get('build.sidefile_drained')}")
    print(f"  quiesce time: 0.0 (SF never blocks updates)")

    report = audit_index(system, system.indexes["orders_by_id"])
    print(f"\naudit: index == table, {report['entries']} entries, "
          f"height {report['height']}, "
          f"clustering {report['clustering']:.2f}")


if __name__ == "__main__":
    main()
