"""Integration tests: the three builders on a static table (no updates)."""

import pytest

from repro.btree.audit import audit_tree
from repro.core import (
    BuildOptions,
    IndexSpec,
    IndexState,
    NSFIndexBuilder,
    OfflineIndexBuilder,
    SFIndexBuilder,
)
from repro.errors import IndexBuildError
from repro.system import System, SystemConfig
from repro.verify import audit_index


def small_config():
    return SystemConfig(page_capacity=8, leaf_capacity=8,
                        branch_capacity=8, sort_workspace=16,
                        merge_fanin=4)


def populate(system, table, n, key_fn=lambda i: i):
    def body():
        txn = system.txns.begin("loader")
        for i in range(n):
            yield from table.insert(txn, (key_fn(i), f"payload-{i}"))
        yield from txn.commit()

    proc = system.spawn(body(), name="populate")
    system.run()
    assert proc.error is None


def run_builder(system, builder):
    proc = system.spawn(builder.run(), name="builder")
    system.run()
    if proc.error is not None:
        raise proc.error
    return proc.result


BUILDER_CLASSES = [OfflineIndexBuilder, NSFIndexBuilder, SFIndexBuilder]


@pytest.mark.parametrize("builder_cls", BUILDER_CLASSES)
def test_build_on_static_table(builder_cls):
    system = System(small_config(), seed=1)
    table = system.create_table("emp", ["id", "payload"])
    populate(system, table, 200, key_fn=lambda i: (i * 37) % 1000)
    builder = builder_cls(system, table, IndexSpec.of("idx_id", ["id"]))
    run_builder(system, builder)
    descriptor = system.indexes["idx_id"]
    assert descriptor.state is IndexState.AVAILABLE
    report = audit_index(system, descriptor)
    assert report["entries"] == 200


@pytest.mark.parametrize("builder_cls", BUILDER_CLASSES)
def test_build_unique_index(builder_cls):
    system = System(small_config(), seed=2)
    table = system.create_table("emp", ["id", "payload"])
    populate(system, table, 150)  # distinct ids
    builder = builder_cls(system, table,
                          IndexSpec.of("idx_u", ["id"], unique=True))
    run_builder(system, builder)
    report = audit_index(system, system.indexes["idx_u"])
    assert report["entries"] == 150


@pytest.mark.parametrize("builder_cls", BUILDER_CLASSES)
def test_unique_build_fails_on_duplicate_data(builder_cls):
    system = System(small_config(), seed=3)
    table = system.create_table("emp", ["id", "payload"])
    populate(system, table, 50, key_fn=lambda i: i % 10)  # duplicates
    builder = builder_cls(system, table,
                          IndexSpec.of("idx_u", ["id"], unique=True))
    with pytest.raises(IndexBuildError):
        run_builder(system, builder)


def test_sf_and_offline_trees_perfectly_clustered():
    for builder_cls in (OfflineIndexBuilder, SFIndexBuilder):
        system = System(small_config(), seed=4)
        table = system.create_table("t", ["k", "p"])
        populate(system, table, 300, key_fn=lambda i: (i * 7919) % 5000)
        builder = builder_cls(system, table, IndexSpec.of("idx", ["k"]))
        run_builder(system, builder)
        assert system.indexes["idx"].tree.clustering_factor() == 1.0


def test_nsf_static_tree_also_clustered_with_specialized_splits():
    system = System(small_config(), seed=5)
    table = system.create_table("t", ["k", "p"])
    populate(system, table, 300, key_fn=lambda i: (i * 7919) % 5000)
    builder = NSFIndexBuilder(system, table, IndexSpec.of("idx", ["k"]))
    run_builder(system, builder)
    # No concurrent updates: NSF's specialized splits mimic bottom-up
    # (section 2.3.1), so clustering is perfect here too.
    assert system.indexes["idx"].tree.clustering_factor() == 1.0


def test_sf_ib_writes_no_log_records_for_bulk_load():
    system = System(small_config(), seed=6)
    table = system.create_table("t", ["k", "p"])
    populate(system, table, 200)
    before = system.metrics.get("wal.records.ib")
    builder = SFIndexBuilder(system, table, IndexSpec.of("idx", ["k"]))
    run_builder(system, builder)
    # Static table: empty side-file, so IB logged nothing at all (§3.1).
    assert system.metrics.get("wal.records.ib") == before
    assert system.metrics.get("index.inserts.bulk") == 200


def test_nsf_ib_logs_batched_key_inserts():
    system = System(small_config(), seed=7)
    table = system.create_table("t", ["k", "p"])
    populate(system, table, 200)
    builder = NSFIndexBuilder(system, table, IndexSpec.of("idx", ["k"]))
    run_builder(system, builder)
    ib_records = system.metrics.get("wal.records.ib")
    assert 0 < ib_records < 200  # logged, but batched (multi-key records)


def test_multi_index_single_scan():
    """Section 6.2: several indexes in one data scan."""
    system = System(small_config(), seed=8)
    table = system.create_table("t", ["a", "b", "c"])

    def body():
        txn = system.txns.begin()
        for i in range(120):
            yield from table.insert(txn, (i, i % 10, f"c{i}"))
        yield from txn.commit()

    system.spawn(body(), name="pop")
    system.run()
    builder = SFIndexBuilder(system, table, [
        IndexSpec.of("idx_a", ["a"], unique=True),
        IndexSpec.of("idx_b", ["b"]),
        IndexSpec.of("idx_ba", ["b", "a"]),
    ])
    run_builder(system, builder)
    scans = system.metrics.get("build.pages_scanned")
    assert scans == table.page_count  # one scan, not three
    for name in ("idx_a", "idx_b", "idx_ba"):
        audit_index(system, system.indexes[name])


def test_offline_blocks_updates_for_whole_build():
    system = System(small_config(), seed=9)
    table = system.create_table("t", ["k", "p"])
    populate(system, table, 100)
    timeline = {}

    def updater():
        from repro.sim import Delay
        yield Delay(1)
        txn = system.txns.begin("upd")
        yield from table.insert(txn, (999, "late"))
        timeline["insert_done"] = system.now()
        yield from txn.commit()

    builder = OfflineIndexBuilder(system, table,
                                  IndexSpec.of("idx", ["k"]))
    build_proc = system.spawn(builder.run(), name="builder")
    system.spawn(updater(), name="upd")
    system.run()
    assert build_proc.error is None
    # The updater could only run after the build finished.
    assert timeline["insert_done"] >= builder.timings["done"]


def test_composite_key_columns():
    system = System(small_config(), seed=10)
    table = system.create_table("t", ["a", "b", "p"])

    def body():
        txn = system.txns.begin()
        for i in range(80):
            yield from table.insert(txn, (i % 4, i, f"p{i}"))
        yield from txn.commit()

    system.spawn(body(), name="pop")
    system.run()
    builder = SFIndexBuilder(system, table,
                             IndexSpec.of("idx_ab", ["a", "b"]))
    run_builder(system, builder)
    entries = [e.key_value for e in system.indexes["idx_ab"].tree.all_entries()]
    assert entries == sorted(entries)
    assert entries[0] == (0, 0)
